//! Each test encodes one empirical claim from the paper's evaluation
//! (§VII) and checks it against the regenerated data. This file is the
//! executable form of EXPERIMENTS.md.

use nwchem_proxy::{Backend, ProxyPhase};
use scalesim::fig6;
use simnet::PlatformId;

// ---------------------------------------------------------------------
// §VII-A, Figure 3 (one platform here; the rest run in `bench`'s tests)
// ---------------------------------------------------------------------

#[test]
fn claim_fig3_ib_get_put_lower_but_comparable_acc_gap_large() {
    let all = bench::fig3::generate(PlatformId::InfiniBandCluster);
    let peak = |backend, op: &str| -> f64 {
        all.iter()
            .find(|s| s.backend == backend && s.op == op)
            .unwrap()
            .points
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    };
    use bench::fig3::Impl;
    // "get and put performance is less than but comparable"
    let ratio = peak(Impl::Mpi, "put") / peak(Impl::Native, "put");
    assert!(ratio > 0.7 && ratio < 1.0, "put ratio {ratio}");
    // "double-precision accumulate does not keep up … more than 1.5 GB/s"
    let gap = peak(Impl::Native, "acc") - peak(Impl::Mpi, "acc");
    assert!(gap > 1.5e9, "acc gap {gap}");
}

// ---------------------------------------------------------------------
// §VII-B, Figure 5
// ---------------------------------------------------------------------

#[test]
fn claim_fig5_registration_mismatch_costs_bandwidth() {
    let all = bench::fig5::generate();
    let bw = |c: bench::fig5::Combo, size: usize| -> f64 {
        all.iter()
            .find(|s| s.combo == c)
            .unwrap()
            .points
            .iter()
            .find(|&&(b, _)| b == size)
            .unwrap()
            .1
    };
    use bench::fig5::Combo;
    // "performance with the ARMCI allocated buffer is the best"
    let big = 1 << 22;
    assert!(bw(Combo::ArmciOnArmciAlloc, big) >= bw(Combo::MpiOnMpiTouch, big));
    // "significant bandwidth gap … nonpinned communication path"
    assert!(bw(Combo::ArmciOnArmciAlloc, big) > 2.0 * bw(Combo::ArmciOnMpiTouch, big));
    // "for transfers smaller than 8 kB … copies the data into internal
    // prepinned buffers. For transfers larger … pins the buffer" — the
    // on-demand registration cost is visible right above the threshold.
    let below = bw(Combo::MpiOnArmciAlloc, 4 << 10);
    let above = bw(Combo::MpiOnArmciAlloc, 16 << 10);
    assert!(above < below, "below {below} above {above}");
}

// ---------------------------------------------------------------------
// §VII-D, Figure 6
// ---------------------------------------------------------------------

fn first_ratio(id: PlatformId, phase: ProxyPhase) -> f64 {
    let mpi = fig6::series(id, Backend::ArmciMpi, phase);
    let nat = fig6::series(id, Backend::Native, phase);
    mpi[0].minutes / nat[0].minutes
}

#[test]
fn claim_fig6_ib_gap_roughly_2x() {
    // "there is a performance gap of roughly 2x for the CCSD and (T)
    // calculations" (IB is the most aggressively tuned native port)
    let r = first_ratio(PlatformId::InfiniBandCluster, ProxyPhase::Ccsd);
    assert!(r > 1.5 && r < 2.6, "IB CCSD ratio {r}");
}

#[test]
fn claim_fig6_bgp_comparable_with_good_scaling() {
    let r = first_ratio(PlatformId::BlueGeneP, ProxyPhase::Ccsd);
    assert!(r < 1.5, "BG/P should be comparable, ratio {r}");
    let s = fig6::series(PlatformId::BlueGeneP, Backend::ArmciMpi, ProxyPhase::Ccsd);
    assert!(
        s.last().unwrap().minutes < 0.45 * s[0].minutes,
        "BG/P ARMCI-MPI should keep scaling"
    );
}

#[test]
fn claim_fig6_xt_15_to_20_percent_slower() {
    // "performance is only 15%–20% less for ARMCI-MPI" — we accept a
    // slightly wider band.
    let r = first_ratio(PlatformId::CrayXT5, ProxyPhase::Ccsd);
    assert!(r > 1.08 && r < 1.45, "XT ratio {r}");
}

#[test]
fn claim_fig6_xe_mpi_30_percent_better_and_native_degrades() {
    // "ARMCI-MPI performs 30% better than the currently available native
    // implementation on the CCSD calculation" (at the smallest count) and
    // "scales much better … while the native implementation's performance
    // flattens for (T) and worsens for CCSD".
    let r = first_ratio(PlatformId::CrayXE6, ProxyPhase::Ccsd);
    assert!(r < 0.8, "XE: MPI should be clearly faster, ratio {r}");
    let nat = fig6::series(PlatformId::CrayXE6, Backend::Native, ProxyPhase::Ccsd);
    let min = nat.iter().map(|p| p.minutes).fold(f64::INFINITY, f64::min);
    assert!(
        nat.last().unwrap().minutes > min,
        "native XE CCSD should turn around"
    );
    let mpi_t = fig6::series(PlatformId::CrayXE6, Backend::ArmciMpi, ProxyPhase::Triples);
    assert!(
        mpi_t.last().unwrap().minutes < mpi_t[mpi_t.len() - 2].minutes * 1.01,
        "ARMCI-MPI (T) continues to improve at 5952"
    );
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

#[test]
fn claim_table2_reproduced() {
    let t = bench::table2::render();
    for needle in [
        "Blue Gene/P",
        "40960",
        "InfiniBand QDR",
        "MVAPICH2 1.6",
        "18688",
        "Seastar 2+",
        "6392",
        "Gemini",
    ] {
        assert!(t.contains(needle), "Table II missing {needle}");
    }
}
