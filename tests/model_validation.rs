//! Model validation: the discrete-event simulator (used for Figure 6 at
//! core counts the thread runtime cannot reach) must agree with the
//! *executable* proxy where both can run. The per-task profile is an
//! analytic approximation of the GA patch traffic, so agreement within a
//! small factor — and the same qualitative behaviour — is the bar.

use armci_mpi::ArmciMpi;
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, task_profile, Backend, CcsdConfig, ProxyPhase};
use scalesim::{simulate, SimConfig};
use simnet::{Platform, PlatformId};

fn executable_time(nprocs: usize, cfg: CcsdConfig) -> f64 {
    // One rank per node: the DES profile prices every transfer with the
    // wire (inter-node) cost model, so the executable run must not slip
    // its traffic onto the intra-node shared-memory tier.
    let mut platform = Platform::get(PlatformId::InfiniBandCluster).customized("des-validation");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = 1;
    let rcfg = RuntimeConfig {
        semantic_checks: false,
        platform,
        ..RuntimeConfig::default()
    };
    Runtime::run_with(nprocs, rcfg, move |p| {
        // The analytic profile also prices rank-local traffic at wire
        // rates, so disable the shared-memory tier for the comparison —
        // and it prices NXTVAL with the §V-D mutex protocol, so pin the
        // runtime to the mutex fallback (native MPI-3 atomics are the
        // default and would undercut the modelled service time).
        let rt = ArmciMpi::with_config(
            p,
            armci_mpi::Config {
                shm: false,
                atomics: armci_mpi::AtomicsMode::MutexFallback,
                ..Default::default()
            },
        );
        run_ccsd(p, &rt, &cfg).elapsed
    })
    .into_iter()
    .fold(0.0f64, f64::max)
}

fn des_time(nprocs: usize, cfg: CcsdConfig) -> f64 {
    let platform = Platform::get(PlatformId::InfiniBandCluster);
    let prof = task_profile(&cfg, &platform, Backend::ArmciMpi, ProxyPhase::Ccsd);
    simulate(&SimConfig {
        nprocs,
        ntasks: prof.ntasks,
        task_compute: prof.compute_time,
        task_comm: prof.comm_time,
        nxtval_service: prof.nxtval_service,
        nxtval_latency: 2.0 * prof.nxtval_service,
        congestion_scale: None,
        startup: 0.0,
        iterations: cfg.iterations,
    })
    .makespan
}

#[test]
fn des_and_executable_agree_within_a_small_factor() {
    let cfg = CcsdConfig {
        no: 4,
        nv: 16,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    for nprocs in [2usize, 4] {
        let real = executable_time(nprocs, cfg);
        let des = des_time(nprocs, cfg);
        let ratio = real / des;
        // The executable run additionally pays array creation, tensor
        // initialisation, barriers, and the energy reductions, so it
        // should be the larger of the two — but by a bounded factor.
        assert!(
            (0.8..8.0).contains(&ratio),
            "P={nprocs}: executable {real:.6}s vs DES {des:.6}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn both_models_show_speedup_from_more_processes() {
    let cfg = CcsdConfig {
        no: 4,
        nv: 16,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let real_speedup = executable_time(1, cfg) / executable_time(4, cfg);
    let des_speedup = des_time(1, cfg) / des_time(4, cfg);
    assert!(real_speedup > 1.2, "executable speedup {real_speedup}");
    assert!(des_speedup > 2.0, "DES speedup {des_speedup}");
}
