//! Randomized full-stack stress: three backends, mixed GA traffic,
//! deterministic seeds — a miniature soak test.

use armci::Armci;
use armci_ds::run_with_servers;
use armci_mpi::{ArmciMpi, Config};
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

/// A deterministic mixed workload; returns the array digest.
fn workload(p: &Proc, rt: &dyn Armci, rounds: usize) -> Vec<f64> {
    let dims = [17usize, 13];
    let a = GlobalArray::create(rt, "stress", GaType::F64, &dims).unwrap();
    let counter = GlobalArray::create(rt, "ctr", GaType::I64, &[1]).unwrap();
    a.zero().unwrap();
    counter.put_patch_i64(&[0], &[1], &[0]).unwrap();
    counter.sync();
    // all ranks share the same op schedule; the ticket counter assigns
    // each op to exactly one rank, in a nondeterministic interleaving —
    // but only accumulates overlap, so the result is deterministic
    let mut rng = StdRng::seed_from_u64(2026);
    let mut ops = Vec::new();
    for _ in 0..rounds {
        let l0 = rng.gen_range(0..dims[0] - 1);
        let h0 = rng.gen_range(l0 + 1..=dims[0]);
        let l1 = rng.gen_range(0..dims[1] - 1);
        let h1 = rng.gen_range(l1 + 1..=dims[1]);
        let v = rng.gen_range(1..8) as f64 / 4.0;
        ops.push(([l0, l1], [h0, h1], v));
    }
    loop {
        let t = counter.read_inc(&[0], 1).unwrap() as usize;
        if t >= ops.len() {
            break;
        }
        let (lo, hi, v) = &ops[t];
        let len = (hi[0] - lo[0]) * (hi[1] - lo[1]);
        a.acc_patch(*v, lo, hi, &vec![1.0; len]).unwrap();
    }
    a.sync();
    let digest = a.get_patch(&[0, 0], &dims).unwrap();
    a.sync();
    a.destroy().unwrap();
    counter.destroy().unwrap();
    let _ = p;
    digest
}

#[test]
fn stress_digest_identical_across_backends_and_scales() {
    let rounds = 60;
    let mpi4 = Runtime::run_with(4, quiet(), move |p| workload(p, &ArmciMpi::new(p), rounds))
        .swap_remove(0);
    let mpi7 = Runtime::run_with(7, quiet(), move |p| workload(p, &ArmciMpi::new(p), rounds))
        .swap_remove(0);
    let nat5 = Runtime::run_with(5, quiet(), move |p| {
        workload(p, &ArmciNative::new(p), rounds)
    })
    .swap_remove(0);
    let ds3 = run_with_servers(3, quiet(), move |p, rt| workload(p, rt, rounds)).swap_remove(0);
    let epochless = Runtime::run_with(4, quiet(), move |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                epochless: true,
                ..Default::default()
            },
        );
        workload(p, &rt, rounds)
    })
    .swap_remove(0);
    assert!(!mpi4.is_empty());
    assert_eq!(mpi4, mpi7, "rank-count independence");
    assert_eq!(mpi4, nat5, "native parity");
    assert_eq!(mpi4, ds3, "data-server parity");
    assert_eq!(mpi4, epochless, "epochless parity");
}
