//! Full-stack integration: GA → ARMCI → (simulated) MPI, on both
//! backends, combining features the way NWChem does.

use armci::{AccessMode, Armci, ArmciExt};
use armci_mpi::{ArmciMpi, Config};
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, CcsdConfig};
use simnet::PlatformId;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn proxy_on_subgroup_with_access_modes() {
    // NWChem-style: a compute subgroup runs CCSD while the other ranks
    // idle, with the integral array marked read-only during the sweep.
    Runtime::run_with(6, quiet(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let world = rt.world_group();
        let in_group = p.rank() < 4;
        let sub = world
            .split(if in_group { 0 } else { 1 }, p.rank() as i64)
            .unwrap();
        if in_group {
            // a GA on the subgroup
            let a =
                GlobalArray::create_on(&rt, "sub", GaType::F64, &[12, 12], sub.clone()).unwrap();
            a.fill(1.0).unwrap();
            a.set_access_mode(AccessMode::ReadOnly).unwrap();
            let mut sum = 0.0;
            for _ in 0..5 {
                sum += a.get_patch(&[0, 0], &[12, 12]).unwrap().iter().sum::<f64>();
            }
            assert_eq!(sum, 5.0 * 144.0);
            a.set_access_mode(AccessMode::Standard).unwrap();
            a.sync();
            a.destroy().unwrap();
        }
    });
}

#[test]
fn ccsd_proxy_identical_on_cray_xe_platform_model() {
    // Platform choice must not change results, only virtual time.
    let cfg = CcsdConfig::tiny();
    let on_ib = Runtime::run_with(
        3,
        RuntimeConfig::on_platform(PlatformId::InfiniBandCluster),
        move |p| {
            let rt = ArmciMpi::new(p);
            run_ccsd(p, &rt, &cfg)
        },
    );
    let on_xe = Runtime::run_with(
        3,
        RuntimeConfig::on_platform(PlatformId::CrayXE6),
        move |p| {
            let rt = ArmciNative::new(p);
            run_ccsd(p, &rt, &cfg)
        },
    );
    assert_eq!(on_ib[0].energy, on_xe[0].energy);
    assert!(on_ib[0].elapsed > 0.0 && on_xe[0].elapsed > 0.0);
}

#[test]
fn mixed_ga_and_raw_armci_traffic() {
    // GA operations interleaved with raw ARMCI operations on separate
    // allocations — the interoperability scenario of Figure 1 (GA uses
    // ARMCI and MPI side by side).
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let a = GlobalArray::create(&rt, "ga", GaType::F64, &[16]).unwrap();
        let raw = rt.malloc(64).unwrap();
        a.zero().unwrap();
        rt.barrier();
        // raw ARMCI put next to GA accumulate
        if p.rank() == 0 {
            rt.put_f64s(&[9.0; 8], raw[3]).unwrap();
        }
        a.acc_patch(1.0, &[0], &[16], &[1.0; 16]).unwrap();
        a.sync();
        if p.rank() == 3 {
            assert_eq!(rt.get_f64s(raw[3], 8).unwrap(), vec![9.0; 8]);
        }
        let v = a.get_patch(&[0], &[16]).unwrap();
        assert!(v.iter().all(|&x| x == 4.0));
        // two-sided MPI messaging still works alongside (Figure 1: GA
        // programs use MPI collectives/p2p directly too)
        let w = p.world();
        if p.rank() == 0 {
            w.send(1, 77, b"interop");
        } else if p.rank() == 1 {
            let (msg, _) = w.recv(mpisim::RecvSrc::Rank(0), 77);
            assert_eq!(msg, b"interop");
        }
        a.sync();
        a.destroy().unwrap();
        rt.free(raw[p.rank()]).unwrap();
    });
}

#[test]
fn noncollective_group_proxy_run() {
    // Only a noncollectively-created subgroup runs a small proxy job —
    // the paper §V-A machinery end to end.
    Runtime::run_with(5, quiet(), |p: &Proc| {
        let rt = ArmciNative::new(p);
        let world = rt.world_group();
        let members = [0usize, 2, 3];
        if members.contains(&p.rank()) {
            let g = world.create_noncollective(&members);
            let a = GlobalArray::create_on(&rt, "nc", GaType::I64, &[4], g.clone()).unwrap();
            a.put_patch_i64(&[0], &[4], &[0; 4]).unwrap();
            a.sync();
            let t = a.read_inc(&[0], 1).unwrap();
            assert!(t < 3);
            a.sync();
            assert_eq!(a.get_patch_i64(&[0], &[1]).unwrap()[0], 3);
            a.sync();
            a.destroy().unwrap();
        }
    });
}

#[test]
fn strided_methods_consistent_through_ga() {
    // The GA patch layer must produce identical arrays no matter which
    // ARMCI-MPI strided method carries the traffic.
    use armci::StridedMethod;
    let methods = [
        StridedMethod::Direct,
        StridedMethod::IovDatatype,
        StridedMethod::IovBatched { batch: 2 },
        StridedMethod::IovConservative,
        StridedMethod::Auto,
    ];
    let mut results: Vec<Vec<f64>> = Vec::new();
    for m in methods {
        let cfg = Config {
            strided: m,
            iov: m,
            ..Default::default()
        };
        let out = Runtime::run_with(4, quiet(), move |p: &Proc| {
            let rt = ArmciMpi::with_config(p, cfg.clone());
            let a = GlobalArray::create(&rt, "m", GaType::F64, &[9, 7]).unwrap();
            a.zero().unwrap();
            if p.rank() == 1 {
                // patch [2,1) .. [7,7): 5 rows × 6 cols
                let data: Vec<f64> = (0..30).map(|i| (i * i) as f64).collect();
                a.put_patch(&[2, 1], &[7, 7], &data).unwrap();
            }
            a.sync();
            let full = a.get_patch(&[0, 0], &[9, 7]).unwrap();
            a.sync();
            a.destroy().unwrap();
            full
        })
        .swap_remove(0);
        results.push(out);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn ga_math_pipeline_both_backends() {
    // c = 2a - b; dot; norms — a mini numerical pipeline.
    fn pipeline(rt: &dyn Armci) -> (f64, f64) {
        let a = GlobalArray::create(rt, "a", GaType::F64, &[6, 6]).unwrap();
        let b = GlobalArray::create(rt, "b", GaType::F64, &[6, 6]).unwrap();
        let c = GlobalArray::create(rt, "c", GaType::F64, &[6, 6]).unwrap();
        a.fill(3.0).unwrap();
        b.fill(1.0).unwrap();
        c.add_from(2.0, &a, -1.0, &b).unwrap(); // c = 5
        let d = c.dot(&a).unwrap(); // 5·3·36
        let n = c.norm_inf().unwrap();
        a.sync();
        a.destroy().unwrap();
        b.destroy().unwrap();
        c.destroy().unwrap();
        (d, n)
    }
    let mpi = Runtime::run_with(4, quiet(), |p| pipeline(&ArmciMpi::new(p)))[0];
    let nat = Runtime::run_with(4, quiet(), |p| pipeline(&ArmciNative::new(p)))[0];
    assert_eq!(mpi, (540.0, 5.0));
    assert_eq!(nat, (540.0, 5.0));
}
