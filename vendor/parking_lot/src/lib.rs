//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it uses: [`Mutex`] with
//! non-poisoning `lock()`, [`Condvar::wait`] taking a guard by `&mut`,
//! and [`RwLock`] with `read()`/`write()`. All are thin wrappers over
//! `std::sync` primitives; poisoning is swallowed (a panicking holder
//! already aborts the simulated process, matching parking_lot's
//! semantics closely enough for the tests and simulator).

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take ownership.
    guard: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { guard: Some(g) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Condition variable whose `wait` takes the guard by `&mut`, like
/// parking_lot's.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self
            .inner
            .wait(g)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.guard = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader–writer lock (non-poisoning `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let mut w = l.write();
            *w = 2;
        }
        assert_eq!(*l.read(), 2);
    }
}
