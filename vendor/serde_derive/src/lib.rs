//! Offline stand-in for `serde_derive`.
//!
//! Derives `serde::Serialize` (the vendored trait, not real serde) for
//! the two shapes the workspace uses: structs with named fields and
//! enums whose variants are all unit-like. The token stream is parsed
//! by hand — no `syn`/`quote` available offline — so anything fancier
//! (tuple structs, generics, data-carrying variants) panics at compile
//! time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),",
                        name = item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {}\n    }}\n}}\n",
        item.name, body
    )
    .parse()
    .expect("generated impl parses")
}

enum ItemKind {
    /// Named field identifiers, in declaration order.
    Struct(Vec<String>),
    /// Unit variant identifiers, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = None;
    let mut name = None;

    // Walk "<attrs> <vis> (struct|enum) Name { ... }".
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next(); // pub(crate) etc.
                        }
                    }
                }
                "struct" => is_enum = Some(false),
                "enum" => is_enum = Some(true),
                other if is_enum.is_some() && name.is_none() => {
                    name = Some(other.to_string());
                }
                other => panic!("derive(Serialize): unexpected token `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive(Serialize): generic types are not supported offline")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.expect("derive(Serialize): item name before body");
                let kind = if is_enum == Some(true) {
                    ItemKind::Enum(parse_unit_variants(g.stream()))
                } else {
                    ItemKind::Struct(parse_named_fields(g.stream()))
                };
                return Item { name, kind };
            }
            other => panic!("derive(Serialize): unexpected token `{other}`"),
        }
    }
    panic!("derive(Serialize): only braced structs and enums are supported")
}

/// Extracts field names from a named-field struct body, skipping
/// attributes/visibility and ignoring type tokens (tracking `<...>`
/// depth so commas inside generics don't split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    let mut in_type = false;
    let mut angle_depth = 0usize;

    while let Some(tt) = iter.next() {
        if in_type {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => in_type = false,
                    _ => {}
                }
            }
            continue;
        }
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute body
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        in_type = true;
                        angle_depth = 0;
                    }
                    _ => {
                        panic!("derive(Serialize): only named-field structs are supported offline")
                    }
                }
            }
            other => panic!("derive(Serialize): unexpected token in struct body `{other}`"),
        }
    }
    fields
}

/// Extracts variant names from an enum body; panics on data-carrying
/// variants, which this stand-in cannot serialize.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();

    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "derive(Serialize): data-carrying enum variants are not supported offline"
                    );
                }
            }
            other => panic!("derive(Serialize): unexpected token in enum body `{other}`"),
        }
    }
    variants
}
