//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the subset the workspace uses: a [`Serialize`] trait
//! (plus the matching derive, re-exported from `serde_derive`) that
//! lowers values into a small JSON-like [`Value`] model which
//! `serde_json` then renders. The full serde serializer/visitor
//! machinery is intentionally absent.

pub use serde_derive::Serialize;

/// JSON-shaped data model produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Types that can be lowered into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
