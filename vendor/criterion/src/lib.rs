//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate keeps the workspace's `cargo bench` targets compiling and
//! running: each benchmark closure is executed for a small fixed number
//! of timed iterations and the mean wall time is printed. There is no
//! statistical analysis, warm-up, or HTML report — the benches act as
//! smoke tests plus rough timings, which is all an offline CI can use.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark. Small, because several workspace benches
/// simulate whole CCSD iterations per call.
const DEFAULT_ITERS: u32 = 10;

/// Top-level driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        total_nanos: 0,
        total_iters: 0,
    };
    f(&mut b);
    let mean = if b.total_iters > 0 {
        b.total_nanos as f64 / b.total_iters as f64
    } else {
        0.0
    };
    println!(
        "bench {label}: mean {mean:.0} ns/iter ({} iters)",
        b.total_iters
    );
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..DEFAULT_ITERS {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.total_iters += DEFAULT_ITERS as u64;
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Opaque value barrier re-exported for bench code that uses
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iters() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, DEFAULT_ITERS as u64);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("id", 4), &4u32, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
