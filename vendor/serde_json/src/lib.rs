//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] model as JSON text with 2-space-indented pretty printing,
//! which is all the workspace uses (`to_string_pretty`).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The vendored data model is infallible to
/// render, so this is never actually produced, but the signature
/// matches real serde_json so call sites can `.unwrap()`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(compact(&value.to_value()))
}

fn compact(v: &Value) -> String {
    let mut out = String::new();
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&compact(item));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(&mut out, k);
                out.push(':');
                out.push_str(&compact(val));
            }
            out.push('}');
        }
        scalar => write_value(&mut out, scalar, 0),
    }
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json errors here, we emit null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig3".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::UInt(8), Value::Float(1.5)]),
                    Value::Array(vec![Value::UInt(16), Value::Float(3.0)]),
                ]),
            ),
            ("none".into(), Value::Null),
        ]);
        let s = {
            struct W(Value);
            impl Serialize for W {
                fn to_value(&self) -> Value {
                    self.0.clone()
                }
            }
            to_string_pretty(&W(v)).unwrap()
        };
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("3.0"));
        assert!(s.contains("null"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn floats_keep_decimal_point() {
        let mut out = String::new();
        write_float(&mut out, 2.0);
        assert_eq!(out, "2.0");
        out.clear();
        write_float(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }
}
