//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] model as JSON text with 2-space-indented pretty printing
//! (`to_string_pretty`), and parses JSON text back into [`Value`]
//! (`from_str`) so artifact schemas can be validated without a
//! `Deserialize` machinery.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization or parse error. Rendering the vendored data model is
/// infallible, so serialization never produces one; parsing reports the
/// byte offset and a short description.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {offset}: {msg}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            write!(f, "serde_json stand-in error")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(compact(&value.to_value()))
}

/// Parses JSON text into a [`Value`]. Numbers without a fraction or
/// exponent parse as `Int`/`UInt`; everything else numeric is `Float`.
/// Trailing non-whitespace after the top-level value is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(Error::parse(p.pos, "trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, &format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, &format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(Error::parse(self.pos, "unexpected character")),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::parse(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::parse(self.pos, "bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // artifact schemas; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::parse(self.pos, "unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(start, "invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(start, "invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::parse(start, "invalid number"))
        }
    }
}

fn compact(v: &Value) -> String {
    let mut out = String::new();
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&compact(item));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(&mut out, k);
                out.push(':');
                out.push_str(&compact(val));
            }
            out.push('}');
        }
        scalar => write_value(&mut out, scalar, 0),
    }
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json errors here, we emit null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig3".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::UInt(8), Value::Float(1.5)]),
                    Value::Array(vec![Value::UInt(16), Value::Float(3.0)]),
                ]),
            ),
            ("none".into(), Value::Null),
        ]);
        let s = {
            struct W(Value);
            impl Serialize for W {
                fn to_value(&self) -> Value {
                    self.0.clone()
                }
            }
            to_string_pretty(&W(v)).unwrap()
        };
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("3.0"));
        assert!(s.contains("null"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig\"5\"".into())),
            ("warm".into(), Value::Bool(true)),
            ("n".into(), Value::Int(-3)),
            ("u".into(), Value::UInt(42)),
            ("bw".into(), Value::Float(2.5e9)),
            ("gap".into(), Value::Null),
            (
                "points".into(),
                Value::Array(vec![Value::UInt(8), Value::Float(0.25)]),
            ),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&W(v.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let compact = to_string(&W(v.clone())).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("{\"a\":1} trailing").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_numbers_keep_integer_types() {
        assert_eq!(from_str("7").unwrap(), Value::UInt(7));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("7.5").unwrap(), Value::Float(7.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn floats_keep_decimal_point() {
        let mut out = String::new();
        write_float(&mut out, 2.0);
        assert_eq!(out, "2.0");
        out.clear();
        write_float(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }
}
