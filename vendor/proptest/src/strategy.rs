//! Strategy trait and combinators: the value-generation half of the
//! proptest API surface the workspace uses.

use crate::collection::IntoSizeRange;
use crate::test_runner::TestRng;

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator: the outer value picks the inner strategy.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `collection::vec` strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    pub(crate) element: S,
    pub(crate) size: Z,
}

impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
