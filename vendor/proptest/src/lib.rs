//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate re-implements the subset of proptest the workspace tests rely
//! on: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `collection::vec`,
//! [`Just`](strategy::Just), the `proptest!` runner macro and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case panics with its generated values via
//!   the normal assertion message;
//! * deterministic seeding from the test's source location, so failures
//!   reproduce exactly across runs;
//! * `ProptestConfig` only carries `cases`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut crate::test_runner::TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut crate::test_runner::TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut crate::test_runner::TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing a `Vec` of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Runs each test item's body `cases` times with freshly generated
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    file!(), line!(), stringify!($name));
                let mut __ran: u32 = 0;
                let mut __rejected: u32 = 0;
                while __ran < __cfg.cases {
                    // The closure gives `prop_assume!` an early-return scope.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __ran += 1,
                        Err(_) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 10_000,
                                "prop_assume rejected 10000 cases in {}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..10, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..5, _y in 0i32..3) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn map_transforms() {
        let s = (1usize..5).prop_map(|x| x * 10);
        let mut rng = crate::test_runner::TestRng::deterministic("f", 1, "t");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            prop_assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }
}
