//! Runner support types: config, deterministic RNG, and the rejection
//! marker used by `prop_assume!`.

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` is
/// honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by a case that `prop_assume!` rejected.
#[derive(Debug)]
pub struct Rejected;

/// SplitMix64-seeded xoshiro256++ generator, seeded from the test's
/// source location so every run replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(file: &str, line: u32, name: &str) -> TestRng {
        // FNV-1a over the location gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(name.bytes()).chain(line.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
