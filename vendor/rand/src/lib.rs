//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-seeding subset the workspace tests use:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges
//! (half-open and inclusive) and f64 half-open ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality enough for
//! test-case generation, with zero external dependencies.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing generator methods (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u8..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-4i32..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
