//! Workspace root: re-exports for examples and integration tests.
pub use armci;
pub use armci_ds;
pub use armci_mpi;
pub use armci_native;
pub use ctree;
pub use ga;
pub use mpisim;
pub use nwchem_proxy;
pub use scalesim;
pub use simnet;
