//! Error types for the simulated MPI runtime.

use std::fmt;

/// Errors surfaced by the runtime. In real MPI most of these abort the job;
//  here they are `Result`s so tests can assert that erroneous programs are
//  detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// An RMA operation was issued outside any access epoch on its target.
    NoEpoch { target: usize },
    /// `lock` was called on a target that this origin already has locked
    /// (MPI-2 forbids nested locks of the same window/target pair).
    AlreadyLocked { target: usize },
    /// `unlock` without a matching `lock`.
    NotLocked { target: usize },
    /// Two operations within the same epoch touch overlapping target
    /// memory in a conflicting way (erroneous per MPI-2 §11.7).
    ConflictingAccess {
        target: usize,
        first: (usize, usize),
        second: (usize, usize),
    },
    /// Operation runs past the end of the target's window slice.
    OutOfBounds {
        target: usize,
        disp: usize,
        len: usize,
        size: usize,
    },
    /// Origin and target datatypes describe different numbers of bytes.
    TypeMismatch {
        origin_bytes: usize,
        target_bytes: usize,
    },
    /// A datatype is malformed (e.g. subarray sub-sizes exceed sizes).
    BadDatatype(String),
    /// Rank out of range for the communicator.
    BadRank { rank: usize, size: usize },
    /// A window handle was used after `free`.
    WinFreed,
    /// Collective invoked with inconsistent arguments across ranks.
    CollectiveMismatch(String),
    /// Attempt to use `lock`/`unlock` while `lock_all` is active, or vice
    /// versa.
    EpochModeMixed { target: usize },
    /// `shared_query` or an shm-routed operation on a target that does not
    /// share a node-local slab with the caller (remote node, or the window
    /// was not created with `allocate_shared`).
    ShmUnavailable { target: usize },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::NoEpoch { target } => {
                write!(
                    f,
                    "RMA operation on target {target} outside an access epoch"
                )
            }
            MpiError::AlreadyLocked { target } => {
                write!(f, "window/target {target} is already locked by this origin")
            }
            MpiError::NotLocked { target } => {
                write!(f, "unlock of target {target} without a matching lock")
            }
            MpiError::ConflictingAccess {
                target,
                first,
                second,
            } => write!(
                f,
                "conflicting RMA accesses within one epoch on target {target}: \
                 [{}..{}) vs [{}..{})",
                first.0,
                first.0 + first.1,
                second.0,
                second.0 + second.1
            ),
            MpiError::OutOfBounds {
                target,
                disp,
                len,
                size,
            } => write!(
                f,
                "access [{disp}..{}) outside window of {size} bytes on target {target}",
                disp + len
            ),
            MpiError::TypeMismatch {
                origin_bytes,
                target_bytes,
            } => write!(
                f,
                "origin datatype covers {origin_bytes} bytes but target covers {target_bytes}"
            ),
            MpiError::BadDatatype(msg) => write!(f, "malformed datatype: {msg}"),
            MpiError::BadRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::WinFreed => write!(f, "window used after free"),
            MpiError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            MpiError::EpochModeMixed { target } => {
                write!(f, "mixing lock/unlock with lock_all on target {target}")
            }
            MpiError::ShmUnavailable { target } => {
                write!(
                    f,
                    "target {target} does not share a node-local shared-memory slab with this rank"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::ConflictingAccess {
            target: 3,
            first: (0, 8),
            second: (4, 8),
        };
        let s = e.to_string();
        assert!(s.contains("target 3"));
        assert!(s.contains("[0..8)"));
        assert!(s.contains("[4..12)"));
    }

    #[test]
    fn out_of_bounds_reports_extent() {
        let e = MpiError::OutOfBounds {
            target: 1,
            disp: 100,
            len: 28,
            size: 64,
        };
        assert!(e.to_string().contains("[100..128)"));
    }
}
