//! An in-process, MPI-like parallel runtime.
//!
//! This crate is the **substrate substitution** for the MPI libraries and
//! machines the paper ran on: every simulated *process* is an OS thread, and
//! all MPI semantics that ARMCI-MPI depends on are implemented for real:
//!
//! * communicators and groups, including communicator duplication, `split`,
//!   and **noncollective communicator creation** via the recursive
//!   intercommunicator create-and-merge algorithm the paper cites \[9];
//! * two-sided point-to-point messaging with `ANY_SOURCE` / `ANY_TAG`
//!   wildcards (required by the queueing-mutex algorithm of §V-D);
//! * collectives: barrier, broadcast, reduce, allreduce, allgather(v),
//!   alltoall(v);
//! * derived datatypes: contiguous, vector, indexed, and **subarray** (used
//!   by the direct strided method of §VI-C);
//! * **passive-target RMA**: window creation, `lock`/`unlock` with shared
//!   and exclusive modes, `put`/`get`/`accumulate` with datatypes on both
//!   sides, and a *semantics checker* that reports the access patterns MPI-2
//!   declares erroneous (conflicting operations within an epoch, double
//!   locking);
//! * an [`mpi3`] module with the MPI-3 extensions the paper motivates:
//!   `lock_all` (epochless passive mode), `flush`, request-based operations,
//!   and atomic `fetch_and_op` / `compare_and_swap`.
//!
//! Data movement is real (`memcpy` between the per-rank window backings, all
//! under locks, so the simulator is data-race-free even for programs the
//! checker would flag); *time* is virtual, charged from the
//! [`simnet`] cost model of the selected platform. See `DESIGN.md` §2.

pub mod coll;
pub mod comm;
pub mod dtype;
pub mod error;
pub mod mpi3;
pub mod p2p;
pub mod progress;
pub mod runtime;
pub mod win;

pub use comm::{Comm, CommSplitType};
pub use dtype::{Datatype, DtypeCache, DtypeSig};
pub use error::{MpiError, MpiResult};
pub use p2p::{RecvSrc, Status, ANY_TAG};
pub use progress::ProgressModel;
pub use runtime::{Proc, Runtime, RuntimeConfig};
pub use win::{AccOp, ElemType, LockMode, RmaClass, ShmSection, WinHandle};
