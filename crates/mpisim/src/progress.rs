//! Passive-target progress modelling (Zhou & Gracia; Casper).
//!
//! In a real MPI implementation a passive-target operation — an
//! accumulate, an atomic, a lock handoff, a flush acknowledgement — only
//! completes once the *target* process enters the MPI library. Under load
//! imbalance the busiest rank therefore serializes everyone targeting it.
//! Historically this simulator priced every one-sided operation as if the
//! target made instantaneous progress (an idealised hardware-offload
//! NIC); this module adds the two realistic regimes:
//!
//! * [`ProgressModel::Host`] — host-side progress only: an operation
//!   round targeting a busy rank waits, in expectation, until the target
//!   next enters the library;
//! * [`ProgressModel::Agent`] — a per-node asynchronous progress agent
//!   drains inbound passive-target traffic on the target's behalf, so a
//!   round pays the (much smaller) agent forward + service cost from
//!   [`simnet::ProgressParams`] instead.
//!
//! # Determinism: the phase-profile expectation model
//!
//! Stall time is priced from **published compute profiles**, never from
//! live peeking at another thread's state (which would make virtual time
//! depend on wall-clock interleaving and can deadlock when two ranks
//! block on each other). Every rank keeps a monotone compute meter
//! (total [`crate::Proc::compute`] seconds and span count). On entry to
//! every **world-sized** collective it appends a [`PhaseProfile`]
//! snapshot to its append-only slot vector on the shared board. Because
//! the collective is a rendezvous, by the time any rank *leaves*
//! collective `k` every rank has published slot `k − 1`; an origin whose
//! own slot count is `k` therefore reads the target's slot `k − 1` —
//! always present, never mutated after publication, and indexed purely
//! by the origin's program order. The expected stall per operation round
//! is then
//!
//! ```text
//! E[stall] = busy_frac(target) · span(target) / 2
//! ```
//!
//! (`busy_frac` = compute seconds / elapsed virtual time, `span` = mean
//! compute-span length: a uniformly-arriving op waits half a span on
//! average, and only when it lands inside one). Before the first world
//! collective no profile exists and no stall is charged — the model
//! warms up over the application's natural synchronisation points.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// How passive-target remote completion is priced for a window handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressModel {
    /// Idealised instantaneous target progress (the historical model and
    /// the default for raw `mpisim` windows): no stall, no agent cost.
    #[default]
    Off,
    /// Host-side progress only: rounds targeting busy ranks stall for the
    /// expected time until the target re-enters the MPI library.
    Host,
    /// A per-node progress agent services inbound rounds at the priced
    /// agent cost, collapsing the host stall.
    Agent,
}

impl ProgressModel {
    /// Provenance string for benchmark rows (`none` = host-side only).
    pub fn name(self) -> &'static str {
        match self {
            ProgressModel::Off => "off",
            ProgressModel::Host => "none",
            ProgressModel::Agent => "agent",
        }
    }
}

/// One rank's compute profile as of a world-collective entry.
#[derive(Debug, Clone, Copy)]
pub struct PhaseProfile {
    /// Cumulative `Proc::compute` seconds since rank start.
    pub compute_s: f64,
    /// Cumulative number of compute spans.
    pub spans: u64,
    /// Virtual time of the snapshot.
    pub elapsed: f64,
}

/// Single-writer compute meter (the owning rank's thread is the only
/// writer; readers take consistent-enough relaxed snapshots at the
/// rendezvous, where the writer is parked inside the collective).
#[derive(Default)]
struct Meter {
    compute_bits: AtomicU64,
    spans: AtomicU64,
}

/// Shared progress board: per-rank meters and append-only profile slots.
pub(crate) struct ProgressBoard {
    meters: Vec<Meter>,
    profiles: Vec<RwLock<Vec<PhaseProfile>>>,
}

impl ProgressBoard {
    pub fn new(nranks: usize) -> ProgressBoard {
        ProgressBoard {
            meters: (0..nranks).map(|_| Meter::default()).collect(),
            profiles: (0..nranks).map(|_| RwLock::new(Vec::new())).collect(),
        }
    }

    /// Adds one compute span of `seconds` to `rank`'s meter. Called only
    /// from the rank's own thread.
    pub fn note_compute(&self, rank: usize, seconds: f64) {
        let m = &self.meters[rank];
        let total = f64::from_bits(m.compute_bits.load(Ordering::Relaxed)) + seconds;
        m.compute_bits.store(total.to_bits(), Ordering::Relaxed);
        m.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes `rank`'s current profile; called at entry to every
    /// world-sized collective, before the rendezvous.
    pub fn publish(&self, rank: usize, now: f64) {
        let m = &self.meters[rank];
        let prof = PhaseProfile {
            compute_s: f64::from_bits(m.compute_bits.load(Ordering::Relaxed)),
            spans: m.spans.load(Ordering::Relaxed),
            elapsed: now,
        };
        self.profiles[rank].write().push(prof);
    }

    /// Expected `(busy_frac, mean_span_s)` of `target` as seen by
    /// `origin`, from the freshest profile the rendezvous ordering
    /// guarantees is published. `None` before the first world collective
    /// or when the target has no compute on record.
    pub fn expected_busy(&self, origin: usize, target: usize) -> Option<(f64, f64)> {
        let k = self.profiles[origin].read().len();
        if k == 0 {
            return None;
        }
        let v = self.profiles[target].read();
        let p = v.get(k - 1)?;
        if p.spans == 0 || p.elapsed <= 0.0 || p.compute_s <= 0.0 {
            return None;
        }
        let busy = (p.compute_s / p.elapsed).clamp(0.0, 1.0);
        let span = p.compute_s / p.spans as f64;
        Some((busy, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_profile_before_first_collective() {
        let b = ProgressBoard::new(2);
        b.note_compute(1, 5.0);
        assert!(b.expected_busy(0, 1).is_none());
    }

    #[test]
    fn busy_fraction_and_span_from_published_profile() {
        let b = ProgressBoard::new(2);
        b.note_compute(1, 3.0);
        b.note_compute(1, 1.0);
        b.publish(0, 8.0);
        b.publish(1, 8.0);
        let (busy, span) = b.expected_busy(0, 1).unwrap();
        assert!((busy - 0.5).abs() < 1e-12);
        assert!((span - 2.0).abs() < 1e-12);
    }

    #[test]
    fn origin_reads_its_own_phase_index() {
        let b = ProgressBoard::new(2);
        b.note_compute(1, 1.0);
        b.publish(0, 2.0);
        b.publish(1, 2.0);
        // Target raced ahead and published again; origin still reads the
        // slot matching its own phase count.
        b.note_compute(1, 99.0);
        b.publish(1, 4.0);
        let (busy, span) = b.expected_busy(0, 1).unwrap();
        assert!((busy - 0.5).abs() < 1e-12);
        assert!((span - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_target_never_stalls() {
        let b = ProgressBoard::new(2);
        b.publish(0, 2.0);
        b.publish(1, 2.0);
        assert!(b.expected_busy(0, 1).is_none());
    }
}
