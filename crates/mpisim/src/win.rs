//! Passive-target one-sided communication (MPI-2 §11 subset).
//!
//! Windows are created collectively over a communicator; each member
//! contributes a local slice. Origins open access epochs with
//! [`WinHandle::lock`] (shared or exclusive) and issue `put` / `get` /
//! `accumulate` operations with derived datatypes on both sides.
//!
//! Two layers of protection coexist:
//!
//! 1. **Real synchronisation** — epoch locks are actual reader–writer locks
//!    and each operation's byte movement additionally holds a per-target
//!    I/O mutex, so the simulator itself is free of data races even when
//!    executing programs MPI would call erroneous.
//! 2. **Semantic checking** — when [`crate::RuntimeConfig::semantic_checks`]
//!    is on, the runtime reports (as `Err`) the patterns MPI-2 defines to be
//!    errors: conflicting operations within one epoch, operations outside an
//!    epoch, double locking. This is what forces ARMCI-MPI into its
//!    one-op-per-exclusive-epoch design (§V-C) — and our tests assert both
//!    the detection and the design's compliance.

use crate::comm::Comm;
use crate::dtype::{zip_segments, Datatype, DtypeCache};
use crate::error::{MpiError, MpiResult};
use crate::progress::ProgressModel;
use crate::runtime::Shared;
use parking_lot::{Condvar, Mutex};
use simnet::pool::{BufferPool, RegistrationPolicy};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Passive-target lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Element type for accumulate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    U8,
    I32,
    I64,
    F32,
    F64,
}

impl ElemType {
    /// Width in bytes.
    pub fn size(self) -> usize {
        match self {
            ElemType::U8 => 1,
            ElemType::I32 | ElemType::F32 => 4,
            ElemType::I64 | ElemType::F64 => 8,
        }
    }
}

/// Accumulate combine operator (subset of MPI predefined ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccOp {
    Sum,
    Replace,
    Min,
    Max,
}

/// Operation class of a scheduler-merged RMA issue (see
/// [`WinHandle::issue_merged`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaClass {
    Get,
    Put,
    Acc(ElemType, AccOp),
}

/// What an epoch-recorded operation did, for conflict detection.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpKind {
    Read,
    Write,
    Acc(ElemType, AccOp),
}

impl OpKind {
    /// MPI-2 compatibility: overlapping reads are fine; overlapping
    /// accumulates with the same type and op are fine; all else conflicts.
    fn compatible(self, other: OpKind) -> bool {
        match (self, other) {
            (OpKind::Read, OpKind::Read) => true,
            (OpKind::Acc(t1, o1), OpKind::Acc(t2, o2)) => t1 == t2 && o1 == o2,
            _ => false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpRecord {
    lo: usize,
    hi: usize,
    kind: OpKind,
}

struct Epoch {
    mode: LockMode,
    ops: Vec<OpRecord>,
    /// Operations issued so far in this epoch (always tracked, unlike
    /// `ops` which is only populated when semantic checks are on). Used by
    /// the cost model: operations after the first in an epoch pipeline and
    /// skip the per-message latency, which is what makes the *batched* IOV
    /// method profitable (§VI-A).
    issued: usize,
}

/// A reader–writer lock with writer preference whose guards are explicit
/// (MPI lock/unlock calls rather than lexical scopes).
struct TargetLock {
    m: Mutex<LockSt>,
    cv: Condvar,
}

#[derive(Default)]
struct LockSt {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
}

impl TargetLock {
    fn new() -> TargetLock {
        TargetLock {
            m: Mutex::new(LockSt::default()),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, mode: LockMode) {
        let mut st = self.m.lock();
        match mode {
            LockMode::Shared => {
                while st.writer || st.waiting_writers > 0 {
                    self.cv.wait(&mut st);
                }
                st.readers += 1;
            }
            LockMode::Exclusive => {
                st.waiting_writers += 1;
                while st.writer || st.readers > 0 {
                    self.cv.wait(&mut st);
                }
                st.waiting_writers -= 1;
                st.writer = true;
            }
        }
    }

    fn release(&self, mode: LockMode) {
        let mut st = self.m.lock();
        match mode {
            LockMode::Shared => {
                debug_assert!(st.readers > 0);
                st.readers -= 1;
            }
            LockMode::Exclusive => {
                debug_assert!(st.writer);
                st.writer = false;
            }
        }
        self.cv.notify_all();
    }
}

/// One rank's window backing store.
pub(crate) struct RankMem {
    buf: UnsafeCell<Box<[u8]>>,
    /// Serialises actual byte movement so that even *erroneous* concurrent
    /// accesses cannot race at the machine level.
    io: Mutex<()>,
}

// Safety: all access to `buf` goes through `io` (remote ops) or through the
// epoch locks guaranteeing exclusivity (local access).
unsafe impl Sync for RankMem {}
unsafe impl Send for RankMem {}

impl RankMem {
    fn new(size: usize) -> RankMem {
        RankMem {
            buf: UnsafeCell::new(vec![0u8; size].into_boxed_slice()),
            io: Mutex::new(()),
        }
    }
}

/// One node's shared slab (`MPI_Win_allocate_shared` backing): every rank
/// on the node gets a section of the same allocation, so intra-node peers
/// see each other's window memory at real addresses.
struct NodeSlab {
    buf: UnsafeCell<Box<[u8]>>,
    /// Serialises byte movement on the whole slab. Coarser than the
    /// per-rank `RankMem::io` (all node members share it) but the
    /// correctness argument is identical.
    io: Mutex<()>,
}

// Safety: all access to `buf` goes through `io`, as with `RankMem`.
unsafe impl Sync for NodeSlab {}
unsafe impl Send for NodeSlab {}

impl NodeSlab {
    fn new(size: usize) -> NodeSlab {
        NodeSlab {
            buf: UnsafeCell::new(vec![0u8; size].into_boxed_slice()),
            io: Mutex::new(()),
        }
    }
}

/// Section alignment inside a node slab (cache-line).
const SHM_ALIGN: usize = 64;

/// Node-carved backing for a shared window.
struct ShmBacking {
    /// One slab per node represented in the window, in node
    /// first-appearance order.
    slabs: Vec<NodeSlab>,
    /// Per window rank: `(slab index, byte offset)` of its section.
    place: Vec<(usize, usize)>,
    /// Per window rank: node id (from [`simnet::Platform::node_of`] of its
    /// world rank).
    node: Vec<usize>,
}

/// Where a window's bytes live.
enum Backing {
    /// `MPI_Win_create`: each rank owns a private allocation.
    PerRank(Vec<RankMem>),
    /// `MPI_Win_allocate_shared`: per-node slabs, sections carved per rank.
    Shared(ShmBacking),
}

/// A view of one rank's window section: the I/O mutex to hold, the backing
/// allocation, and the section's extent within it. All byte movement —
/// RMA, staging, local access, and the shm fast path — goes through
/// [`Section::with`] / [`Section::with_mut`], which take the lock before
/// dereferencing.
pub(crate) struct Section<'a> {
    io: &'a Mutex<()>,
    buf: *mut Box<[u8]>,
    off: usize,
    len: usize,
}

impl Section<'_> {
    pub(crate) fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let _io = self.io.lock();
        // Safety: `io` serialises all byte movement on this backing.
        let buf = unsafe { &**self.buf };
        f(&buf[self.off..self.off + self.len])
    }

    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let _io = self.io.lock();
        // Safety: `io` serialises all byte movement on this backing.
        let buf = unsafe { &mut **self.buf };
        f(&mut buf[self.off..self.off + self.len])
    }
}

use std::cell::UnsafeCell;

/// Shared window state.
pub(crate) struct WinInner {
    pub id: u64,
    pub sizes: Vec<usize>,
    backing: Backing,
    locks: Vec<TargetLock>,
    freed: AtomicBool,
}

impl WinInner {
    /// The section view of `target`'s window slice.
    fn section(&self, target: usize) -> Section<'_> {
        match &self.backing {
            Backing::PerRank(mem) => {
                let m = &mem[target];
                Section {
                    io: &m.io,
                    buf: m.buf.get(),
                    off: 0,
                    len: self.sizes[target],
                }
            }
            Backing::Shared(shm) => {
                let (slab, off) = shm.place[target];
                let s = &shm.slabs[slab];
                Section {
                    io: &s.io,
                    buf: s.buf.get(),
                    off,
                    len: self.sizes[target],
                }
            }
        }
    }
}

/// One rank's handle on a window. Not `Send`: epoch state is origin-local,
/// exactly like MPI's per-process epoch bookkeeping.
pub struct WinHandle {
    pub(crate) shared: Arc<Shared>,
    pub(crate) inner: Arc<WinInner>,
    pub(crate) comm: Comm,
    epochs: RefCell<HashMap<usize, Epoch>>,
    /// Scratch pool for datatype pack/unpack staging. Policy is
    /// `Unregistered`: these copies are simulator-internal (they never
    /// cross the modelled NIC), so only the allocator churn is saved —
    /// the cost model is untouched.
    pool: BufferPool,
    /// Committed-datatype cache (§VI-B): repeated non-contiguous shapes
    /// skip the pack-descriptor build cost. Origin-local, like MPI's
    /// committed handles.
    dtype_cache: RefCell<DtypeCache>,
    pub(crate) lock_all_active: Cell<bool>,
    /// Active-target (fence) epoch open on this handle (§III "active
    /// mode"). Between two `fence` calls every rank may be both origin
    /// and target without per-target locks.
    active_epoch: Cell<bool>,
    /// How remote passive-target completion is priced on this handle
    /// (see [`crate::progress`]). Origin-local, like the epoch state.
    progress: Cell<ProgressModel>,
}

impl WinHandle {
    /// Collectively creates a window; this rank contributes `local_size`
    /// bytes (zero-initialised). Zero-size contributions are allowed.
    pub fn create(comm: &Comm, local_size: usize) -> WinHandle {
        // Leader allocates the id (recycled from freed windows when
        // available, so alloc/free cycles keep the id space bounded).
        let id = if comm.rank() == 0 {
            Some(comm.shared.alloc_win_id())
        } else {
            None
        };
        let id = comm.bcast_u64(0, id);
        let sizes: Vec<usize> = comm
            .allgather_u64(local_size as u64)
            .into_iter()
            .map(|s| s as usize)
            .collect();
        let inner = {
            let mut wins = comm.shared.wins.write();
            Arc::clone(wins.entry(id).or_insert_with(|| {
                Arc::new(WinInner {
                    id,
                    backing: Backing::PerRank(sizes.iter().map(|&s| RankMem::new(s)).collect()),
                    locks: sizes.iter().map(|_| TargetLock::new()).collect(),
                    sizes,
                    freed: AtomicBool::new(false),
                })
            }))
        };
        Self::from_inner(comm, inner)
    }

    /// Collectively creates a **shared-memory** window
    /// (`MPI_Win_allocate_shared`): ranks on the same node carve sections
    /// out of one per-node slab, so intra-node peers can reach each
    /// other's window memory with plain loads and stores
    /// ([`WinHandle::shared_query`]) instead of RMA. Inter-node pairs fall
    /// back to the ordinary RMA path on the same window.
    ///
    /// The rank → node mapping comes from the platform's single
    /// authoritative [`simnet::Platform::node_of`]; the layout (slab order,
    /// section offsets, 64-byte alignment) is computed identically on
    /// every rank from the allgathered sizes, so the collective needs no
    /// extra exchange beyond `create`'s.
    pub fn allocate_shared(comm: &Comm, local_size: usize) -> WinHandle {
        let id = if comm.rank() == 0 {
            Some(comm.shared.alloc_win_id())
        } else {
            None
        };
        let id = comm.bcast_u64(0, id);
        let sizes: Vec<usize> = comm
            .allgather_u64(local_size as u64)
            .into_iter()
            .map(|s| s as usize)
            .collect();
        let plat = comm.platform();
        let node: Vec<usize> = (0..comm.size())
            .map(|r| plat.node_of(comm.world_rank_of(r)))
            .collect();
        // Deterministic carve: slabs in node first-appearance order,
        // sections appended in window-rank order, cache-line aligned.
        let mut slab_sizes: Vec<(usize, usize)> = Vec::new(); // (node, bytes)
        let mut place = Vec::with_capacity(sizes.len());
        for (r, &sz) in sizes.iter().enumerate() {
            let si = match slab_sizes.iter().position(|&(n, _)| n == node[r]) {
                Some(i) => i,
                None => {
                    slab_sizes.push((node[r], 0));
                    slab_sizes.len() - 1
                }
            };
            place.push((si, slab_sizes[si].1));
            slab_sizes[si].1 += sz.next_multiple_of(SHM_ALIGN);
        }
        let inner = {
            let mut wins = comm.shared.wins.write();
            Arc::clone(wins.entry(id).or_insert_with(|| {
                Arc::new(WinInner {
                    id,
                    backing: Backing::Shared(ShmBacking {
                        slabs: slab_sizes.iter().map(|&(_, b)| NodeSlab::new(b)).collect(),
                        place,
                        node,
                    }),
                    locks: sizes.iter().map(|_| TargetLock::new()).collect(),
                    sizes,
                    freed: AtomicBool::new(false),
                })
            }))
        };
        Self::from_inner(comm, inner)
    }

    fn from_inner(comm: &Comm, inner: Arc<WinInner>) -> WinHandle {
        WinHandle {
            shared: Arc::clone(&comm.shared),
            inner,
            comm: comm.clone(),
            epochs: RefCell::new(HashMap::new()),
            pool: BufferPool::new(
                RegistrationPolicy::Unregistered,
                comm.platform().reg.clone(),
            ),
            dtype_cache: RefCell::new(DtypeCache::new(64)),
            lock_all_active: Cell::new(false),
            active_epoch: Cell::new(false),
            progress: Cell::new(ProgressModel::Off),
        }
    }

    /// Active-target synchronisation (`MPI_Win_fence`): collective; closes
    /// the previous active access/exposure epoch and opens a new one. The
    /// paper's §III notes active mode "requires synchronization among all
    /// parties", which is why ARMCI-MPI uses passive mode — this exists to
    /// complete the model (and for programs that *are* bulk-synchronous).
    ///
    /// Mixing fence epochs with open passive epochs on the same handle is
    /// rejected, like the standard's matching rules.
    pub fn fence(&self) -> MpiResult<()> {
        self.check_alive()?;
        if !self.epochs.borrow().is_empty() || self.lock_all_active.get() {
            return Err(MpiError::EpochModeMixed { target: usize::MAX });
        }
        self.comm.barrier();
        self.active_epoch.set(true);
        self.charge(0.5 * self.params().epoch_overhead);
        if obs::enabled() {
            obs::instant_at(obs::EventKind::FenceBegin { win: self.inner.id }, self.vt());
        }
        Ok(())
    }

    /// Ends active-target mode on this handle (an `MPI_Win_fence` with
    /// `MPI_MODE_NOSUCCEED`): completes outstanding operations and leaves
    /// no epoch open.
    pub fn fence_end(&self) -> MpiResult<()> {
        self.check_alive()?;
        if !self.active_epoch.get() {
            return Err(MpiError::NoEpoch { target: usize::MAX });
        }
        self.comm.barrier();
        self.active_epoch.set(false);
        self.charge(0.5 * self.params().epoch_overhead);
        if obs::enabled() {
            obs::instant_at(obs::EventKind::FenceEnd { win: self.inner.id }, self.vt());
        }
        Ok(())
    }

    /// The communicator the window was created on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Window id (diagnostic).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Size in bytes of `rank`'s window slice.
    pub fn size_of(&self, rank: usize) -> usize {
        self.inner.sizes[rank]
    }

    fn check_alive(&self) -> MpiResult<()> {
        if self.inner.freed.load(Ordering::Acquire) {
            Err(MpiError::WinFreed)
        } else {
            Ok(())
        }
    }

    fn charge(&self, dt: f64) {
        if self.shared.cfg.charge_time {
            self.shared.clocks[self.comm.my_world_rank()].advance(dt);
        }
    }

    /// This rank's current virtual time (for trace event stamps).
    pub(crate) fn vt(&self) -> f64 {
        self.shared.clocks[self.comm.my_world_rank()].now()
    }

    fn params(&self) -> &simnet::BackendParams {
        &self.shared.cfg.platform.mpi
    }

    /// RAMC-style channel parameters of the configured platform, for wire
    /// backends that price transfers themselves (doorbell + completion
    /// queue instead of MPI epochs).
    pub fn channel_params(&self) -> &simnet::ChannelParams {
        &self.shared.cfg.platform.channel
    }

    /// Whether a window-wide `lock_all` epoch is currently open from this
    /// rank. Transport backends use this to decide whether a byte-protocol
    /// access needs its own lock or is already covered.
    pub fn lock_all_is_active(&self) -> bool {
        self.lock_all_active.get()
    }

    /// This rank's current virtual time (trace-event stamps for backends
    /// that emit their own events).
    pub fn vnow(&self) -> f64 {
        self.vt()
    }

    /// Advances this rank's virtual clock by `dt` (honouring
    /// `charge_time`). For transport backends that compute their own
    /// costs instead of going through the MPI-priced entry points.
    pub fn charge_virtual(&self, dt: f64) {
        self.charge(dt);
    }

    /// Wire serialization time of `bytes` under the MPI link for `op` —
    /// the NIC occupancy a transfer holds regardless of which backend
    /// priced it.
    pub(crate) fn wire_ser(&self, op: simnet::Op, bytes: usize) -> f64 {
        let link = self.params().link(op);
        bytes as f64 / link.effective_peak(bytes)
    }

    /// Extra virtual-time delay the shared-NIC congestion model imposes on
    /// a transfer of `ser` seconds wire occupancy in `msgs` messages to
    /// `target` (a rank of this window's communicator). Zero when the
    /// congestion model is off or the peer is node-local.
    pub fn net_extra(&self, target: usize, ser: f64, msgs: u64) -> f64 {
        let Some(net) = &self.shared.net else {
            return 0.0;
        };
        let plat = &self.shared.cfg.platform;
        let src = plat.node_of(self.comm.my_world_rank());
        let dst = plat.node_of(self.comm.world_rank_of(target));
        let extra = net.admit(self.vt(), src, dst, ser, msgs);
        if extra > 0.0 && obs::enabled() {
            let t0 = self.vt();
            obs::span(
                obs::EventKind::Wait {
                    cat: obs::WaitCat::Congestion,
                    src: self.comm.world_rank_of(target) as u32,
                    obj: self.inner.id,
                },
                t0,
                t0 + extra,
            );
        }
        extra
    }

    /// Selects how remote passive-target completion is priced on this
    /// handle (see [`crate::progress`]). Layers above resolve their
    /// configured [`ProgressModel`] once per window; raw windows default
    /// to [`ProgressModel::Off`] (idealised instantaneous progress).
    pub fn set_progress_model(&self, model: ProgressModel) {
        self.progress.set(model);
    }

    /// The progress model active on this handle.
    pub fn progress_model(&self) -> ProgressModel {
        self.progress.get()
    }

    /// Extra virtual-time delay `rounds` target-serviced protocol rounds
    /// (lock grant, operation completion, unlock/flush acknowledgement,
    /// RMW) pay for the *target's* progress, under this handle's
    /// [`ProgressModel`]. Zero for self- and same-node targets (the shm
    /// tier and a co-located agent give effectively hardware progress),
    /// and zero until the progress board has a published profile for the
    /// pair. Under `Host` the expected stall is emitted as a
    /// `Wait{Progress}` span; under `Agent` the (much smaller) agent
    /// service time is emitted as an `AgentDrain` span carrying the stall
    /// it avoided.
    pub fn progress_extra(&self, target: usize, rounds: u32) -> f64 {
        let model = self.progress.get();
        if model == ProgressModel::Off || rounds == 0 {
            return 0.0;
        }
        let me = self.comm.my_world_rank();
        let tw = self.comm.world_rank_of(target);
        let plat = &self.shared.cfg.platform;
        if tw == me || plat.same_node(me, tw) {
            return 0.0;
        }
        let Some((busy, span)) = self.shared.progress.expected_busy(me, tw) else {
            return 0.0;
        };
        if busy <= 0.0 {
            return 0.0;
        }
        let stall = rounds as f64 * busy * 0.5 * span;
        match model {
            ProgressModel::Host => {
                if stall > 0.0 && obs::enabled() {
                    let t0 = self.vt();
                    obs::span(
                        obs::EventKind::Wait {
                            cat: obs::WaitCat::Progress,
                            src: tw as u32,
                            obj: self.inner.id,
                        },
                        t0,
                        t0 + stall,
                    );
                }
                stall
            }
            ProgressModel::Agent => {
                let rpn = plat.cores_per_node().max(1) as usize;
                let extra = rounds as f64 * busy * plat.progress.round_cost(rpn);
                if obs::enabled() {
                    let t0 = self.vt();
                    obs::span(
                        obs::EventKind::AgentDrain {
                            win: self.inner.id,
                            target: tw as u32,
                            ops: rounds,
                            avoided_s: (stall - extra).max(0.0),
                        },
                        t0,
                        t0 + extra,
                    );
                }
                extra
            }
            ProgressModel::Off => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Epochs
    // ------------------------------------------------------------------

    /// Begins a passive-target access epoch on `target`.
    pub fn lock(&self, mode: LockMode, target: usize) -> MpiResult<()> {
        self.check_alive()?;
        if target >= self.inner.sizes.len() {
            return Err(MpiError::BadRank {
                rank: target,
                size: self.inner.sizes.len(),
            });
        }
        if self.lock_all_active.get() {
            return Err(MpiError::EpochModeMixed { target });
        }
        if self.epochs.borrow().contains_key(&target) {
            return Err(MpiError::AlreadyLocked { target });
        }
        self.inner.locks[target].acquire(mode);
        self.epochs.borrow_mut().insert(
            target,
            Epoch {
                mode,
                ops: Vec::new(),
                issued: 0,
            },
        );
        // The lock grant is a target-serviced protocol round.
        let prog = self.progress_extra(target, 1);
        self.charge(0.5 * self.params().epoch_overhead + prog);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::LockAcquire {
                    win: self.inner.id,
                    target: target as u32,
                    exclusive: mode == LockMode::Exclusive,
                },
                self.vt(),
            );
        }
        Ok(())
    }

    /// Ends the epoch on `target`, completing all its operations.
    pub fn unlock(&self, target: usize) -> MpiResult<()> {
        self.check_alive()?;
        let ep = self
            .epochs
            .borrow_mut()
            .remove(&target)
            .ok_or(MpiError::NotLocked { target })?;
        self.inner.locks[target].release(ep.mode);
        // Unlock completes the epoch remotely: one more serviced round.
        let prog = self.progress_extra(target, 1);
        self.charge(0.5 * self.params().epoch_overhead + prog);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::LockRelease {
                    win: self.inner.id,
                    target: target as u32,
                },
                self.vt(),
            );
        }
        Ok(())
    }

    /// Is an epoch currently open on `target`?
    pub fn is_locked(&self, target: usize) -> bool {
        self.epochs.borrow().contains_key(&target)
            || self.lock_all_active.get()
            || self.active_epoch.get()
    }

    /// Mode of the open epoch on `target`, if any.
    pub fn lock_mode(&self, target: usize) -> Option<LockMode> {
        self.epochs.borrow().get(&target).map(|e| e.mode)
    }

    /// Validates epoch presence and (optionally) records + conflict-checks
    /// the operation's target ranges.
    fn admit(&self, target: usize, tdisp: usize, tdt: &Datatype, kind: OpKind) -> MpiResult<()> {
        let size = self.inner.sizes[target];
        let extent = tdt.extent();
        if tdisp + extent > size {
            return Err(MpiError::OutOfBounds {
                target,
                disp: tdisp,
                len: extent,
                size,
            });
        }
        let mut epochs = self.epochs.borrow_mut();
        let ep = match epochs.get_mut(&target) {
            Some(e) => e,
            // MPI-3 lock_all: conflicts undefined, not erroneous.
            None if self.lock_all_active.get() => return Ok(()),
            // Active-target epoch: the fences provide the synchronisation;
            // conflicting access rules are the programmer's bulk-sync
            // discipline (not tracked per-target here).
            None if self.active_epoch.get() => return Ok(()),
            None => return Err(MpiError::NoEpoch { target }),
        };
        if self.shared.cfg.semantic_checks {
            for (off, len) in tdt.segments() {
                let (lo, hi) = (tdisp + off, tdisp + off + len);
                for r in &ep.ops {
                    if lo < r.hi && r.lo < hi && !kind.compatible(r.kind) {
                        return Err(MpiError::ConflictingAccess {
                            target,
                            first: (r.lo, r.hi - r.lo),
                            second: (lo, hi - lo),
                        });
                    }
                }
                ep.ops.push(OpRecord { lo, hi, kind });
            }
        }
        Ok(())
    }

    /// Virtual-time price of one RMA operation.
    ///
    /// `issued_before` is the number of operations already issued in the
    /// same epoch: follow-on operations pipeline behind the first and skip
    /// the per-message latency, and — when the platform models the
    /// MVAPICH2 batched-operation bug — accrue growing queueing overhead
    /// instead (Figure 4b). `cached` means the committed-datatype cache
    /// held this shape's pack descriptor, waiving the one-time
    /// `dtype_setup` (per-segment walk and pack copies are still paid).
    fn op_cost(
        &self,
        op: simnet::Op,
        bytes: usize,
        nsegs: usize,
        issued_before: usize,
        cached: bool,
    ) -> f64 {
        let p = self.params();
        let link = p.link(op);
        let mut op_over = p.op_overhead;
        if issued_before > 0 {
            if let Some(scale) = p.batched_bug {
                op_over *= 1.0 + issued_before as f64 / scale;
            }
        }
        let mut t = op_over + bytes as f64 / link.effective_peak(bytes) + p.seg_overhead;
        if issued_before == 0 {
            t += link.alpha;
        }
        if nsegs > 1 {
            if !cached {
                t += p.dtype_setup;
            }
            t += nsegs as f64 * p.dtype_seg_overhead + 2.0 * bytes as f64 / p.pack_rate;
        }
        if op == simnet::Op::Acc {
            t += p.combine_cost(bytes);
        }
        t
    }

    /// Consults the committed-datatype cache for the (origin, target)
    /// shape of a non-contiguous transfer. Returns `true` on hit; records
    /// the consultation as a `DtypeCommit` instant.
    fn dtype_commit(&self, odt: &Datatype, tdt: &Datatype) -> bool {
        let hit = self.dtype_cache.borrow_mut().commit_pair(odt, tdt);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::DtypeCommit {
                    win: self.inner.id,
                    hit,
                },
                self.vt(),
            );
        }
        hit
    }

    /// `(hits, misses, evictions)` of this handle's datatype cache.
    pub fn dtype_cache_stats(&self) -> (u64, u64, u64) {
        let c = self.dtype_cache.borrow();
        (c.hits, c.misses, c.evictions)
    }

    /// Records an MPI-level RMA event — plus a pack span when the datatype
    /// is non-contiguous, sized by the same pack model `op_cost` charges —
    /// at the current virtual time.
    fn note_rma(&self, kind: obs::OpKind, target: usize, bytes: usize, nsegs: usize, cached: bool) {
        if !obs::enabled() {
            return;
        }
        let ts = self.vt();
        obs::instant_at(
            obs::EventKind::Rma {
                win: self.inner.id,
                target: target as u32,
                kind,
                bytes: bytes as u64,
            },
            ts,
        );
        if nsegs > 1 {
            let p = self.params();
            let setup = if cached { 0.0 } else { p.dtype_setup };
            let pack =
                setup + nsegs as f64 * p.dtype_seg_overhead + 2.0 * bytes as f64 / p.pack_rate;
            obs::span(
                obs::EventKind::Pack {
                    win: self.inner.id,
                    bytes: bytes as u64,
                },
                ts,
                ts + pack,
            );
        }
    }

    /// Bumps and returns the prior per-epoch issue counter for `target`.
    fn bump_issued(&self, target: usize) -> usize {
        let mut epochs = self.epochs.borrow_mut();
        match epochs.get_mut(&target) {
            Some(ep) => {
                let n = ep.issued;
                ep.issued += 1;
                n
            }
            // lock_all: treat every op as a fresh issue (no pipelining
            // credit; the MPI-3 backend charges flushes separately).
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// One-sided put: origin bytes (selected by `odt` within `origin`) are
    /// written into `target`'s window (selected by `tdt` at `tdisp`).
    pub fn put(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let cost = self.put_core(origin, odt, target, tdisp, tdt)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Put, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        self.charge(cost + extra + prog);
        Ok(())
    }

    /// Validates and executes a put, returning its full virtual-time cost
    /// *without* charging it. The blocking entry point charges the whole
    /// cost; the request-based entry point (`rput`) charges only the issue
    /// overhead and defers the remainder to the request's `wait`.
    pub(crate) fn put_core(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Write)?;
        let pairs = zip_segments(odt, tdt)?;
        self.inner.section(target).with_mut(|dst| {
            for (ooff, toff, len) in &pairs {
                dst[tdisp + toff..tdisp + toff + len].copy_from_slice(&origin[*ooff..*ooff + *len]);
            }
        });
        let issued = self.bump_issued(target);
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let cached = nsegs > 1 && self.dtype_commit(odt, tdt);
        self.note_rma(obs::OpKind::Put, target, odt.size(), nsegs, cached);
        Ok(self.op_cost(simnet::Op::Put, odt.size(), nsegs, issued, cached))
    }

    /// One-sided get: bytes from `target`'s window into `origin`.
    pub fn get(
        &self,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let cost = self.get_core(origin, odt, target, tdisp, tdt)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Get, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        self.charge(cost + extra + prog);
        Ok(())
    }

    /// `get` minus the charge; see [`WinHandle::put_core`].
    pub(crate) fn get_core(
        &self,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Read)?;
        let pairs = zip_segments(odt, tdt)?;
        self.inner.section(target).with(|src| {
            for (ooff, toff, len) in &pairs {
                origin[*ooff..*ooff + *len].copy_from_slice(&src[tdisp + toff..tdisp + toff + len]);
            }
        });
        let issued = self.bump_issued(target);
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let cached = nsegs > 1 && self.dtype_commit(odt, tdt);
        self.note_rma(obs::OpKind::Get, target, odt.size(), nsegs, cached);
        Ok(self.op_cost(simnet::Op::Get, odt.size(), nsegs, issued, cached))
    }

    /// One-sided accumulate: `target[i] = target[i] ⊕ origin[i]` element
    /// wise for the given element type. Every target segment must be
    /// element-aligned.
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Accumulate's signature
    pub fn accumulate(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        let cost = self.accumulate_core(origin, odt, target, tdisp, tdt, elem, op)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Acc, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        self.charge(cost + extra + prog);
        Ok(())
    }

    /// `accumulate` minus the charge; see [`WinHandle::put_core`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn accumulate_core(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        let es = elem.size();
        if !odt.size().is_multiple_of(es) {
            return Err(MpiError::BadDatatype(format!(
                "accumulate of {} bytes not a multiple of element size {es}",
                odt.size()
            )));
        }
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Acc(elem, op))?;
        // Stage the origin contiguously, then combine per target segment.
        let osegs = odt.segments();
        let tsegs = tdt.segments();
        for &(_, len) in &tsegs {
            if len % es != 0 {
                return Err(MpiError::BadDatatype(format!(
                    "target segment of {len} bytes not element-aligned (elem {es})"
                )));
            }
        }
        if odt.size() != tdt.size() {
            return Err(MpiError::TypeMismatch {
                origin_bytes: odt.size(),
                target_bytes: tdt.size(),
            });
        }
        // Pack the origin into pooled scratch (steady-state: zero
        // allocations per accumulate).
        let mut staged = self.pool.take(odt.size());
        let mut w = 0usize;
        for &(off, len) in &osegs {
            staged[w..w + len].copy_from_slice(&origin[off..off + len]);
            w += len;
        }
        self.inner.section(target).with_mut(|dst| {
            let mut s = 0usize;
            for &(toff, len) in &tsegs {
                apply_acc(
                    &mut dst[tdisp + toff..tdisp + toff + len],
                    &staged[s..s + len],
                    elem,
                    op,
                );
                s += len;
            }
        });
        let issued = self.bump_issued(target);
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let cached = nsegs > 1 && self.dtype_commit(odt, tdt);
        self.note_rma(obs::OpKind::Acc, target, odt.size(), nsegs, cached);
        Ok(self.op_cost(simnet::Op::Acc, odt.size(), nsegs, issued, cached))
    }

    // ------------------------------------------------------------------
    // Coalescing-scheduler support
    // ------------------------------------------------------------------
    //
    // The transfer engine's coalescing scheduler moves bytes eagerly at
    // enqueue time (`stage_*`, below: bounds-checked and serialised but
    // uncharged, eventless, and epoch-free) and defers all pricing and
    // epoch accounting to flush time, where whole runs of same-class ops
    // are issued as one merged RMA (`issue_merged`). Splitting movement
    // from pricing this way keeps queued operations free of raw-pointer
    // lifetime hazards — the caller's buffers are consumed before enqueue
    // returns, exactly like the existing request-based (`rput`) path.

    /// Bounds check shared by the stage movers.
    fn stage_check(&self, target: usize, tdisp: usize, len: usize) -> MpiResult<()> {
        self.check_alive()?;
        if target >= self.inner.sizes.len() {
            return Err(MpiError::BadRank {
                rank: target,
                size: self.inner.sizes.len(),
            });
        }
        let size = self.inner.sizes[target];
        if tdisp + len > size {
            return Err(MpiError::OutOfBounds {
                target,
                disp: tdisp,
                len,
                size,
            });
        }
        Ok(())
    }

    /// Moves put bytes for a queued (scheduler-deferred) operation.
    pub fn stage_put_bytes(&self, origin: &[u8], target: usize, tdisp: usize) -> MpiResult<()> {
        self.stage_check(target, tdisp, origin.len())?;
        self.inner
            .section(target)
            .with_mut(|dst| dst[tdisp..tdisp + origin.len()].copy_from_slice(origin));
        Ok(())
    }

    /// Moves get bytes for a queued (scheduler-deferred) operation.
    pub fn stage_get_bytes(&self, origin: &mut [u8], target: usize, tdisp: usize) -> MpiResult<()> {
        self.stage_check(target, tdisp, origin.len())?;
        self.inner
            .section(target)
            .with(|src| origin.copy_from_slice(&src[tdisp..tdisp + origin.len()]));
        Ok(())
    }

    /// Applies accumulate bytes for a queued (scheduler-deferred)
    /// operation. Element alignment is the caller's contract, as with
    /// [`WinHandle::accumulate`].
    pub fn stage_acc_bytes(
        &self,
        origin: &[u8],
        target: usize,
        tdisp: usize,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        let es = elem.size();
        if !origin.len().is_multiple_of(es) {
            return Err(MpiError::BadDatatype(format!(
                "accumulate of {} bytes not a multiple of element size {es}",
                origin.len()
            )));
        }
        self.stage_check(target, tdisp, origin.len())?;
        self.inner
            .section(target)
            .with_mut(|dst| apply_acc(&mut dst[tdisp..tdisp + origin.len()], origin, elem, op));
        Ok(())
    }

    /// Prices and records one scheduler-merged RMA: a whole run of
    /// same-class queued operations issued as a single wire operation
    /// whose target datatype is the merged segment list (window-absolute
    /// `(offset, len)` pairs, disjoint and ascending — the scheduler
    /// proves this with the conflict tree before calling). Bytes have
    /// already moved via the `stage_*` movers; this performs the epoch
    /// admission, consults the committed-datatype cache, records the RMA
    /// (and pack) events, and returns the virtual-time cost for the
    /// caller to charge or defer.
    pub fn issue_merged(
        &self,
        class: RmaClass,
        target: usize,
        segs: &[(usize, usize)],
    ) -> MpiResult<f64> {
        self.check_alive()?;
        let tdt = Datatype::Indexed {
            blocks: segs.to_vec(),
        };
        let kind = match class {
            RmaClass::Get => OpKind::Read,
            RmaClass::Put => OpKind::Write,
            RmaClass::Acc(elem, op) => OpKind::Acc(elem, op),
        };
        self.admit(target, 0, &tdt, kind)?;
        let bytes = tdt.size();
        let nsegs = tdt.num_segments();
        let odt = Datatype::contiguous(bytes);
        let issued = self.bump_issued(target);
        let cached = nsegs > 1 && self.dtype_commit(&odt, &tdt);
        let (op, okind) = match class {
            RmaClass::Get => (simnet::Op::Get, obs::OpKind::Get),
            RmaClass::Put => (simnet::Op::Put, obs::OpKind::Put),
            RmaClass::Acc(..) => (simnet::Op::Acc, obs::OpKind::Acc),
        };
        self.note_rma(okind, target, bytes, nsegs, cached);
        let extra = self.net_extra(target, self.wire_ser(op, bytes), 1);
        let prog = self.progress_extra(target, 1);
        Ok(self.op_cost(op, bytes, nsegs, issued, cached) + extra + prog)
    }

    /// Contiguous-put convenience.
    pub fn put_bytes(&self, origin: &[u8], target: usize, tdisp: usize) -> MpiResult<()> {
        let dt = Datatype::contiguous(origin.len());
        self.put(origin, &dt.clone(), target, tdisp, &dt)
    }

    /// Contiguous-get convenience.
    pub fn get_bytes(&self, origin: &mut [u8], target: usize, tdisp: usize) -> MpiResult<()> {
        let dt = Datatype::contiguous(origin.len());
        self.get(origin, &dt.clone(), target, tdisp, &dt)
    }

    // ------------------------------------------------------------------
    // Shared-memory fast path
    // ------------------------------------------------------------------
    //
    // Windows created with `allocate_shared` expose intra-node peers'
    // sections directly: `shared_query` returns a load/store handle, and
    // the `shm_*` movers run whole RMA-shaped operations as node-local
    // copies priced by the platform's `ShmParams` tier instead of the NIC
    // model. Epoch discipline is unchanged — the movers go through the
    // same `admit` as the wire path — but there is no per-message wire
    // latency, no pipelining credit, and no datatype pack cost: a
    // non-contiguous shape is just more `memcpy` segments.

    /// Intra-node shared-slab parameters of the configured platform, for
    /// backends that price node-local traffic (including slab atomics)
    /// themselves.
    pub fn shm_params(&self) -> &simnet::ShmParams {
        &self.shared.cfg.platform.shm
    }

    /// Was this window created with [`WinHandle::allocate_shared`]?
    pub fn is_shared_backed(&self) -> bool {
        matches!(self.inner.backing, Backing::Shared(_))
    }

    /// Can `target` be reached through a node-local slab (shared-backed
    /// window *and* same node as the caller)? This is the route predicate
    /// the transfer engine consults at plan time.
    pub fn shm_reachable(&self, target: usize) -> bool {
        match &self.inner.backing {
            Backing::Shared(shm) => {
                target < shm.node.len() && shm.node[target] == shm.node[self.comm.rank()]
            }
            Backing::PerRank(_) => false,
        }
    }

    /// `MPI_Win_shared_query`: a load/store handle on `rank`'s section of
    /// the node slab. Errors with [`MpiError::ShmUnavailable`] when the
    /// window is not shared-backed or `rank` lives on another node.
    pub fn shared_query(&self, rank: usize) -> MpiResult<ShmSection> {
        self.check_alive()?;
        if rank >= self.inner.sizes.len() {
            return Err(MpiError::BadRank {
                rank,
                size: self.inner.sizes.len(),
            });
        }
        if !self.shm_reachable(rank) {
            return Err(MpiError::ShmUnavailable { target: rank });
        }
        Ok(ShmSection {
            inner: Arc::clone(&self.inner),
            rank,
        })
    }

    /// `MPI_Win_sync`: synchronises the private and public window copies
    /// under the separate-memory model. Load/store access to a peer's
    /// section is only well-defined between a `win_sync` and the close of
    /// the surrounding epoch — the epoch auditor enforces exactly this.
    /// Requires an open epoch (lock, lock_all, or fence) on the handle.
    pub fn win_sync(&self) -> MpiResult<()> {
        self.check_alive()?;
        if self.epochs.borrow().is_empty()
            && !self.lock_all_active.get()
            && !self.active_epoch.get()
        {
            return Err(MpiError::NoEpoch { target: usize::MAX });
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        let t0 = self.vt();
        self.charge(self.shm_params().win_sync);
        if obs::enabled() {
            let t1 = self.vt();
            obs::batch(|b| {
                b.instant_at(obs::EventKind::WinSync { win: self.inner.id }, t1);
                b.span(
                    obs::EventKind::Wait {
                        cat: obs::WaitCat::WinSync,
                        src: self.comm.my_world_rank() as u32,
                        obj: self.inner.id,
                    },
                    t0,
                    t1,
                );
            });
        }
        Ok(())
    }

    /// Records a shared-memory access event at the current virtual time.
    fn note_shm(&self, write: bool, target: usize, bytes: usize) {
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::ShmAccess {
                    win: self.inner.id,
                    target: target as u32,
                    write,
                    bytes: bytes as u64,
                },
                self.vt(),
            );
        }
    }

    /// Shared-memory put: same validation and epoch admission as
    /// [`WinHandle::put`], but the bytes move as a node-local copy and the
    /// returned (uncharged) cost comes from the platform's shm tier.
    pub fn shm_put(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        if !self.shm_reachable(target) {
            return Err(MpiError::ShmUnavailable { target });
        }
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Write)?;
        let pairs = zip_segments(odt, tdt)?;
        self.inner.section(target).with_mut(|dst| {
            for (ooff, toff, len) in &pairs {
                dst[tdisp + toff..tdisp + toff + len].copy_from_slice(&origin[*ooff..*ooff + *len]);
            }
        });
        let nsegs = odt.num_segments().max(tdt.num_segments());
        self.note_shm(true, target, odt.size());
        Ok(self
            .shm_params()
            .op_cost(simnet::Op::Put, odt.size(), nsegs))
    }

    /// Shared-memory get; see [`WinHandle::shm_put`].
    pub fn shm_get(
        &self,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        if !self.shm_reachable(target) {
            return Err(MpiError::ShmUnavailable { target });
        }
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Read)?;
        let pairs = zip_segments(odt, tdt)?;
        self.inner.section(target).with(|src| {
            for (ooff, toff, len) in &pairs {
                origin[*ooff..*ooff + *len].copy_from_slice(&src[tdisp + toff..tdisp + toff + len]);
            }
        });
        let nsegs = odt.num_segments().max(tdt.num_segments());
        self.note_shm(false, target, odt.size());
        Ok(self
            .shm_params()
            .op_cost(simnet::Op::Get, odt.size(), nsegs))
    }

    /// Shared-memory accumulate; see [`WinHandle::shm_put`]. The combine
    /// runs under the slab's I/O lock, so same-type-and-op concurrent
    /// accumulates from node peers remain element-atomic exactly like the
    /// wire path.
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Accumulate's signature
    pub fn shm_acc(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<f64> {
        self.check_alive()?;
        if !self.shm_reachable(target) {
            return Err(MpiError::ShmUnavailable { target });
        }
        let es = elem.size();
        if !odt.size().is_multiple_of(es) {
            return Err(MpiError::BadDatatype(format!(
                "accumulate of {} bytes not a multiple of element size {es}",
                odt.size()
            )));
        }
        if odt.extent() > origin.len() {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin.len()
            )));
        }
        self.admit(target, tdisp, tdt, OpKind::Acc(elem, op))?;
        let osegs = odt.segments();
        let tsegs = tdt.segments();
        for &(_, len) in &tsegs {
            if len % es != 0 {
                return Err(MpiError::BadDatatype(format!(
                    "target segment of {len} bytes not element-aligned (elem {es})"
                )));
            }
        }
        if odt.size() != tdt.size() {
            return Err(MpiError::TypeMismatch {
                origin_bytes: odt.size(),
                target_bytes: tdt.size(),
            });
        }
        let mut staged = self.pool.take(odt.size());
        let mut w = 0usize;
        for &(off, len) in &osegs {
            staged[w..w + len].copy_from_slice(&origin[off..off + len]);
            w += len;
        }
        self.inner.section(target).with_mut(|dst| {
            let mut s = 0usize;
            for &(toff, len) in &tsegs {
                apply_acc(
                    &mut dst[tdisp + toff..tdisp + toff + len],
                    &staged[s..s + len],
                    elem,
                    op,
                );
                s += len;
            }
        });
        let nsegs = odt.num_segments().max(tdt.num_segments());
        self.note_shm(true, target, odt.size());
        Ok(self
            .shm_params()
            .op_cost(simnet::Op::Acc, odt.size(), nsegs))
    }

    // ------------------------------------------------------------------
    // Local access
    // ------------------------------------------------------------------

    /// Read access to this rank's own window slice. Requires an open epoch
    /// on self (shared suffices), per the paper's DLA rules (§V-E).
    pub fn with_local<R>(&self, f: impl FnOnce(&[u8]) -> R) -> MpiResult<R> {
        self.check_alive()?;
        let me = self.comm.rank();
        if !self.is_locked(me) {
            return Err(MpiError::NoEpoch { target: me });
        }
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::LocalAccess {
                    win: self.inner.id,
                    write: false,
                },
                self.vt(),
            );
        }
        Ok(self.inner.section(me).with(f))
    }

    /// Mutable access to this rank's own window slice. Requires an
    /// *exclusive* epoch on self (§V-E: "direct local access should be
    /// performed only while the window is locked for exclusive access") —
    /// or, under MPI-3 `lock_all`, the unified-memory-model rules apply:
    /// access is granted and serialised against remote operations by the
    /// per-rank I/O lock (the `MPI_Win_sync` discipline).
    pub fn with_local_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> MpiResult<R> {
        self.check_alive()?;
        let me = self.comm.rank();
        match self.lock_mode(me) {
            Some(LockMode::Exclusive) => {}
            _ if self.lock_all_active.get() => {}
            _ => return Err(MpiError::NoEpoch { target: me }),
        }
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::LocalAccess {
                    win: self.inner.id,
                    write: true,
                },
                self.vt(),
            );
        }
        Ok(self.inner.section(me).with_mut(f))
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Collectively frees the window. All epochs must be closed.
    pub fn free(self) -> MpiResult<()> {
        self.check_alive()?;
        assert!(
            self.epochs.borrow().is_empty()
                && !self.lock_all_active.get()
                && !self.active_epoch.get(),
            "window freed with open epochs"
        );
        // Every rank calls free; the first one to get here removes the
        // registry entry and recycles the id. Later ranks must compare
        // the stored `Arc` — the id may already name a *new* window
        // created from the free list (the registry is only consulted at
        // create time, so in-flight peers are unaffected). Recycling
        // before the barrier guarantees the slot is visible to the next
        // collective create on this communicator.
        {
            let mut wins = self.shared.wins.write();
            if let Some(cur) = wins.get(&self.inner.id) {
                if Arc::ptr_eq(cur, &self.inner) {
                    wins.remove(&self.inner.id);
                    self.shared.recycle_win_id(self.inner.id);
                }
            }
        }
        self.comm.barrier();
        self.inner.freed.store(true, Ordering::Release);
        Ok(())
    }

    /// Direct raw access for the MPI-3 extension module: the I/O mutex,
    /// the backing allocation, and the byte offset of `target`'s section
    /// within it (non-zero for shared-backed windows).
    pub(crate) fn raw_mem(&self, target: usize) -> (&Mutex<()>, *mut Box<[u8]>, usize) {
        let sec = self.inner.section(target);
        (sec.io, sec.buf, sec.off)
    }

    pub(crate) fn target_lock(&self, target: usize) -> &impl LockOps {
        &self.inner.locks[target]
    }
}

/// Internal trait so mpi3.rs can drive the target locks.
pub(crate) trait LockOps {
    fn acquire(&self, mode: LockMode);
    fn release(&self, mode: LockMode);
}

impl LockOps for TargetLock {
    fn acquire(&self, mode: LockMode) {
        TargetLock::acquire(self, mode)
    }
    fn release(&self, mode: LockMode) {
        TargetLock::release(self, mode)
    }
}

/// Load/store handle on a same-node peer's window section, returned by
/// [`WinHandle::shared_query`]. Models the base pointer
/// `MPI_Win_shared_query` hands back: accesses are plain memory operations
/// on the node slab (serialised by the slab's I/O lock so the simulator
/// stays race-free even for programs that skip `win_sync`).
///
/// The handle keeps the window's backing alive, but honours `free`: any
/// access after the window was collectively freed returns
/// [`MpiError::WinFreed`] instead of touching a stale section — teardown
/// never turns into a wild pointer dereference.
pub struct ShmSection {
    inner: Arc<WinInner>,
    rank: usize,
}

impl std::fmt::Debug for ShmSection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmSection")
            .field("win", &self.inner.id)
            .field("rank", &self.rank)
            .field("len", &self.len())
            .finish()
    }
}

impl ShmSection {
    /// The window rank whose section this is.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Section length in bytes.
    pub fn len(&self) -> usize {
        self.inner.sizes[self.rank]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte offset of this section within its node slab — the simulated
    /// analogue of the base-pointer arithmetic real `shared_query` users
    /// do.
    pub fn slab_offset(&self) -> usize {
        match &self.inner.backing {
            Backing::Shared(shm) => shm.place[self.rank].1,
            Backing::PerRank(_) => unreachable!("ShmSection only exists for shared backings"),
        }
    }

    fn check(&self, disp: usize, len: usize) -> MpiResult<()> {
        if self.inner.freed.load(Ordering::Acquire) {
            return Err(MpiError::WinFreed);
        }
        let size = self.inner.sizes[self.rank];
        if disp + len > size {
            return Err(MpiError::OutOfBounds {
                target: self.rank,
                disp,
                len,
                size,
            });
        }
        Ok(())
    }

    /// Load `dst.len()` bytes from offset `disp` of the section.
    pub fn load(&self, disp: usize, dst: &mut [u8]) -> MpiResult<()> {
        self.check(disp, dst.len())?;
        self.inner
            .section(self.rank)
            .with(|src| dst.copy_from_slice(&src[disp..disp + dst.len()]));
        if obs::enabled() {
            obs::instant(obs::EventKind::ShmAccess {
                win: self.inner.id,
                target: self.rank as u32,
                write: false,
                bytes: dst.len() as u64,
            });
        }
        Ok(())
    }

    /// Store `src` at offset `disp` of the section.
    pub fn store(&self, disp: usize, src: &[u8]) -> MpiResult<()> {
        self.check(disp, src.len())?;
        self.inner
            .section(self.rank)
            .with_mut(|dst| dst[disp..disp + src.len()].copy_from_slice(src));
        if obs::enabled() {
            obs::instant(obs::EventKind::ShmAccess {
                win: self.inner.id,
                target: self.rank as u32,
                write: true,
                bytes: src.len() as u64,
            });
        }
        Ok(())
    }
}

/// Element-wise combine.
fn apply_acc(dst: &mut [u8], src: &[u8], elem: ElemType, op: AccOp) {
    debug_assert_eq!(dst.len(), src.len());
    if op == AccOp::Replace {
        dst.copy_from_slice(src);
        return;
    }
    macro_rules! combine {
        ($ty:ty, $w:expr) => {{
            for (d, s) in dst.chunks_exact_mut($w).zip(src.chunks_exact($w)) {
                let a = <$ty>::from_le_bytes(d[..$w].try_into().unwrap());
                let b = <$ty>::from_le_bytes(s[..$w].try_into().unwrap());
                let r = match op {
                    AccOp::Sum => a + b,
                    AccOp::Min => {
                        if b < a {
                            b
                        } else {
                            a
                        }
                    }
                    AccOp::Max => {
                        if b > a {
                            b
                        } else {
                            a
                        }
                    }
                    AccOp::Replace => unreachable!(),
                };
                d.copy_from_slice(&r.to_le_bytes());
            }
        }};
    }
    match elem {
        ElemType::U8 => combine!(u8, 1),
        ElemType::I32 => combine!(i32, 4),
        ElemType::I64 => combine!(i64, 8),
        ElemType::F32 => combine!(f32, 4),
        ElemType::F64 => combine!(f64, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_acc_sum_f64() {
        let mut dst = Vec::new();
        for x in [1.0f64, 2.0] {
            dst.extend_from_slice(&x.to_le_bytes());
        }
        let mut src = Vec::new();
        for x in [0.5f64, -2.0] {
            src.extend_from_slice(&x.to_le_bytes());
        }
        apply_acc(&mut dst, &src, ElemType::F64, AccOp::Sum);
        let out: Vec<f64> = dst
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![1.5, 0.0]);
    }

    #[test]
    fn apply_acc_minmax_i32() {
        let mut dst = 5i32.to_le_bytes().to_vec();
        apply_acc(&mut dst, &3i32.to_le_bytes(), ElemType::I32, AccOp::Min);
        assert_eq!(i32::from_le_bytes(dst[..4].try_into().unwrap()), 3);
        apply_acc(&mut dst, &9i32.to_le_bytes(), ElemType::I32, AccOp::Max);
        assert_eq!(i32::from_le_bytes(dst[..4].try_into().unwrap()), 9);
    }

    #[test]
    fn apply_acc_replace() {
        let mut dst = vec![0u8; 4];
        apply_acc(&mut dst, &[1, 2, 3, 4], ElemType::U8, AccOp::Replace);
        assert_eq!(dst, vec![1, 2, 3, 4]);
    }

    #[test]
    fn opkind_compatibility_matrix() {
        use OpKind::*;
        assert!(Read.compatible(Read));
        assert!(!Read.compatible(Write));
        assert!(!Write.compatible(Write));
        assert!(Acc(ElemType::F64, AccOp::Sum).compatible(Acc(ElemType::F64, AccOp::Sum)));
        assert!(!Acc(ElemType::F64, AccOp::Sum).compatible(Acc(ElemType::I64, AccOp::Sum)));
        assert!(!Acc(ElemType::F64, AccOp::Sum).compatible(Acc(ElemType::F64, AccOp::Max)));
        assert!(!Acc(ElemType::F64, AccOp::Sum).compatible(Write));
    }

    #[test]
    fn target_lock_shared_allows_concurrency() {
        let l = TargetLock::new();
        l.acquire(LockMode::Shared);
        l.acquire(LockMode::Shared);
        l.release(LockMode::Shared);
        l.release(LockMode::Shared);
    }

    #[test]
    fn target_lock_exclusive_blocks() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let l = Arc::new(TargetLock::new());
        l.acquire(LockMode::Exclusive);
        let flag = Arc::new(AtomicBool::new(false));
        let (l2, f2) = (Arc::clone(&l), Arc::clone(&flag));
        let h = std::thread::spawn(move || {
            l2.acquire(LockMode::Shared);
            f2.store(true, Ordering::SeqCst);
            l2.release(LockMode::Shared);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !flag.load(Ordering::SeqCst),
            "reader entered during exclusive"
        );
        l.release(LockMode::Exclusive);
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }
}
