//! Collective rendezvous machinery and typed reductions.
//!
//! All collectives are built on one primitive: a phase-gated **allgather
//! cell** (`CollectiveCell`). Every participant deposits a byte
//! contribution; when the last one arrives all contributions are published
//! and participants drain. The cell is reusable: a fast rank cannot enter
//! round `k+1` until every rank has left round `k`.
//!
//! Collective *cost* is modelled as a binomial tree: `ceil(log2 P)` stages of
//! `α + n/β`. Each participant's virtual arrival time is captured when it
//! deposits its contribution and the maximum is published with the results,
//! so every rank leaves at the same `max(arrival) + cost` instant by
//! advancing **its own** clock only. (Bumping peer clocks after release
//! would race with a fast rank that has already resumed timed work.)

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Collecting,
    Distributing,
}

struct CollState {
    phase: Phase,
    arrived: usize,
    leaving: usize,
    contributions: Vec<Option<Vec<u8>>>,
    /// Virtual clock of each participant at arrival.
    arrivals: Vec<f64>,
    /// Completed rendezvous rounds; all participants of round `k` observe
    /// the same value, which tags their trace events so a post-mortem
    /// analyzer can regroup one collective across per-rank streams.
    round: u64,
    results: Option<CollOutcome>,
}

/// What one collective rendezvous published to every participant.
#[derive(Clone)]
pub(crate) struct CollOutcome {
    /// Round number of this collective on its cell (identical for all
    /// participants; per-rank program order makes it deterministic).
    pub seq: u64,
    /// Latest virtual arrival among the participants.
    pub t_max: f64,
    /// Participant (cell index = communicator rank) that arrived last —
    /// the straggler whose progress released everyone. Ties go to the
    /// lowest rank so the choice is deterministic.
    pub straggler: usize,
    /// Gathered contributions, indexed by participant.
    pub data: Arc<Vec<Vec<u8>>>,
}

/// A reusable allgather rendezvous for a fixed participant count.
pub(crate) struct CollectiveCell {
    size: usize,
    m: Mutex<CollState>,
    cv: Condvar,
}

impl CollectiveCell {
    pub fn new(size: usize) -> CollectiveCell {
        CollectiveCell {
            size,
            m: Mutex::new(CollState {
                phase: Phase::Collecting,
                arrived: 0,
                leaving: 0,
                contributions: (0..size).map(|_| None).collect(),
                arrivals: vec![0.0; size],
                round: 0,
                results: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deposits `data` as participant `rank`'s contribution (arriving at
    /// virtual time `now`) and, once every participant has arrived, returns
    /// all contributions together with the round number, the latest arrival
    /// time, and the straggler that set it.
    pub fn exchange(&self, rank: usize, data: Vec<u8>, now: f64) -> CollOutcome {
        let mut st = self.m.lock();
        // Gate: previous round must fully drain first.
        while st.phase == Phase::Distributing {
            self.cv.wait(&mut st);
        }
        debug_assert!(
            st.contributions[rank].is_none(),
            "double arrival of rank {rank}"
        );
        st.contributions[rank] = Some(data);
        st.arrivals[rank] = now;
        st.arrived += 1;
        if st.arrived == self.size {
            let all: Vec<Vec<u8>> = st
                .contributions
                .iter_mut()
                .map(|c| c.take().expect("missing contribution"))
                .collect();
            // Straggler = argmax arrival, ties to the lowest rank — the
            // strict `>` keeps earlier indices on equal times.
            let mut straggler = 0usize;
            for (r, &t) in st.arrivals.iter().enumerate() {
                if t > st.arrivals[straggler] {
                    straggler = r;
                }
            }
            let t_max = st.arrivals[straggler];
            st.results = Some(CollOutcome {
                seq: st.round,
                t_max,
                straggler,
                data: Arc::new(all),
            });
            st.round += 1;
            st.phase = Phase::Distributing;
            self.cv.notify_all();
        } else {
            while st.phase == Phase::Collecting {
                self.cv.wait(&mut st);
            }
        }
        let res = st.results.as_ref().expect("results missing").clone();
        st.leaving += 1;
        if st.leaving == self.size {
            st.arrived = 0;
            st.leaving = 0;
            st.results = None;
            st.phase = Phase::Collecting;
            self.cv.notify_all();
        }
        res
    }
}

/// Reduction operators over homogeneous numeric vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
    /// Pairwise max on value with the *lowest* index winning ties; operates
    /// on `(value, index)` pairs. Used for leader election (§V-B).
    MaxLoc,
}

/// Element-wise reduction of f64 vectors.
pub fn reduce_f64(op: ReduceOp, vecs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vecs.is_empty());
    let len = vecs[0].len();
    let mut out = vecs[0].clone();
    for v in &vecs[1..] {
        assert_eq!(v.len(), len, "reduction length mismatch");
        for (o, &x) in out.iter_mut().zip(v) {
            *o = match op {
                ReduceOp::Sum => *o + x,
                ReduceOp::Min => o.min(x),
                ReduceOp::Max => o.max(x),
                ReduceOp::MaxLoc => unreachable!("MaxLoc needs pairs"),
            };
        }
    }
    out
}

/// Element-wise reduction of i64 vectors.
pub fn reduce_i64(op: ReduceOp, vecs: &[Vec<i64>]) -> Vec<i64> {
    assert!(!vecs.is_empty());
    let len = vecs[0].len();
    let mut out = vecs[0].clone();
    for v in &vecs[1..] {
        assert_eq!(v.len(), len, "reduction length mismatch");
        for (o, &x) in out.iter_mut().zip(v) {
            *o = match op {
                ReduceOp::Sum => *o + x,
                ReduceOp::Min => (*o).min(x),
                ReduceOp::Max => (*o).max(x),
                ReduceOp::MaxLoc => unreachable!("MaxLoc needs pairs"),
            };
        }
    }
    out
}

/// MAXLOC over `(value, index)` pairs: the largest value wins; ties go to
/// the smallest index.
pub fn maxloc_i64(pairs: &[(i64, usize)]) -> (i64, usize) {
    let mut best = pairs[0];
    for &(v, i) in &pairs[1..] {
        if v > best.0 || (v == best.0 && i < best.1) {
            best = (v, i);
        }
    }
    best
}

/// Little-endian byte serialisation helpers for collective payloads.
pub mod wire {
    /// Encodes a `u64` slice.
    pub fn put_u64s(out: &mut Vec<u8>, xs: &[u64]) {
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Decodes `n` `u64`s from the front of `buf`, returning the rest.
    pub fn get_u64s(buf: &[u8], n: usize) -> (Vec<u64>, &[u8]) {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[i * 8..i * 8 + 8]);
            out.push(u64::from_le_bytes(b));
        }
        (out, &buf[n * 8..])
    }

    /// Encodes f64s.
    pub fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Decodes all f64s in `buf`.
    pub fn get_f64s(buf: &[u8]) -> Vec<f64> {
        buf.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Decodes all i64s in `buf`.
    pub fn get_i64s(buf: &[u8]) -> Vec<i64> {
        buf.chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Encodes i64s.
    pub fn put_i64s(out: &mut Vec<u8>, xs: &[i64]) {
        for &x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn exchange_gathers_all_contributions() {
        let cell = StdArc::new(CollectiveCell::new(4));
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let cell = StdArc::clone(&cell);
                    s.spawn(move || cell.exchange(r, vec![r as u8; r + 1], r as f64))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in results {
            assert_eq!(out.t_max, 3.0, "latest arrival time published to all");
            assert_eq!(out.straggler, 3, "rank 3 arrived last");
            assert_eq!(out.seq, 0, "first round on this cell");
            assert_eq!(out.data.len(), 4);
            for (r, c) in out.data.iter().enumerate() {
                assert_eq!(c, &vec![r as u8; r + 1]);
            }
        }
    }

    #[test]
    fn cell_is_reusable_across_rounds() {
        let cell = StdArc::new(CollectiveCell::new(3));
        std::thread::scope(|s| {
            for r in 0..3 {
                let cell = StdArc::clone(&cell);
                s.spawn(move || {
                    for round in 0u8..50 {
                        let out = cell.exchange(r, vec![round, r as u8], 0.0);
                        assert_eq!(out.seq, u64::from(round), "cell round number");
                        assert_eq!(out.straggler, 0, "all-zero arrivals tie to rank 0");
                        for (i, c) in out.data.iter().enumerate() {
                            assert_eq!(c, &vec![round, i as u8], "round {round}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn reduce_f64_ops() {
        let vecs = vec![vec![1.0, -2.0], vec![3.0, 5.0]];
        assert_eq!(reduce_f64(ReduceOp::Sum, &vecs), vec![4.0, 3.0]);
        assert_eq!(reduce_f64(ReduceOp::Min, &vecs), vec![1.0, -2.0]);
        assert_eq!(reduce_f64(ReduceOp::Max, &vecs), vec![3.0, 5.0]);
    }

    #[test]
    fn reduce_i64_ops() {
        let vecs = vec![vec![1, -2], vec![3, 5]];
        assert_eq!(reduce_i64(ReduceOp::Sum, &vecs), vec![4, 3]);
        assert_eq!(reduce_i64(ReduceOp::Min, &vecs), vec![1, -2]);
        assert_eq!(reduce_i64(ReduceOp::Max, &vecs), vec![3, 5]);
    }

    #[test]
    fn maxloc_prefers_lowest_index_on_tie() {
        assert_eq!(maxloc_i64(&[(3, 2), (7, 1), (7, 0)]), (7, 0));
        assert_eq!(maxloc_i64(&[(-1, 0), (-1, 1)]), (-1, 0));
    }

    #[test]
    fn wire_roundtrip() {
        let mut buf = Vec::new();
        wire::put_u64s(&mut buf, &[1, u64::MAX]);
        wire::put_f64s(&mut buf, &[1.5]);
        let (u, rest) = wire::get_u64s(&buf, 2);
        assert_eq!(u, vec![1, u64::MAX]);
        assert_eq!(wire::get_f64s(rest), vec![1.5]);
    }
}
