//! Communicators, groups, and collective operations.
//!
//! A [`Comm`] value is one rank's view of a communicator. Collectives are
//! built on the allgather rendezvous of [`crate::coll`]; their virtual-time
//! cost follows a binomial-tree model. Communicator creation comes in the
//! two flavours ARMCI needs (§IV, §V-A):
//!
//! * **collective** — [`Comm::dup`] and [`Comm::split`], like
//!   `MPI_Comm_dup`/`MPI_Comm_split`;
//! * **noncollective** — [`Comm::create_noncollective`], in which only the
//!   members participate, implemented with the recursive
//!   intercommunicator-create-and-merge pattern of Dinan et al. \[9]
//!   (log₂ n rounds of leader exchanges, then the group leader distributes
//!   the new context id).

use crate::coll::{self, CollectiveCell, ReduceOp};
use crate::p2p::{Envelope, RecvSrc, Status};
use crate::runtime::{Proc, Shared};
use std::sync::Arc;

/// Reserved tag space for internal protocols (noncollective creation).
const TAG_NONCOLL_XCHG: i32 = i32::MIN + 10;
const TAG_NONCOLL_CTX: i32 = i32::MIN + 11;

/// Selector for [`Comm::split_type`] (`MPI_Comm_split_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommSplitType {
    /// `MPI_COMM_TYPE_SHARED`: the largest groups of ranks that can share
    /// memory — here, ranks on the same node under the platform's
    /// authoritative [`simnet::Platform::node_of`] mapping.
    Shared,
}

/// Shared, immutable communicator state.
pub(crate) struct CommInner {
    pub id: u64,
    /// World ranks of the members; index = communicator rank.
    pub members: Vec<usize>,
    pub coll: CollectiveCell,
}

impl CommInner {
    fn comm_rank_of_world(&self, world: usize) -> Option<usize> {
        self.members.iter().position(|&w| w == world)
    }
}

/// One rank's handle on a communicator.
#[derive(Clone)]
pub struct Comm {
    pub(crate) shared: Arc<Shared>,
    pub(crate) inner: Arc<CommInner>,
    my_comm_rank: usize,
    my_world_rank: usize,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("id", &self.inner.id)
            .field("rank", &self.my_comm_rank)
            .field("size", &self.inner.members.len())
            .finish()
    }
}

impl Comm {
    pub(crate) fn from_inner(proc: &Proc, inner: Arc<CommInner>) -> Comm {
        let my_comm_rank = inner
            .comm_rank_of_world(proc.world_rank)
            .expect("process is not a member of this communicator");
        Comm {
            shared: Arc::clone(&proc.shared),
            inner,
            my_comm_rank,
            my_world_rank: proc.world_rank,
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_comm_rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.members.len()
    }

    /// Communicator context id (diagnostic).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.inner.members[r]
    }

    /// Communicator rank of a world rank, if a member.
    pub fn comm_rank_of_world(&self, world: usize) -> Option<usize> {
        self.inner.comm_rank_of_world(world)
    }

    /// This rank's world rank.
    pub fn my_world_rank(&self) -> usize {
        self.my_world_rank
    }

    fn clock(&self) -> &simnet::VClock {
        &self.shared.clocks[self.my_world_rank]
    }

    fn charge(&self, dt: f64) {
        if self.shared.cfg.charge_time {
            self.clock().advance(dt);
        }
    }

    /// Advances this rank's virtual clock by `dt` seconds. Public hook for
    /// layers built on the runtime (e.g. ARMCI staging copies) to model
    /// their own overheads in the same clock domain.
    pub fn charge_time(&self, dt: f64) {
        self.charge(dt);
    }

    /// Current virtual time of this rank.
    pub fn clock_now(&self) -> f64 {
        self.clock().now()
    }

    /// The configured platform (cost model).
    pub fn platform(&self) -> &simnet::Platform {
        &self.shared.cfg.platform
    }

    /// Allocates a runtime-unique id (for shared-segment registration).
    pub fn alloc_uid(&self) -> u64 {
        self.shared.alloc_uid()
    }

    /// Publishes a shared segment under `id` (first writer wins; returns
    /// the registered value). Models OS-level shared memory (XPMEM) used
    /// by native one-sided runtimes.
    pub fn shmem_register(
        &self,
        id: u64,
        value: std::sync::Arc<dyn std::any::Any + Send + Sync>,
    ) -> std::sync::Arc<dyn std::any::Any + Send + Sync> {
        let mut map = self.shared.shmem.write();
        std::sync::Arc::clone(map.entry(id).or_insert(value))
    }

    /// Looks up a shared segment.
    pub fn shmem_lookup(&self, id: u64) -> Option<std::sync::Arc<dyn std::any::Any + Send + Sync>> {
        self.shared.shmem.read().get(&id).cloned()
    }

    /// Removes a shared segment registration.
    pub fn shmem_remove(&self, id: u64) {
        self.shared.shmem.write().remove(&id);
    }

    /// Binomial-tree collective cost for per-rank payloads of `bytes`.
    fn coll_cost(&self, bytes: usize) -> f64 {
        let p = self.size() as f64;
        let stages = p.log2().ceil().max(1.0);
        let link = &self.shared.cfg.platform.mpi.put;
        stages * link.xfer_time(bytes.max(8))
    }

    /// Rendezvous with every member, stamping this rank's virtual arrival
    /// time into the exchange. Returns this rank's arrival time and the
    /// published outcome (round, latest arrival, straggler, contributions).
    ///
    /// World-sized collectives double as the progress board's phase
    /// boundaries: each rank publishes its compute profile *before* the
    /// rendezvous, so by the time anyone leaves, every rank's snapshot
    /// for this phase is readable (see [`crate::progress`]).
    fn coll_exchange(&self, data: Vec<u8>) -> (f64, coll::CollOutcome) {
        let now = if self.shared.cfg.charge_time {
            self.clock().now()
        } else {
            0.0
        };
        if self.inner.members.len() == self.shared.nranks {
            self.shared.progress.publish(self.my_world_rank, now);
        }
        (now, self.inner.coll.exchange(self.my_comm_rank, data, now))
    }

    /// Leaves a collective: every member departs at `max(arrival) + cost`,
    /// each advancing **its own** clock only. (Bumping peer clocks after
    /// the rendezvous releases would race with a member that has already
    /// resumed timed work and inflate its measurements.) Records the
    /// collective span and — for every rank that arrived before the
    /// straggler — the blocked share as a progress wait; recording charges
    /// nothing, so makespans are identical with the recorder on or off.
    fn coll_leave(&self, arrival: f64, out: &coll::CollOutcome, cost: f64) {
        if self.shared.cfg.charge_time {
            self.clock().advance_to(out.t_max + cost);
        }
        if obs::enabled() {
            let leave = if self.shared.cfg.charge_time {
                out.t_max + cost
            } else {
                0.0
            };
            let src = self.inner.members[out.straggler] as u32;
            let comm = self.inner.id;
            let seq = out.seq;
            let wait = out.t_max - arrival;
            let t_max = out.t_max;
            obs::batch(|b| {
                if wait > 0.0 {
                    b.span(
                        obs::EventKind::Wait {
                            cat: obs::WaitCat::Straggler,
                            src,
                            obj: comm,
                        },
                        arrival,
                        t_max,
                    );
                }
                b.span(obs::EventKind::Coll { comm, seq, src }, arrival, leave);
            });
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Eager buffered send to communicator rank `dest`.
    pub fn send(&self, dest: usize, tag: i32, data: &[u8]) {
        assert!(dest < self.size(), "send: bad rank {dest}");
        let params = &self.shared.cfg.platform.mpi;
        self.charge(params.op_overhead + params.put.xfer_time(data.len()));
        let arrives_at = if self.shared.cfg.charge_time {
            self.clock().now()
        } else {
            0.0
        };
        let world_dest = self.inner.members[dest];
        self.shared.mailboxes[world_dest].deliver(Envelope {
            comm: self.inner.id,
            src_comm_rank: self.my_comm_rank,
            tag,
            data: data.to_vec(),
            arrives_at,
        });
    }

    /// Blocking receive. `src` may be [`RecvSrc::Any`], `tag` may be
    /// [`crate::ANY_TAG`].
    pub fn recv(&self, src: RecvSrc, tag: i32) -> (Vec<u8>, Status) {
        let env = self.shared.mailboxes[self.my_world_rank].recv(self.inner.id, src, tag);
        let params = &self.shared.cfg.platform.mpi;
        self.charge(params.op_overhead);
        if self.shared.cfg.charge_time {
            self.clock().advance_to(env.arrives_at);
        }
        let status = Status {
            source: env.src_comm_rank,
            tag: env.tag,
            len: env.data.len(),
        };
        (env.data, status)
    }

    /// Non-blocking probe for a matching message.
    pub fn iprobe(&self, src: RecvSrc, tag: i32) -> Option<Status> {
        self.shared.mailboxes[self.my_world_rank].iprobe(self.inner.id, src, tag)
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Barrier over all members.
    pub fn barrier(&self) {
        let (arr, out) = self.coll_exchange(Vec::new());
        self.coll_leave(arr, &out, self.coll_cost(0));
    }

    /// Allgather of arbitrary per-rank byte payloads.
    pub fn allgather_bytes(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let len = data.len();
        let (arr, out) = self.coll_exchange(data);
        self.coll_leave(arr, &out, self.coll_cost(len));
        out.data.as_ref().clone()
    }

    /// Allgather of one `u64` per rank — the typed fast path for window
    /// and allocation metadata exchanges (no per-rank `Vec` decoding,
    /// no `try_into().unwrap()` at every call site).
    pub fn allgather_u64(&self, v: u64) -> Vec<u64> {
        self.allgather_u64s(&[v]).iter().map(|p| p[0]).collect()
    }

    /// Allgather of a fixed-length `u64` record per rank.
    pub fn allgather_u64s(&self, vals: &[u64]) -> Vec<Vec<u64>> {
        let mut buf = Vec::with_capacity(vals.len() * 8);
        coll::wire::put_u64s(&mut buf, vals);
        let (arr, out) = self.coll_exchange(buf);
        self.coll_leave(arr, &out, self.coll_cost(vals.len() * 8));
        out.data
            .iter()
            .map(|b| coll::wire::get_u64s(b, vals.len()).0)
            .collect()
    }

    /// Broadcast of one `u64` from `root` (id distribution).
    pub fn bcast_u64(&self, root: usize, v: Option<u64>) -> u64 {
        assert!(root < self.size(), "bcast: bad root {root}");
        let mine = match (self.my_comm_rank == root, v) {
            (true, Some(x)) => {
                let mut b = Vec::with_capacity(8);
                coll::wire::put_u64s(&mut b, &[x]);
                b
            }
            (true, None) => panic!("root must supply the broadcast payload"),
            (false, _) => Vec::new(),
        };
        let (arr, out) = self.coll_exchange(mine);
        self.coll_leave(arr, &out, self.coll_cost(8));
        coll::wire::get_u64s(&out.data[root], 1).0[0]
    }

    /// Broadcast from `root`: the root passes `Some(payload)`, everyone
    /// receives the payload.
    pub fn bcast_bytes(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        assert!(root < self.size(), "bcast: bad root {root}");
        let mine = if self.my_comm_rank == root {
            data.expect("root must supply the broadcast payload")
        } else {
            Vec::new()
        };
        let (arr, out) = self.coll_exchange(mine);
        self.coll_leave(arr, &out, self.coll_cost(out.data[root].len()));
        out.data[root].clone()
    }

    /// Element-wise allreduce over `f64` vectors.
    pub fn allreduce_f64(&self, op: ReduceOp, vals: &[f64]) -> Vec<f64> {
        let mut buf = Vec::with_capacity(vals.len() * 8);
        coll::wire::put_f64s(&mut buf, vals);
        let (arr, out) = self.coll_exchange(buf);
        self.coll_leave(arr, &out, self.coll_cost(vals.len() * 8));
        let vecs: Vec<Vec<f64>> = out.data.iter().map(|b| coll::wire::get_f64s(b)).collect();
        coll::reduce_f64(op, &vecs)
    }

    /// Element-wise allreduce over `i64` vectors.
    pub fn allreduce_i64(&self, op: ReduceOp, vals: &[i64]) -> Vec<i64> {
        let mut buf = Vec::with_capacity(vals.len() * 8);
        coll::wire::put_i64s(&mut buf, vals);
        let (arr, out) = self.coll_exchange(buf);
        self.coll_leave(arr, &out, self.coll_cost(vals.len() * 8));
        let vecs: Vec<Vec<i64>> = out.data.iter().map(|b| coll::wire::get_i64s(b)).collect();
        coll::reduce_i64(op, &vecs)
    }

    /// MAXLOC allreduce: returns the maximum contributed value and the
    /// lowest communicator rank that contributed it. Used for the
    /// leader-election step of `ARMCI_Free` (§V-B).
    pub fn maxloc_i64(&self, value: i64) -> (i64, usize) {
        let mut buf = Vec::with_capacity(8);
        coll::wire::put_i64s(&mut buf, &[value]);
        let (arr, out) = self.coll_exchange(buf);
        self.coll_leave(arr, &out, self.coll_cost(8));
        let pairs: Vec<(i64, usize)> = out
            .data
            .iter()
            .enumerate()
            .map(|(i, b)| (coll::wire::get_i64s(b)[0], i))
            .collect();
        coll::maxloc_i64(&pairs)
    }

    /// All-to-all exchange of variable-size blocks: `send[d]` goes to rank
    /// `d`; returns `recv[s]` = the block rank `s` sent here.
    pub fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(
            send.len(),
            self.size(),
            "alltoallv: need one block per rank"
        );
        let total: usize = send.iter().map(Vec::len).sum();
        // Serialise: lengths header then concatenated blocks.
        let mut buf = Vec::with_capacity(8 * send.len() + total);
        coll::wire::put_u64s(
            &mut buf,
            &send.iter().map(|b| b.len() as u64).collect::<Vec<_>>(),
        );
        for b in &send {
            buf.extend_from_slice(b);
        }
        let (arr, out) = self.coll_exchange(buf);
        self.coll_leave(arr, &out, self.coll_cost(total / self.size().max(1)));
        out.data
            .iter()
            .map(|b| {
                let (lens, mut rest) = coll::wire::get_u64s(b, self.size());
                let mut block = Vec::new();
                for (d, &l) in lens.iter().enumerate() {
                    let l = l as usize;
                    if d == self.my_comm_rank {
                        block = rest[..l].to_vec();
                        break;
                    }
                    rest = &rest[l..];
                }
                block
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Communicator creation
    // ------------------------------------------------------------------

    fn register_comm(&self, id: u64, members: Vec<usize>) -> Arc<CommInner> {
        let mut comms = self.shared.comms.write();
        Arc::clone(comms.entry(id).or_insert_with(|| {
            Arc::new(CommInner {
                id,
                coll: CollectiveCell::new(members.len()),
                members,
            })
        }))
    }

    fn comm_from(&self, inner: Arc<CommInner>) -> Comm {
        let my_comm_rank = inner
            .comm_rank_of_world(self.my_world_rank)
            .expect("not a member of the created communicator");
        Comm {
            shared: Arc::clone(&self.shared),
            inner,
            my_comm_rank,
            my_world_rank: self.my_world_rank,
        }
    }

    /// Collective duplicate (`MPI_Comm_dup`).
    pub fn dup(&self) -> Comm {
        // Rank 0 allocates the context id and broadcasts it.
        let id = if self.my_comm_rank == 0 {
            Some(self.shared.alloc_comm_id())
        } else {
            None
        };
        let id = self.bcast_u64(0, id);
        let inner = self.register_comm(id, self.inner.members.clone());
        self.comm_from(inner)
    }

    /// Collective split (`MPI_Comm_split`). `color < 0` acts like
    /// `MPI_UNDEFINED`: the caller gets `None`. Members of each colour are
    /// ordered by `(key, old rank)`.
    pub fn split(&self, color: i64, key: i64) -> Option<Comm> {
        // Round 1: gather (color, key) from everyone.
        let mut buf = Vec::with_capacity(16);
        coll::wire::put_i64s(&mut buf, &[color, key]);
        let all = self.allgather_bytes(buf);
        let entries: Vec<(i64, i64)> = all
            .iter()
            .map(|b| {
                let v = coll::wire::get_i64s(b);
                (v[0], v[1])
            })
            .collect();
        // Compute my group (world ranks ordered by (key, old comm rank)).
        let my_group: Vec<usize> = if color >= 0 {
            let mut g: Vec<(i64, usize)> = entries
                .iter()
                .enumerate()
                .filter(|&(_, &(c, _))| c == color)
                .map(|(r, &(_, k))| (k, r))
                .collect();
            g.sort_unstable();
            g.into_iter().map(|(_, r)| self.inner.members[r]).collect()
        } else {
            Vec::new()
        };
        // Round 2: each group's leader (its first member) allocates a
        // context id; gather them so every member learns its group's id.
        let leader_world = my_group.first().copied();
        let my_id = if color >= 0 && leader_world == Some(self.my_world_rank) {
            self.shared.alloc_comm_id() as i64
        } else {
            -1
        };
        let mut buf = Vec::with_capacity(8);
        coll::wire::put_i64s(&mut buf, &[my_id]);
        let ids = self.allgather_bytes(buf);
        if color < 0 {
            return None;
        }
        let leader_world = leader_world.expect("non-empty group");
        let leader_old_rank = self
            .inner
            .comm_rank_of_world(leader_world)
            .expect("leader is a member");
        let id = coll::wire::get_i64s(&ids[leader_old_rank])[0] as u64;
        let inner = self.register_comm(id, my_group);
        Some(self.comm_from(inner))
    }

    /// Collective `MPI_Comm_split_type`: groups ranks by capability class.
    /// With [`CommSplitType::Shared`] every node's ranks land in one
    /// sub-communicator (ordered by `(key, old rank)`), which is what
    /// [`crate::WinHandle::allocate_shared`] callers use to find their
    /// node peers.
    pub fn split_type(&self, kind: CommSplitType, key: i64) -> Comm {
        match kind {
            CommSplitType::Shared => {
                let node = self.platform().node_of(self.my_world_rank) as i64;
                self.split(node, key)
                    .expect("non-negative colour always yields a communicator")
            }
        }
    }

    /// **Noncollective** communicator creation: only the listed members
    /// call this (with an identical, sorted list of ranks *in this
    /// communicator*). Implements the recursive merge of \[9]: in round
    /// `k`, chunks of `2^k` members pair up and their leaders exchange
    /// group information; finally the overall leader allocates the context
    /// id and distributes it.
    pub fn create_noncollective(&self, members: &[usize]) -> Comm {
        assert!(!members.is_empty(), "empty group");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "member list must be strictly sorted"
        );
        let me = members
            .iter()
            .position(|&r| r == self.my_comm_rank)
            .expect("caller must be a member");
        let n = members.len();

        // Recursive doubling: leaders of sibling chunks exchange their
        // chunk extents. All members already know `members`, so the
        // payload is a formality that prices and exercises the pattern.
        let mut k = 1usize;
        let mut round = 0i32;
        while k < n {
            let chunk = me / (2 * k) * (2 * k);
            let is_left = me < chunk + k;
            let my_leader = if is_left { chunk } else { chunk + k };
            if me == my_leader {
                let sibling = if is_left { chunk + k } else { chunk };
                if sibling < n {
                    let payload = (members[chunk] as u64).to_le_bytes();
                    self.send(members[sibling], TAG_NONCOLL_XCHG + round, &payload);
                    let _ = self.recv(RecvSrc::Rank(members[sibling]), TAG_NONCOLL_XCHG + round);
                }
            }
            k *= 2;
            round += 1;
        }

        // Leader allocates the id and sends it to every other member.
        let id = if me == 0 {
            let id = self.shared.alloc_comm_id();
            for &m in &members[1..] {
                self.send(m, TAG_NONCOLL_CTX, &id.to_le_bytes());
            }
            id
        } else {
            let (bytes, _) = self.recv(RecvSrc::Rank(members[0]), TAG_NONCOLL_CTX);
            coll::wire::get_u64s(&bytes, 1).0[0]
        };
        let world_members: Vec<usize> = members.iter().map(|&r| self.inner.members[r]).collect();
        let inner = self.register_comm(id, world_members);
        self.comm_from(inner)
    }
}
