//! Derived datatypes.
//!
//! The subset of MPI's datatype machinery that ARMCI-MPI needs: contiguous
//! regions, indexed types (for the *IOV-direct* method of §VI-A) and
//! subarray types (for the *direct strided* method of §VI-C). All types are
//! expressed in **bytes** over a base buffer; the element width only matters
//! for accumulate, which carries its own [`crate::win::ElemType`].
//!
//! A datatype flattens to an ordered list of `(offset, len)` segments
//! relative to some base (the origin buffer start, or the window start plus
//! displacement on the target side).

use crate::error::{MpiError, MpiResult};
use std::collections::HashMap;

/// A derived datatype (byte-granular).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// `len` contiguous bytes.
    Contiguous { len: usize },
    /// `count` blocks of `blocklen` bytes, the start of consecutive blocks
    /// separated by `stride` bytes (`stride >= blocklen`).
    Vector {
        count: usize,
        blocklen: usize,
        stride: usize,
    },
    /// Explicit `(displacement, len)` pairs. Displacements must be
    /// non-negative; blocks may be unsorted but must not overlap (checked at
    /// use when semantic checks are enabled).
    Indexed { blocks: Vec<(usize, usize)> },
    /// An n-dimensional subarray in C (row-major) order.
    ///
    /// `sizes` are the full array dimensions **in elements**, `subsizes` the
    /// patch dimensions, `starts` the patch origin, and `elem` the element
    /// width in bytes.
    Subarray {
        sizes: Vec<usize>,
        subsizes: Vec<usize>,
        starts: Vec<usize>,
        elem: usize,
    },
}

impl Datatype {
    /// Contiguous helper.
    pub fn contiguous(len: usize) -> Datatype {
        Datatype::Contiguous { len }
    }

    /// Builds a subarray datatype, validating the shape.
    pub fn subarray(
        sizes: &[usize],
        subsizes: &[usize],
        starts: &[usize],
        elem: usize,
    ) -> MpiResult<Datatype> {
        if sizes.len() != subsizes.len() || sizes.len() != starts.len() {
            return Err(MpiError::BadDatatype(format!(
                "rank mismatch: sizes {}, subsizes {}, starts {}",
                sizes.len(),
                subsizes.len(),
                starts.len()
            )));
        }
        if sizes.is_empty() {
            return Err(MpiError::BadDatatype("zero-dimensional subarray".into()));
        }
        if elem == 0 {
            return Err(MpiError::BadDatatype("zero-size element".into()));
        }
        for i in 0..sizes.len() {
            if starts[i] + subsizes[i] > sizes[i] {
                return Err(MpiError::BadDatatype(format!(
                    "dim {i}: start {} + subsize {} exceeds size {}",
                    starts[i], subsizes[i], sizes[i]
                )));
            }
        }
        Ok(Datatype::Subarray {
            sizes: sizes.to_vec(),
            subsizes: subsizes.to_vec(),
            starts: starts.to_vec(),
            elem,
        })
    }

    /// Total number of bytes the type selects.
    pub fn size(&self) -> usize {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count, blocklen, ..
            } => count * blocklen,
            Datatype::Indexed { blocks } => blocks.iter().map(|&(_, l)| l).sum(),
            Datatype::Subarray { subsizes, elem, .. } => subsizes.iter().product::<usize>() * elem,
        }
    }

    /// Number of contiguous segments after coalescing along the innermost
    /// dimension.
    pub fn num_segments(&self) -> usize {
        match self {
            Datatype::Contiguous { len } => usize::from(*len > 0),
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                if *blocklen == 0 || *count == 0 {
                    0
                } else if blocklen == stride {
                    1
                } else {
                    *count
                }
            }
            Datatype::Indexed { blocks } => blocks.iter().filter(|&&(_, l)| l > 0).count(),
            Datatype::Subarray {
                subsizes, sizes, ..
            } => {
                if subsizes.contains(&0) {
                    return 0;
                }
                // Runs along the innermost dimension; fully-covered inner
                // dimensions coalesce upward. Let `m` be the outermost
                // dimension that still contributes to each contiguous run:
                // one segment per index combination of dims `0..m`.
                let mut m = sizes.len() - 1;
                while m > 0 && subsizes[m] == sizes[m] {
                    m -= 1;
                }
                subsizes[..m].iter().product()
            }
        }
    }

    /// The span in bytes from the first to one past the last selected byte
    /// (the buffer must be at least `extent()` long).
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                if *count == 0 || *blocklen == 0 {
                    0
                } else {
                    (count - 1) * stride + blocklen
                }
            }
            Datatype::Indexed { blocks } => blocks.iter().map(|&(d, l)| d + l).max().unwrap_or(0),
            Datatype::Subarray {
                sizes,
                subsizes,
                starts,
                elem,
            } => {
                // True span: one past the last selected byte, so that tight
                // window allocations (last row not spanning a full stride)
                // pass bounds checks.
                if subsizes.contains(&0) {
                    return 0;
                }
                let n = sizes.len();
                let mut stride = *elem;
                let mut last = 0usize;
                for d in (0..n).rev() {
                    last += (starts[d] + subsizes[d] - 1) * stride;
                    stride *= sizes[d];
                }
                last + elem
            }
        }
    }

    /// Flattens to ordered `(offset, len)` segments, coalescing contiguous
    /// runs.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        match self {
            Datatype::Contiguous { len } => {
                if *len > 0 {
                    out.push((0, *len));
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                if *blocklen > 0 {
                    for i in 0..*count {
                        out.push((i * stride, *blocklen));
                    }
                }
            }
            Datatype::Indexed { blocks } => {
                out.extend(blocks.iter().copied().filter(|&(_, l)| l > 0));
            }
            Datatype::Subarray {
                sizes,
                subsizes,
                starts,
                elem,
            } => {
                subarray_segments(sizes, subsizes, starts, *elem, &mut out);
            }
        }
        coalesce(&mut out);
        out
    }
}

/// Row-major subarray enumeration: emits one segment per innermost-dimension
/// run.
fn subarray_segments(
    sizes: &[usize],
    subsizes: &[usize],
    starts: &[usize],
    elem: usize,
    out: &mut Vec<(usize, usize)>,
) {
    let n = sizes.len();
    if subsizes.contains(&0) {
        return;
    }
    // Byte strides of each dimension (C order: last dim fastest).
    let mut strides = vec![0usize; n];
    let mut acc = elem;
    for d in (0..n).rev() {
        strides[d] = acc;
        acc *= sizes[d];
    }
    let run = subsizes[n - 1] * elem;
    // Iterate over all index tuples of the outer n-1 dims.
    let outer: usize = subsizes[..n - 1].iter().product();
    let mut idx = vec![0usize; n.saturating_sub(1)];
    for _ in 0..outer.max(1) {
        let mut off = starts[n - 1] * elem;
        for d in 0..n - 1 {
            off += (starts[d] + idx[d]) * strides[d];
        }
        out.push((off, run));
        // increment mixed-radix counter (idx over subsizes[..n-1]),
        // innermost of the outer dims moves fastest
        for d in (0..n - 1).rev() {
            idx[d] += 1;
            if idx[d] < subsizes[d] {
                break;
            }
            idx[d] = 0;
        }
        if n == 1 {
            break;
        }
    }
}

/// Merges adjacent `(offset, len)` pairs that are contiguous in memory.
/// Segments must already be in ascending offset order for full coalescing;
/// out-of-order inputs are left as-is apart from adjacent merges.
fn coalesce(segs: &mut Vec<(usize, usize)>) {
    let mut w = 0usize;
    for i in 0..segs.len() {
        if w > 0 && segs[w - 1].0 + segs[w - 1].1 == segs[i].0 {
            segs[w - 1].1 += segs[i].1;
        } else {
            segs[w] = segs[i];
            w += 1;
        }
    }
    segs.truncate(w);
}

/// Splits the segment lists of two datatypes into a common refinement so
/// that bytes can be copied pairwise. Returns `(origin_piece, target_piece,
/// len)` triples. Errors if total sizes differ.
pub fn zip_segments(origin: &Datatype, target: &Datatype) -> MpiResult<Vec<(usize, usize, usize)>> {
    let ob = origin.size();
    let tb = target.size();
    if ob != tb {
        return Err(MpiError::TypeMismatch {
            origin_bytes: ob,
            target_bytes: tb,
        });
    }
    let os = origin.segments();
    let ts = target.segments();
    let mut out = Vec::with_capacity(os.len().max(ts.len()));
    let (mut oi, mut ti) = (0usize, 0usize);
    let (mut ooff, mut toff) = (0usize, 0usize);
    while oi < os.len() && ti < ts.len() {
        let orem = os[oi].1 - ooff;
        let trem = ts[ti].1 - toff;
        let n = orem.min(trem);
        out.push((os[oi].0 + ooff, ts[ti].0 + toff, n));
        ooff += n;
        toff += n;
        if ooff == os[oi].1 {
            oi += 1;
            ooff = 0;
        }
        if toff == ts[ti].1 {
            ti += 1;
            toff = 0;
        }
    }
    Ok(out)
}

/// Structural signature of a datatype: a canonical `Vec<u64>` encoding of
/// shape (kind tag, dims, counts, strides, element size). Every variant
/// starts with a distinct tag and variable-length parts carry an explicit
/// length prefix, so encodings of different shapes cannot collide.
/// Indexed blocks are normalised relative to their lowest displacement —
/// the same IOV shape issued at a different window displacement commits
/// to the same cached descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DtypeSig(Vec<u64>);

impl DtypeSig {
    /// Signature of one datatype.
    pub fn of(d: &Datatype) -> DtypeSig {
        let mut v = Vec::new();
        Self::encode(d, &mut v);
        DtypeSig(v)
    }

    /// Combined signature of an (origin, target) pair — one wire pack
    /// descriptor covers both sides.
    pub fn pair(origin: &Datatype, target: &Datatype) -> DtypeSig {
        let mut v = Vec::new();
        Self::encode(origin, &mut v);
        Self::encode(target, &mut v);
        DtypeSig(v)
    }

    fn encode(d: &Datatype, v: &mut Vec<u64>) {
        match d {
            Datatype::Contiguous { len } => {
                v.push(0);
                v.push(*len as u64);
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                v.push(1);
                v.push(*count as u64);
                v.push(*blocklen as u64);
                v.push(*stride as u64);
            }
            Datatype::Indexed { blocks } => {
                v.push(2);
                let live: Vec<(usize, usize)> =
                    blocks.iter().copied().filter(|&(_, l)| l > 0).collect();
                let base = live.iter().map(|&(o, _)| o).min().unwrap_or(0);
                v.push(live.len() as u64);
                for (o, l) in live {
                    v.push((o - base) as u64);
                    v.push(l as u64);
                }
            }
            Datatype::Subarray {
                sizes,
                subsizes,
                starts: _,
                elem,
            } => {
                // The pack descriptor depends on dims/counts/strides, not
                // on where the patch sits — `starts` is excluded so every
                // same-shape patch hits one committed type.
                v.push(3);
                v.push(*elem as u64);
                v.push(sizes.len() as u64);
                v.extend(sizes.iter().map(|&s| s as u64));
                v.extend(subsizes.iter().map(|&s| s as u64));
            }
        }
    }
}

/// Committed-datatype cache (§VI-B): remembers pack-descriptor shapes by
/// [`DtypeSig`] so repeated NWChem-style patch transfers skip the
/// descriptor build cost. Bounded, with least-recently-used eviction by a
/// monotonic use tick; hit/miss/eviction counters feed `StageStats` and
/// the obs `DtypeCommit` instants.
#[derive(Debug)]
pub struct DtypeCache {
    cap: usize,
    tick: u64,
    map: HashMap<DtypeSig, u64>,
    /// Consultations that found a committed descriptor.
    pub hits: u64,
    /// Consultations that had to build (and commit) a descriptor.
    pub misses: u64,
    /// Committed descriptors discarded to stay within capacity.
    pub evictions: u64,
}

impl DtypeCache {
    /// Cache holding at most `cap` committed descriptors (`cap >= 1`).
    pub fn new(cap: usize) -> DtypeCache {
        DtypeCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Consults the cache for the (origin, target) pack descriptor,
    /// committing it on miss. Returns `true` on hit (descriptor build
    /// skipped).
    pub fn commit_pair(&mut self, origin: &Datatype, target: &Datatype) -> bool {
        self.commit_sig(DtypeSig::pair(origin, target))
    }

    /// Consults the cache for one datatype's descriptor.
    pub fn commit(&mut self, d: &Datatype) -> bool {
        self.commit_sig(DtypeSig::of(d))
    }

    fn commit_sig(&mut self, sig: DtypeSig) -> bool {
        self.tick += 1;
        if let Some(last) = self.map.get_mut(&sig) {
            *last = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.map.len() >= self.cap {
            // cap is small (tens of shapes); a linear LRU scan beats
            // maintaining an ordered index
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|&(_, &last)| last)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
        self.map.insert(sig, self.tick);
        false
    }

    /// Committed descriptors currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Nothing committed yet?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit-rate in `[0, 1]`; zero before the first consultation.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_one_segment() {
        let d = Datatype::contiguous(64);
        assert_eq!(d.size(), 64);
        assert_eq!(d.extent(), 64);
        assert_eq!(d.segments(), vec![(0, 64)]);
    }

    #[test]
    fn vector_segments_and_extent() {
        let d = Datatype::Vector {
            count: 3,
            blocklen: 4,
            stride: 10,
        };
        assert_eq!(d.size(), 12);
        assert_eq!(d.extent(), 24);
        assert_eq!(d.segments(), vec![(0, 4), (10, 4), (20, 4)]);
    }

    #[test]
    fn dense_vector_coalesces() {
        let d = Datatype::Vector {
            count: 4,
            blocklen: 8,
            stride: 8,
        };
        assert_eq!(d.segments(), vec![(0, 32)]);
    }

    #[test]
    fn indexed_skips_empty_blocks() {
        let d = Datatype::Indexed {
            blocks: vec![(0, 4), (4, 0), (8, 4)],
        };
        assert_eq!(d.segments(), vec![(0, 4), (8, 4)]);
        assert_eq!(d.size(), 8);
    }

    #[test]
    fn indexed_adjacent_blocks_coalesce() {
        let d = Datatype::Indexed {
            blocks: vec![(0, 4), (4, 4), (16, 4)],
        };
        assert_eq!(d.segments(), vec![(0, 8), (16, 4)]);
    }

    #[test]
    fn subarray_2d_row_major() {
        // 4x6 array of f64, take the 2x3 patch starting at (1,2)
        let d = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], 8).unwrap();
        assert_eq!(d.size(), 2 * 3 * 8);
        let segs = d.segments();
        // row 1: offset (1*6+2)*8 = 64, 24 bytes; row 2: (2*6+2)*8 = 112
        assert_eq!(segs, vec![(64, 24), (112, 24)]);
    }

    #[test]
    fn subarray_full_rows_coalesce() {
        // patch spans full innermost dimension -> contiguous rows merge
        let d = Datatype::subarray(&[4, 6], &[2, 6], &[1, 0], 1).unwrap();
        assert_eq!(d.segments(), vec![(6, 12)]);
    }

    #[test]
    fn subarray_3d() {
        let d = Datatype::subarray(&[2, 3, 4], &[2, 2, 2], &[0, 1, 1], 1).unwrap();
        let segs = d.segments();
        assert_eq!(d.size(), 8);
        assert_eq!(segs.iter().map(|s| s.1).sum::<usize>(), 8);
        // offsets: z-plane 0 rows 1,2 col 1..3 → 5,9 ; plane 1 → 17,21
        assert_eq!(segs, vec![(5, 2), (9, 2), (17, 2), (21, 2)]);
    }

    #[test]
    fn subarray_validation() {
        assert!(Datatype::subarray(&[4], &[5], &[0], 8).is_err());
        assert!(Datatype::subarray(&[4, 4], &[1], &[0], 8).is_err());
        assert!(Datatype::subarray(&[4], &[2], &[3], 8).is_err());
        assert!(Datatype::subarray(&[], &[], &[], 8).is_err());
        assert!(Datatype::subarray(&[4], &[2], &[0], 0).is_err());
    }

    #[test]
    fn zip_equal_shapes() {
        let a = Datatype::Vector {
            count: 2,
            blocklen: 4,
            stride: 8,
        };
        let b = Datatype::contiguous(8);
        let z = zip_segments(&a, &b).unwrap();
        assert_eq!(z, vec![(0, 0, 4), (8, 4, 4)]);
    }

    #[test]
    fn zip_refines_mismatched_segmentation() {
        let a = Datatype::Indexed {
            blocks: vec![(0, 6), (10, 2)],
        };
        let b = Datatype::Indexed {
            blocks: vec![(0, 2), (4, 6)],
        };
        let z = zip_segments(&a, &b).unwrap();
        assert_eq!(z, vec![(0, 0, 2), (2, 4, 4), (10, 8, 2)]);
        let total: usize = z.iter().map(|t| t.2).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn zip_rejects_size_mismatch() {
        let a = Datatype::contiguous(8);
        let b = Datatype::contiguous(9);
        assert!(matches!(
            zip_segments(&a, &b),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn num_segments_matches_segment_list() {
        let cases = vec![
            Datatype::contiguous(64),
            Datatype::Vector {
                count: 3,
                blocklen: 4,
                stride: 10,
            },
            Datatype::Vector {
                count: 4,
                blocklen: 8,
                stride: 8,
            },
            Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], 8).unwrap(),
            Datatype::subarray(&[4, 6], &[2, 6], &[1, 0], 1).unwrap(),
            Datatype::subarray(&[2, 3, 4], &[2, 2, 2], &[0, 1, 1], 1).unwrap(),
            Datatype::subarray(&[5], &[3], &[1], 8).unwrap(),
            Datatype::subarray(&[2, 3], &[2, 3], &[0, 0], 4).unwrap(),
        ];
        for d in cases {
            assert_eq!(d.num_segments(), d.segments().len(), "{d:?}");
        }
    }

    #[test]
    fn dtype_cache_hits_on_repeated_shape() {
        let mut c = DtypeCache::new(8);
        let patch = Datatype::subarray(&[64, 64], &[8, 8], &[4, 4], 8).unwrap();
        assert!(!c.commit(&patch)); // cold miss builds the descriptor
        assert!(c.commit(&patch));
        // same patch shape at a different origin hits (starts excluded)
        let shifted = Datatype::subarray(&[64, 64], &[8, 8], &[20, 32], 8).unwrap();
        assert!(c.commit(&shifted));
        assert_eq!((c.hits, c.misses), (2, 1));
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dtype_cache_normalises_indexed_displacement() {
        let mut c = DtypeCache::new(8);
        let a = Datatype::Indexed {
            blocks: vec![(0, 8), (16, 8)],
        };
        let b = Datatype::Indexed {
            blocks: vec![(100, 8), (116, 8)],
        };
        assert!(!c.commit(&a));
        assert!(c.commit(&b)); // same shape, different displacement
    }

    #[test]
    fn dtype_cache_lru_eviction() {
        let mut c = DtypeCache::new(2);
        let a = Datatype::contiguous(16);
        let b = Datatype::contiguous(32);
        let d = Datatype::contiguous(64);
        assert!(!c.commit(&a));
        assert!(!c.commit(&b));
        assert!(c.commit(&a)); // a now more recently used than b
        assert!(!c.commit(&d)); // evicts b (LRU), not a
        assert_eq!(c.evictions, 1);
        assert_eq!(c.len(), 2);
        assert!(c.commit(&a));
        assert!(c.commit(&d));
        assert!(!c.commit(&b)); // b really was evicted
    }

    #[test]
    fn dtype_signatures_do_not_collide_across_shapes() {
        // Same flattened byte pattern, structurally different types:
        // signatures must differ (kind tags keep the encoding injective).
        let vector = Datatype::Vector {
            count: 2,
            blocklen: 2,
            stride: 4,
        };
        let indexed = Datatype::Indexed {
            blocks: vec![(0, 2), (4, 2)],
        };
        assert_ne!(DtypeSig::of(&vector), DtypeSig::of(&indexed));
        // Raw number streams that would alias without length prefixes.
        let i1 = Datatype::Indexed {
            blocks: vec![(1, 2), (3, 4)],
        };
        let i2 = Datatype::Indexed {
            blocks: vec![(1, 2), (3, 4), (9, 1)],
        };
        assert_ne!(DtypeSig::of(&i1), DtypeSig::of(&i2));
        // Contiguous{4} vs Vector{count:4,...} share leading numbers.
        assert_ne!(
            DtypeSig::of(&Datatype::contiguous(4)),
            DtypeSig::of(&Datatype::Vector {
                count: 4,
                blocklen: 1,
                stride: 1
            })
        );
        // Pair signature is ordered: (a,b) != (b,a) for a != b.
        let a = Datatype::contiguous(8);
        assert_ne!(DtypeSig::pair(&a, &vector), DtypeSig::pair(&vector, &a));
    }

    #[test]
    fn zero_sized_types() {
        let d = Datatype::contiguous(0);
        assert!(d.segments().is_empty());
        let v = Datatype::Vector {
            count: 0,
            blocklen: 8,
            stride: 16,
        };
        assert_eq!(v.size(), 0);
        assert!(v.segments().is_empty());
    }
}
