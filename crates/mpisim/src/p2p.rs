//! Two-sided point-to-point messaging.
//!
//! Eager buffered sends (a send never blocks) with receive-side matching on
//! `(communicator, source, tag)`, including the `ANY_SOURCE` / `ANY_TAG`
//! wildcards that the paper's queueing-mutex implementation depends on
//! ("the process waits on an `MPI_Recv` operation from a wildcard source").

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Wildcard tag.
pub const ANY_TAG: i32 = -1;

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvSrc {
    /// Match a specific communicator rank.
    Rank(usize),
    /// Match any source (`MPI_ANY_SOURCE`).
    Any,
}

/// Completed-receive metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// Communicator rank of the sender.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload length in bytes.
    pub len: usize,
}

/// A queued message.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub comm: u64,
    pub src_comm_rank: usize,
    pub tag: i32,
    pub data: Vec<u8>,
    /// Virtual time at which the message arrives at the receiver.
    pub arrives_at: f64,
}

/// Per-rank incoming message queue.
pub(crate) struct Mailbox {
    m: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox {
            m: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a message.
    pub fn deliver(&self, env: Envelope) {
        self.m.lock().push_back(env);
        self.cv.notify_all();
    }

    fn matches(env: &Envelope, comm: u64, src: RecvSrc, tag: i32) -> bool {
        env.comm == comm
            && (tag == ANY_TAG || env.tag == tag)
            && match src {
                RecvSrc::Any => true,
                RecvSrc::Rank(r) => env.src_comm_rank == r,
            }
    }

    /// Blocks until a matching message is available and removes it.
    pub fn recv(&self, comm: u64, src: RecvSrc, tag: i32) -> Envelope {
        let mut q = self.m.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| Self::matches(e, comm, src, tag)) {
                return q.remove(pos).expect("position vanished");
            }
            self.cv.wait(&mut q);
        }
    }

    /// Non-blocking probe: metadata of the first matching message, if any.
    pub fn iprobe(&self, comm: u64, src: RecvSrc, tag: i32) -> Option<Status> {
        let q = self.m.lock();
        q.iter()
            .find(|e| Self::matches(e, comm, src, tag))
            .map(|e| Status {
                source: e.src_comm_rank,
                tag: e.tag,
                len: e.data.len(),
            })
    }

    /// Number of queued messages (test/diagnostic aid).
    #[cfg(test)]
    pub fn depth(&self) -> usize {
        self.m.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(comm: u64, src: usize, tag: i32, data: Vec<u8>) -> Envelope {
        Envelope {
            comm,
            src_comm_rank: src,
            tag,
            data,
            arrives_at: 0.0,
        }
    }

    #[test]
    fn fifo_within_matching_class() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7, vec![1]));
        mb.deliver(env(0, 1, 7, vec![2]));
        assert_eq!(mb.recv(0, RecvSrc::Rank(1), 7).data, vec![1]);
        assert_eq!(mb.recv(0, RecvSrc::Rank(1), 7).data, vec![2]);
    }

    #[test]
    fn matching_skips_other_comms_and_tags() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 0, 5, vec![9]));
        mb.deliver(env(0, 0, 6, vec![8]));
        mb.deliver(env(0, 0, 5, vec![7]));
        assert_eq!(mb.recv(0, RecvSrc::Rank(0), 5).data, vec![7]);
        assert_eq!(mb.depth(), 2);
    }

    #[test]
    fn wildcards_match_anything() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 3, 42, vec![1]));
        let e = mb.recv(0, RecvSrc::Any, ANY_TAG);
        assert_eq!(e.src_comm_rank, 3);
        assert_eq!(e.tag, 42);
    }

    #[test]
    fn iprobe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 2, 1, vec![1, 2, 3]));
        let st = mb.iprobe(0, RecvSrc::Any, ANY_TAG).unwrap();
        assert_eq!(
            st,
            Status {
                source: 2,
                tag: 1,
                len: 3
            }
        );
        assert_eq!(mb.depth(), 1);
        assert!(mb.iprobe(0, RecvSrc::Rank(5), ANY_TAG).is_none());
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.recv(0, RecvSrc::Any, ANY_TAG).data);
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(env(0, 0, 0, vec![42]));
        assert_eq!(h.join().unwrap(), vec![42]);
    }
}
