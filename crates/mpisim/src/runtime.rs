//! Runtime bootstrap: one OS thread per simulated MPI process.

use crate::coll::CollectiveCell;
use crate::comm::{Comm, CommInner};
use crate::p2p::Mailbox;
use crate::progress::ProgressBoard;
use crate::win::WinInner;
use parking_lot::{Mutex, RwLock};
use simnet::{CongestionParams, Network, Platform, PlatformId, VClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Runtime-wide configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Platform whose cost model prices every operation. The MPI-side
    /// parameters (`platform.mpi`) are used by this crate.
    pub platform: Platform,
    /// When true, the runtime detects and reports access patterns that the
    /// MPI-2 standard declares erroneous (conflicting RMA operations within
    /// an epoch, double locking). Mirrors a debugging MPI build.
    pub semantic_checks: bool,
    /// When true, operations advance the per-rank virtual clocks.
    pub charge_time: bool,
    /// When set, inter-node RMA contends for shared per-node NICs (see
    /// [`simnet::net`]): concurrent transfers on one link queue behind
    /// each other instead of each seeing the full bandwidth. `None`
    /// (the default) keeps the classic independent-op pricing.
    pub congestion: Option<CongestionParams>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            platform: Platform::get(PlatformId::InfiniBandCluster),
            semantic_checks: true,
            charge_time: true,
            congestion: None,
        }
    }
}

impl RuntimeConfig {
    /// Config for a given platform with checks on.
    pub fn on_platform(id: PlatformId) -> Self {
        RuntimeConfig {
            platform: Platform::get(id),
            ..Default::default()
        }
    }
}

/// State shared by all ranks of one runtime instance.
pub(crate) struct Shared {
    pub nranks: usize,
    pub cfg: RuntimeConfig,
    pub clocks: Vec<VClock>,
    pub mailboxes: Vec<Mailbox>,
    pub comms: RwLock<HashMap<u64, Arc<CommInner>>>,
    pub next_comm_id: AtomicU64,
    pub wins: RwLock<HashMap<u64, Arc<WinInner>>>,
    pub next_win_id: AtomicU64,
    /// Ids of freed windows, reused by [`Shared::alloc_win_id`] so
    /// alloc/free cycles keep the id space (and every table keyed by
    /// window id) bounded instead of growing monotonically.
    pub free_win_ids: Mutex<Vec<u64>>,
    /// Generic shared-segment registry: lets higher layers (e.g. the
    /// native ARMCI baseline, which models XPMEM-style shared memory)
    /// publish cross-rank state without going through MPI windows.
    pub shmem: RwLock<HashMap<u64, Arc<dyn std::any::Any + Send + Sync>>>,
    pub next_uid: AtomicU64,
    /// Shared-NIC congestion model; populated iff `cfg.congestion` is set.
    pub net: Option<Network>,
    /// Passive-target progress board: per-rank compute meters plus the
    /// phase profiles published at world-collective entries (see
    /// [`crate::progress`]).
    pub progress: ProgressBoard,
}

pub(crate) const WORLD_COMM_ID: u64 = 0;

impl Shared {
    fn new(nranks: usize, cfg: RuntimeConfig) -> Arc<Shared> {
        let world = Arc::new(CommInner {
            id: WORLD_COMM_ID,
            members: (0..nranks).collect(),
            coll: CollectiveCell::new(nranks),
        });
        let mut comms = HashMap::new();
        comms.insert(WORLD_COMM_ID, world);
        let net = cfg.congestion.clone().map(|p| {
            let per_node = cfg.platform.cores_per_node().max(1) as usize;
            Network::new(nranks.div_ceil(per_node).max(1), p)
        });
        Arc::new(Shared {
            nranks,
            cfg,
            clocks: (0..nranks).map(|_| VClock::new()).collect(),
            mailboxes: (0..nranks).map(|_| Mailbox::new()).collect(),
            comms: RwLock::new(comms),
            next_comm_id: AtomicU64::new(1),
            wins: RwLock::new(HashMap::new()),
            next_win_id: AtomicU64::new(1),
            free_win_ids: Mutex::new(Vec::new()),
            shmem: RwLock::new(HashMap::new()),
            next_uid: AtomicU64::new(1),
            net,
            progress: ProgressBoard::new(nranks),
        })
    }

    /// Allocates a fresh communicator id.
    pub fn alloc_comm_id(&self) -> u64 {
        self.next_comm_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a window id, preferring ids recycled by
    /// [`Shared::recycle_win_id`] over growing the counter.
    pub fn alloc_win_id(&self) -> u64 {
        if let Some(id) = self.free_win_ids.lock().pop() {
            return id;
        }
        self.next_win_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a window id to the free list. Called exactly once per
    /// freed window, after its `wins` entry has been removed.
    pub fn recycle_win_id(&self, id: u64) {
        self.free_win_ids.lock().push(id);
    }

    /// Allocates a fresh generic uid (shared-segment registry keys).
    pub fn alloc_uid(&self) -> u64 {
        self.next_uid.fetch_add(1, Ordering::Relaxed)
    }
}

/// Handle held by each simulated process ("rank").
pub struct Proc {
    pub(crate) world_rank: usize,
    pub(crate) shared: Arc<Shared>,
}

impl Proc {
    /// This process's rank in the world communicator.
    pub fn rank(&self) -> usize {
        self.world_rank
    }

    /// Number of processes in the world.
    pub fn size(&self) -> usize {
        self.shared.nranks
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        let inner = self.shared.comms.read()[&WORLD_COMM_ID].clone();
        Comm::from_inner(self, inner)
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> &VClock {
        &self.shared.clocks[self.world_rank]
    }

    /// Advances this rank's virtual clock by `dt` if time charging is on.
    pub(crate) fn charge(&self, dt: f64) {
        if self.shared.cfg.charge_time {
            self.clock().advance(dt);
        }
    }

    /// The MPI-backend cost parameters of the configured platform.
    pub fn params(&self) -> &simnet::BackendParams {
        &self.shared.cfg.platform.mpi
    }

    /// Runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.cfg
    }

    /// Models local computation taking `seconds` of virtual time. The
    /// span is also fed to this rank's compute meter on the progress
    /// board, from which peers price expected passive-target stalls.
    pub fn compute(&self, seconds: f64) {
        self.shared.progress.note_compute(self.world_rank, seconds);
        if obs::enabled() {
            let t0 = self.clock().now();
            self.charge(seconds);
            obs::span(obs::EventKind::Compute, t0, self.clock().now());
        } else {
            self.charge(seconds);
        }
    }
}

/// Entry point: spawns `nranks` threads and runs `f` as each rank's main.
///
/// ```
/// use mpisim::coll::ReduceOp;
/// use mpisim::Runtime;
///
/// let sums = Runtime::run(4, |p| {
///     let world = p.world();
///     world.allreduce_i64(ReduceOp::Sum, &[p.rank() as i64])[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub struct Runtime;

impl Runtime {
    /// Runs an SPMD program on `nranks` simulated processes with the given
    /// configuration; returns each rank's result, indexed by rank.
    ///
    /// Panics in any rank propagate (the whole run aborts), matching an MPI
    /// job dying on error.
    pub fn run_with<F, R>(nranks: usize, cfg: RuntimeConfig, f: F) -> Vec<R>
    where
        F: Fn(&Proc) -> R + Send + Sync,
        R: Send,
    {
        assert!(nranks > 0, "need at least one rank");
        let shared = Shared::new(nranks, cfg);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nranks);
            for rank in 0..nranks {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(s.spawn(move || {
                    // Tag this rank thread's trace events; the recorder's
                    // thread-local buffer flushes when the thread exits,
                    // i.e. before `run_with` returns.
                    obs::set_rank(rank);
                    let proc = Proc {
                        world_rank: rank,
                        shared,
                    };
                    f(&proc)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }

    /// [`Runtime::run_with`] under the default (InfiniBand, checks-on)
    /// configuration.
    pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&Proc) -> R + Send + Sync,
        R: Send,
    {
        Self::run_with(nranks, RuntimeConfig::default(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let mut ranks = Runtime::run(8, |p| p.rank());
        ranks.sort_unstable();
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn size_is_visible_everywhere() {
        let sizes = Runtime::run(5, |p| p.size());
        assert!(sizes.iter().all(|&s| s == 5));
    }

    #[test]
    fn world_comm_has_identity_mapping() {
        Runtime::run(4, |p| {
            let w = p.world();
            assert_eq!(w.rank(), p.rank());
            assert_eq!(w.size(), 4);
        });
    }

    #[test]
    fn compute_advances_clock() {
        Runtime::run(2, |p| {
            p.compute(1.25);
            assert!((p.clock().now() - 1.25).abs() < 1e-12);
        });
    }

    #[test]
    fn charge_time_can_be_disabled() {
        let cfg = RuntimeConfig {
            charge_time: false,
            ..Default::default()
        };
        Runtime::run_with(2, cfg, |p| {
            p.compute(1.0);
            assert_eq!(p.clock().now(), 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Runtime::run(0, |_| ());
    }
}
