//! MPI-3 RMA extensions (paper §VIII-B).
//!
//! The paper motivates four MPI-3 additions from ARMCI-MPI's pain points:
//! (1) conflicting operations relaxed from *erroneous* to *undefined*,
//! (2) an epochless passive mode (`lock_all`), (3) request-based operations
//! for communication/computation overlap, and (4) atomic read-modify-write
//! operations. This module implements all four on [`WinHandle`] so that the
//! `armci-mpi` crate can offer an MPI-3 backend for ablation studies
//! (mutex-based RMW vs native `fetch_and_op`, per-op epochs vs `lock_all`
//! + `flush`).

use crate::dtype::Datatype;
use crate::error::{MpiError, MpiResult};
use crate::win::{AccOp, ElemType, LockMode, LockOps, RmaClass, WinHandle};

/// Atomic fetch-and-op operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOp {
    /// Fetch old value and add.
    Sum,
    /// Fetch old value and store the operand (atomic swap).
    Replace,
    /// Fetch only (`MPI_NO_OP`).
    NoOp,
}

/// A request-based RMA operation in flight.
#[derive(Debug)]
pub struct RmaRequest {
    completes_at: f64,
}

impl RmaRequest {
    /// Blocks (in virtual time) until the operation completes; models
    /// communication/computation overlap: compute performed between issue
    /// and `wait` hides the transfer.
    pub fn wait(self, win: &WinHandle) {
        if win.shared.cfg.charge_time {
            win.shared.clocks[win.comm.my_world_rank()].advance_to(self.completes_at);
        }
    }

    /// Virtual time at which the transfer completes remotely.
    pub fn completes_at(&self) -> f64 {
        self.completes_at
    }
}

impl WinHandle {
    /// MPI-3 `MPI_Win_lock_all`: opens a shared access epoch on every
    /// target at once. Conflict tracking is disabled (MPI-3 demotes
    /// conflicts from erroneous to undefined), matching §VIII-B(1)+(2).
    pub fn lock_all(&self) -> MpiResult<()> {
        if self.lock_all_active.get() {
            return Err(MpiError::AlreadyLocked { target: usize::MAX });
        }
        for t in 0..self.size_count() {
            if self.is_locked(t) {
                return Err(MpiError::EpochModeMixed { target: t });
            }
        }
        for t in 0..self.size_count() {
            self.target_lock(t).acquire(LockMode::Shared);
        }
        self.lock_all_active.set(true);
        self.charge_pub(0.5 * self.params_pub().epoch_overhead);
        if obs::enabled() {
            obs::instant_at(obs::EventKind::LockAll { win: self.id() }, self.now());
        }
        Ok(())
    }

    /// MPI-3 `MPI_Win_unlock_all`.
    pub fn unlock_all(&self) -> MpiResult<()> {
        if !self.lock_all_active.get() {
            return Err(MpiError::NotLocked { target: usize::MAX });
        }
        self.lock_all_active.set(false);
        for t in 0..self.size_count() {
            self.target_lock(t).release(LockMode::Shared);
        }
        self.charge_pub(0.5 * self.params_pub().epoch_overhead);
        if obs::enabled() {
            obs::instant_at(obs::EventKind::UnlockAll { win: self.id() }, self.now());
        }
        Ok(())
    }

    /// MPI-3 `MPI_Win_flush`: completes all outstanding operations on
    /// `target`. Operations execute eagerly in the simulator, so this only
    /// charges the remote-completion round trip.
    pub fn flush(&self, target: usize) -> MpiResult<()> {
        if !self.lock_all_active.get() && !self.is_locked(target) {
            return Err(MpiError::NoEpoch { target });
        }
        // The flush acknowledgement is a target-serviced round.
        let prog = self.progress_extra(target, 1);
        self.charge_pub(self.params_pub().put.alpha + prog);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::Flush {
                    win: self.id(),
                    target: target as u32,
                },
                self.now(),
            );
        }
        Ok(())
    }

    /// MPI-3 `MPI_Fetch_and_op` on a 64-bit signed integer.
    ///
    /// Atomic with respect to all other `fetch_and_op` / `compare_and_swap`
    /// calls on the same location. Requires an open epoch (lock or
    /// lock_all) on the target.
    pub fn fetch_and_op_i64(
        &self,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64> {
        self.rmw_guarded(target, tdisp, true, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = match op {
                FetchOp::Sum => old.wrapping_add(operand),
                FetchOp::Replace => operand,
                FetchOp::NoOp => old,
            };
            *cell = new.to_le_bytes();
            old
        })
    }

    /// Epoch-free fetch-and-op for channel-style wire backends whose
    /// atomics complete through a NIC completion queue instead of inside
    /// an MPI epoch. Same cell-level atomicity as
    /// [`WinHandle::fetch_and_op_i64`]; no epoch is required or checked,
    /// and no `Rma` event is emitted (the wire backend records its own
    /// `TransportIssue`), so the auditor's epoch rules don't apply.
    pub fn fetch_and_op_i64_raw(
        &self,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64> {
        self.fetch_and_op_i64_priced(operand, target, tdisp, op, self.params_pub().rmw_latency)
    }

    /// Epoch-free fetch-and-op with an explicit backend-supplied price.
    /// Used by wire backends whose atomics are not MPI operations (NIC
    /// atomics, shared-slab atomics) and therefore carry their own cost
    /// model; emits no `Rma` event.
    pub fn fetch_and_op_i64_priced(
        &self,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
        cost: f64,
    ) -> MpiResult<i64> {
        let old = self.rmw_cell(target, tdisp, false, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = match op {
                FetchOp::Sum => old.wrapping_add(operand),
                FetchOp::Replace => operand,
                FetchOp::NoOp => old,
            };
            *cell = new.to_le_bytes();
            old
        })?;
        self.charge_pub(cost);
        Ok(old)
    }

    /// Epoch-free compare-and-swap with an explicit backend-supplied
    /// price; the epoch-free sibling of
    /// [`WinHandle::compare_and_swap_i64`]. Emits no `Rma` event.
    pub fn compare_and_swap_i64_priced(
        &self,
        compare: i64,
        swap: i64,
        target: usize,
        tdisp: usize,
        cost: f64,
    ) -> MpiResult<i64> {
        let old = self.rmw_cell(target, tdisp, false, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = if old == compare { swap } else { old };
            *cell = new.to_le_bytes();
            old
        })?;
        self.charge_pub(cost);
        Ok(old)
    }

    /// MPI-3 `MPI_Fetch_and_op` on an f64.
    pub fn fetch_and_op_f64(
        &self,
        operand: f64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<f64> {
        let old = self.rmw_guarded(target, tdisp, true, |cell| {
            let old = f64::from_le_bytes(*cell);
            let new = match op {
                FetchOp::Sum => old + operand,
                FetchOp::Replace => operand,
                FetchOp::NoOp => old,
            };
            *cell = new.to_le_bytes();
            old.to_bits() as i64
        })?;
        Ok(f64::from_bits(old as u64))
    }

    /// MPI-3 `MPI_Compare_and_swap` on a 64-bit signed integer: if the
    /// target equals `compare`, stores `swap`; returns the original value.
    pub fn compare_and_swap_i64(
        &self,
        compare: i64,
        swap: i64,
        target: usize,
        tdisp: usize,
    ) -> MpiResult<i64> {
        self.rmw_guarded(target, tdisp, true, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = if old == compare { swap } else { old };
            *cell = new.to_le_bytes();
            old
        })
    }

    /// Atomically applies `f` to the 8-byte cell at `tdisp` on `target`,
    /// charging the MPI backend's `rmw_latency` and emitting the `Rma`
    /// event the epoch auditor watches.
    fn rmw_guarded(
        &self,
        target: usize,
        tdisp: usize,
        require_epoch: bool,
        f: impl FnOnce(&mut [u8; 8]) -> i64,
    ) -> MpiResult<i64> {
        let old = self.rmw_cell(target, tdisp, require_epoch, f)?;
        // MPI-level atomics complete inside the target's library.
        let prog = self.progress_extra(target, 1);
        self.charge_pub(self.params_pub().rmw_latency + prog);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::Rma {
                    win: self.id(),
                    target: target as u32,
                    kind: obs::OpKind::Rmw,
                    bytes: 8,
                },
                self.now(),
            );
        }
        Ok(old)
    }

    /// Cell-level atomic mutation only: bounds/epoch checks and the
    /// io-lock-serialised 8-byte update, with no time charged and no
    /// event emitted. The mutator works in place on a stack array — RMW
    /// ops allocate nothing per call. `require_epoch` enforces the MPI
    /// rule that an epoch covers the access; non-MPI wire atomics pass
    /// `false`.
    fn rmw_cell(
        &self,
        target: usize,
        tdisp: usize,
        require_epoch: bool,
        f: impl FnOnce(&mut [u8; 8]) -> i64,
    ) -> MpiResult<i64> {
        const WIDTH: usize = 8;
        if target >= self.size_count() {
            return Err(MpiError::BadRank {
                rank: target,
                size: self.size_count(),
            });
        }
        if require_epoch && !self.lock_all_active.get() && !self.is_locked(target) {
            return Err(MpiError::NoEpoch { target });
        }
        let size = self.size_of(target);
        if tdisp + WIDTH > size {
            return Err(MpiError::OutOfBounds {
                target,
                disp: tdisp,
                len: WIDTH,
                size,
            });
        }
        let (io, buf, base) = self.raw_mem(target);
        let old = {
            let _g = io.lock();
            // Safety: `io` serialises all access to the slice. `base` is
            // the section offset inside the backing allocation (non-zero
            // on shared-backed windows).
            let slice = unsafe { &mut **buf };
            let lo = base + tdisp;
            let mut cell = [0u8; WIDTH];
            cell.copy_from_slice(&slice[lo..lo + WIDTH]);
            let old = f(&mut cell);
            slice[lo..lo + WIDTH].copy_from_slice(&cell);
            old
        };
        Ok(old)
    }

    /// Request-based fetch-and-op: the cell mutates atomically at issue
    /// (so the fetched value is available immediately and ordering with
    /// respect to other atomics is decided now), the caller's clock is
    /// charged only the issue overhead, and the returned request defers
    /// the rest of the RMW round trip to `wait`/`flush` — §VIII-B(3)+(4)
    /// combined: atomics that participate in overlap.
    pub fn rfetch_and_op_i64(
        &self,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<(i64, RmaRequest)> {
        let old = self.rmw_cell(target, tdisp, true, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = match op {
                FetchOp::Sum => old.wrapping_add(operand),
                FetchOp::Replace => operand,
                FetchOp::NoOp => old,
            };
            *cell = new.to_le_bytes();
            old
        })?;
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::Rma {
                    win: self.id(),
                    target: target as u32,
                    kind: obs::OpKind::Rmw,
                    bytes: 8,
                },
                self.now(),
            );
        }
        let total = self.params_pub().rmw_latency + self.progress_extra(target, 1);
        let issue = self.params_pub().op_overhead.min(total);
        Ok((old, self.defer(issue, total)))
    }

    /// Epoch-free request-based fetch-and-op with backend-supplied issue
    /// and total prices (e.g. a channel backend's doorbell now, wire
    /// round trip + CQ poll at completion). Emits no `Rma` event.
    pub fn rfetch_and_op_i64_priced(
        &self,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
        issue: f64,
        total: f64,
    ) -> MpiResult<(i64, RmaRequest)> {
        let old = self.rmw_cell(target, tdisp, false, |cell| {
            let old = i64::from_le_bytes(*cell);
            let new = match op {
                FetchOp::Sum => old.wrapping_add(operand),
                FetchOp::Replace => operand,
                FetchOp::NoOp => old,
            };
            *cell = new.to_le_bytes();
            old
        })?;
        Ok((old, self.defer(issue, total)))
    }

    /// Request-based put (`MPI_Rput`): the caller's clock is charged only
    /// the software issue overhead; the wire transfer proceeds in the
    /// background and the request's `wait` advances the clock to its
    /// completion time. Computation performed between issue and `wait`
    /// therefore hides the transfer — §VIII-B(3)'s overlap benefit.
    pub fn rput(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        let cost = self.put_core(origin, odt, target, tdisp, tdt)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Put, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        Ok(self.issue_deferred(cost + extra + prog))
    }

    /// Request-based get (`MPI_Rget`).
    pub fn rget(
        &self,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        let cost = self.get_core(origin, odt, target, tdisp, tdt)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Get, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        Ok(self.issue_deferred(cost + extra + prog))
    }

    /// Request-based accumulate (`MPI_Raccumulate`).
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Raccumulate's signature
    pub fn racc(
        &self,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<RmaRequest> {
        let cost = self.accumulate_core(origin, odt, target, tdisp, tdt, elem, op)?;
        let extra = self.net_extra(target, self.wire_ser(simnet::Op::Acc, odt.size()), 1);
        let prog = self.progress_extra(target, 1);
        Ok(self.issue_deferred(cost + extra + prog))
    }

    /// Request-based scheduler-merged RMA: one wire operation covering a
    /// whole coalesced run (bytes already staged; see
    /// [`WinHandle::issue_merged`]). Completion follows the same
    /// issue-now/complete-later model as `rput`, so merged runs under a
    /// `lock_all` epoch finish at `flush`/`wait` like §VIII-B(3) requests.
    pub fn rma_merged(
        &self,
        class: RmaClass,
        target: usize,
        segs: &[(usize, usize)],
    ) -> MpiResult<RmaRequest> {
        let cost = self.issue_merged(class, target, segs)?;
        Ok(self.issue_deferred(cost))
    }

    /// Charges the issue overhead now and defers the rest of `cost` to the
    /// returned request's completion time.
    fn issue_deferred(&self, cost: f64) -> RmaRequest {
        let issue = self.params_pub().op_overhead.min(cost);
        self.defer(issue, cost)
    }

    /// Charges `issue` now and returns a request completing when the
    /// remaining `total - issue` has elapsed. For wire backends that price
    /// operations themselves (e.g. a channel backend's doorbell write now,
    /// completion-queue poll at `wait`).
    pub fn defer(&self, issue: f64, total: f64) -> RmaRequest {
        self.charge_pub(issue);
        RmaRequest {
            completes_at: self.now() + (total - issue).max(0.0),
        }
    }

    fn now(&self) -> f64 {
        self.shared.clocks[self.comm.my_world_rank()].now()
    }

    fn size_count(&self) -> usize {
        self.comm.size()
    }

    pub(crate) fn charge_pub(&self, dt: f64) {
        if self.shared.cfg.charge_time {
            self.shared.clocks[self.comm.my_world_rank()].advance(dt);
        }
    }

    pub(crate) fn params_pub(&self) -> &simnet::BackendParams {
        &self.shared.cfg.platform.mpi
    }
}
