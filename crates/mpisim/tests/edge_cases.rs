//! Edge cases: single-rank communicators, windows on subcommunicators
//! with concurrent traffic elsewhere, large payloads.

use mpisim::coll::ReduceOp;
use mpisim::{LockMode, Proc, RecvSrc, Runtime, RuntimeConfig, WinHandle};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn single_rank_world_collectives() {
    Runtime::run_with(1, quiet(), |p: &Proc| {
        let w = p.world();
        w.barrier();
        assert_eq!(w.allreduce_i64(ReduceOp::Sum, &[7])[0], 7);
        assert_eq!(w.bcast_bytes(0, Some(vec![1, 2])), vec![1, 2]);
        assert_eq!(w.maxloc_i64(5), (5, 0));
        let a2a = w.alltoallv_bytes(vec![vec![9]]);
        assert_eq!(a2a, vec![vec![9]]);
    });
}

#[test]
fn single_rank_window_self_ops() {
    Runtime::run_with(1, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 64);
        win.lock(LockMode::Exclusive, 0).unwrap();
        win.put_bytes(&[9u8; 8], 0, 0).unwrap();
        win.unlock(0).unwrap();
        win.lock(LockMode::Shared, 0).unwrap();
        let mut b = [0u8; 8];
        win.get_bytes(&mut b, 0, 0).unwrap();
        win.unlock(0).unwrap();
        assert_eq!(b, [9u8; 8]);
        win.free().unwrap();
    });
}

#[test]
fn subcomm_window_with_concurrent_world_traffic() {
    Runtime::run_with(6, quiet(), |p: &Proc| {
        let w = p.world();
        let sub = w.split((p.rank() % 2) as i64, p.rank() as i64).unwrap();
        // windows live on the subcommunicators; world p2p runs alongside
        let win = WinHandle::create(&sub, 32);
        if p.rank() == 0 {
            w.send(5, 99, b"cross");
        }
        if sub.rank() == 0 && sub.size() > 1 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[p.rank() as u8 + 1], 1, 0).unwrap();
            win.unlock(1).unwrap();
        }
        if p.rank() == 5 {
            let (m, _) = w.recv(RecvSrc::Rank(0), 99);
            assert_eq!(m, b"cross");
        }
        sub.barrier();
        if sub.rank() == 1 {
            win.lock(LockMode::Shared, 1).unwrap();
            let mut b = [0u8; 1];
            win.get_bytes(&mut b, 1, 0).unwrap();
            win.unlock(1).unwrap();
            // group leader is world rank 0 (even group) or 1 (odd group)
            let leader = sub.world_rank_of(0);
            assert_eq!(b[0], leader as u8 + 1);
        }
        sub.barrier();
        win.free().unwrap();
    });
}

#[test]
fn large_payload_collectives_and_p2p() {
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let w = p.world();
        let big = vec![p.rank() as u8; 1 << 20];
        let all = w.allgather_bytes(big);
        for (r, b) in all.iter().enumerate() {
            assert_eq!(b.len(), 1 << 20);
            assert_eq!(b[0], r as u8);
            assert_eq!(b[(1 << 20) - 1], r as u8);
        }
        if p.rank() == 0 {
            w.send(2, 1, &vec![0xabu8; 1 << 21]);
        } else if p.rank() == 2 {
            let (m, _) = w.recv(RecvSrc::Rank(0), 1);
            assert_eq!(m.len(), 1 << 21);
        }
    });
}

#[test]
fn many_windows_lifecycle() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let wins: Vec<WinHandle> = (0..20)
            .map(|i| WinHandle::create(&w, 8 * (i + 1)))
            .collect();
        for (i, win) in wins.iter().enumerate() {
            assert_eq!(win.size_of(0), 8 * (i + 1));
            if p.rank() == 0 {
                win.lock(LockMode::Exclusive, 1).unwrap();
                win.put_bytes(&[i as u8], 1, 0).unwrap();
                win.unlock(1).unwrap();
            }
        }
        w.barrier();
        for (i, win) in wins.iter().enumerate() {
            if p.rank() == 1 {
                win.lock(LockMode::Shared, 1).unwrap();
                let mut b = [0u8; 1];
                win.get_bytes(&mut b, 1, 0).unwrap();
                win.unlock(1).unwrap();
                assert_eq!(b[0], i as u8);
            }
        }
        w.barrier();
        for win in wins {
            win.free().unwrap();
        }
    });
}
