//! Shared-memory window subsystem: `split_type`, `allocate_shared`,
//! `shared_query` load/store, `win_sync`, and the `shm_*` movers.

use mpisim::{
    AccOp, CommSplitType, Datatype, ElemType, LockMode, MpiError, Proc, Runtime, RuntimeConfig,
    WinHandle,
};
use simnet::{Platform, PlatformId};

/// Runtime config with `ranks_per_node` cores per node and no clock
/// charging, so tests reason about bytes, not virtual time.
fn quiet_nodes(ranks_per_node: u32) -> RuntimeConfig {
    let mut platform = Platform::get(PlatformId::InfiniBandCluster).customized("shm-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform,
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn split_type_shared_groups_node_peers() {
    // 6 ranks, 2 per node → three node communicators of size 2.
    Runtime::run_with(6, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let node = w.split_type(CommSplitType::Shared, 0);
        assert_eq!(node.size(), 2);
        assert_eq!(node.rank(), w.rank() % 2);
        // Members really are this node's world ranks, in rank order.
        let base = w.rank() / 2 * 2;
        assert_eq!(node.world_rank_of(0), base);
        assert_eq!(node.world_rank_of(1), base + 1);
    });
}

#[test]
fn shared_query_gives_load_store_to_node_peers_only() {
    Runtime::run_with(4, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 64);
        let me = w.rank();
        let peer = me ^ 1; // same node under 2 ranks/node
        let far = (me + 2) % 4; // other node

        // Write my own section through the peer-visible handle.
        let mine = win.shared_query(me).unwrap();
        assert_eq!(mine.len(), 64);
        mine.store(0, &[me as u8 + 1; 8]).unwrap();
        w.barrier();

        // Load the node peer's section directly.
        let sec = win.shared_query(peer).unwrap();
        let mut got = [0u8; 8];
        sec.load(0, &mut got).unwrap();
        assert_eq!(got, [peer as u8 + 1; 8]);

        // A rank on another node has no slab here.
        assert_eq!(
            win.shared_query(far).unwrap_err(),
            MpiError::ShmUnavailable { target: far }
        );
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn shared_query_rejects_per_rank_windows() {
    Runtime::run_with(2, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 32);
        assert!(!win.is_shared_backed());
        assert_eq!(
            win.shared_query(0).unwrap_err(),
            MpiError::ShmUnavailable { target: 0 }
        );
        win.free().unwrap();
    });
}

#[test]
fn section_access_after_free_errors_instead_of_dangling() {
    Runtime::run_with(2, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 16);
        let sec = win.shared_query(w.rank() ^ 1).unwrap();
        win.free().unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(sec.load(0, &mut buf).unwrap_err(), MpiError::WinFreed);
        assert_eq!(sec.store(0, &buf).unwrap_err(), MpiError::WinFreed);
    });
}

#[test]
fn rma_path_still_works_on_shared_backed_windows() {
    // Inter-node pairs (and anyone who prefers RMA) use the ordinary
    // put/get path on the same window; bytes land in the same slab the
    // node peers read by load/store.
    Runtime::run_with(4, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 8);
        if w.rank() == 0 {
            let far = 2; // other node: RMA is the only route
            win.lock(LockMode::Exclusive, far).unwrap();
            win.put_bytes(&7u64.to_le_bytes(), far, 0).unwrap();
            win.unlock(far).unwrap();
        }
        w.barrier();
        if w.rank() == 3 {
            // Node peer of rank 2 observes the remotely-put bytes.
            let sec = win.shared_query(2).unwrap();
            let mut got = [0u8; 8];
            sec.load(0, &mut got).unwrap();
            assert_eq!(u64::from_le_bytes(got), 7);
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn shm_movers_respect_epochs_and_reach() {
    Runtime::run_with(4, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 32);
        let dt = Datatype::contiguous(8);
        if w.rank() == 0 {
            // No epoch → NoEpoch, same discipline as the wire path.
            assert_eq!(
                win.shm_put(&[1; 8], &dt, 1, 0, &dt).unwrap_err(),
                MpiError::NoEpoch { target: 1 }
            );
            // Remote node → ShmUnavailable even under an epoch.
            win.lock(LockMode::Exclusive, 2).unwrap();
            assert_eq!(
                win.shm_put(&[1; 8], &dt, 2, 0, &dt).unwrap_err(),
                MpiError::ShmUnavailable { target: 2 }
            );
            win.unlock(2).unwrap();

            // One op per exclusive epoch (§V-C discipline), each bracketed
            // by win_sync.
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.win_sync().unwrap();
            let cost = win.shm_put(&3.5f64.to_le_bytes(), &dt, 1, 0, &dt).unwrap();
            assert!(cost > 0.0);
            win.win_sync().unwrap();
            win.unlock(1).unwrap();

            win.lock(LockMode::Exclusive, 1).unwrap();
            win.win_sync().unwrap();
            win.shm_acc(
                &1.5f64.to_le_bytes(),
                &dt,
                1,
                0,
                &dt,
                ElemType::F64,
                AccOp::Sum,
            )
            .unwrap();
            win.win_sync().unwrap();
            win.unlock(1).unwrap();

            win.lock(LockMode::Exclusive, 1).unwrap();
            win.win_sync().unwrap();
            let mut back = [0u8; 8];
            win.shm_get(&mut back, &dt, 1, 0, &dt).unwrap();
            assert_eq!(f64::from_le_bytes(back), 5.0);
            win.win_sync().unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        if w.rank() == 1 {
            win.lock(LockMode::Shared, 1).unwrap();
            let v = win.with_local(|b| f64::from_le_bytes(b[..8].try_into().unwrap()));
            assert_eq!(v.unwrap(), 5.0);
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn win_sync_requires_an_open_epoch() {
    Runtime::run_with(2, quiet_nodes(2), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 8);
        assert!(matches!(
            win.win_sync().unwrap_err(),
            MpiError::NoEpoch { .. }
        ));
        win.lock_all().unwrap();
        win.win_sync().unwrap();
        win.unlock_all().unwrap();
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn rmw_lands_in_the_shared_slab_section() {
    // fetch_and_op goes through raw_mem, which must apply the section
    // offset inside the node slab — rank 1's cell, not rank 0's.
    Runtime::run_with(2, quiet_nodes(2), |p: &Proc| {
        use mpisim::mpi3::FetchOp;
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 16);
        if w.rank() == 0 {
            win.lock_all().unwrap();
            win.fetch_and_op_i64(41, 1, 8, FetchOp::Sum).unwrap();
            win.unlock_all().unwrap();
        }
        w.barrier();
        if w.rank() == 1 {
            let sec = win.shared_query(1).unwrap();
            let mut cell = [0u8; 8];
            sec.load(8, &mut cell).unwrap();
            assert_eq!(i64::from_le_bytes(cell), 41);
            // Rank 0's section must be untouched.
            let sec0 = win.shared_query(0).unwrap();
            sec0.load(8, &mut cell).unwrap();
            assert_eq!(i64::from_le_bytes(cell), 0);
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn shm_cost_tier_is_cheaper_than_wire() {
    // With clocks on, an intra-node shm transfer must cost strictly less
    // virtual time than the same transfer priced by the NIC model.
    let cfg = RuntimeConfig {
        charge_time: true,
        ..quiet_nodes(2)
    };
    Runtime::run_with(2, cfg, |p: &Proc| {
        let w = p.world();
        let win = WinHandle::allocate_shared(&w, 1 << 16);
        if w.rank() == 0 {
            let dt = Datatype::contiguous(1 << 16);
            let buf = vec![9u8; 1 << 16];
            win.lock(LockMode::Exclusive, 1).unwrap();
            let t0 = w.clock_now();
            let shm_cost = win.shm_put(&buf, &dt, 1, 0, &dt).unwrap();
            w.charge_time(shm_cost);
            let shm_elapsed = w.clock_now() - t0;
            win.unlock(1).unwrap();
            win.lock(LockMode::Exclusive, 1).unwrap();
            let t1 = w.clock_now();
            win.put(&buf, &dt, 1, 0, &dt).unwrap();
            let wire_elapsed = w.clock_now() - t1;
            assert!(
                shm_elapsed < wire_elapsed,
                "shm {shm_elapsed} !< wire {wire_elapsed}"
            );
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}
