//! Window-slot reuse: `WinHandle::free` returns the window id to a
//! free-list, so alloc/free cycles (common in GA codes that create and
//! destroy arrays per phase) do not grow the id space or the window
//! table.

use mpisim::{LockMode, Proc, Runtime, RuntimeConfig, WinHandle};
use std::collections::HashSet;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn freed_window_ids_are_reused() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let mut ids = HashSet::new();
        for _ in 0..16 {
            let win = WinHandle::create(&w, 256);
            ids.insert(win.id());
            win.free().unwrap();
        }
        // One window live at a time → every create after the first pops
        // the recycled slot instead of minting a fresh id.
        assert_eq!(ids.len(), 1, "window ids grew: {ids:?}");
    });
}

#[test]
fn recycled_window_is_fully_functional() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let first = WinHandle::create(&w, 64);
        let first_id = first.id();
        first.free().unwrap();
        let win = WinHandle::create(&w, 64);
        assert_eq!(win.id(), first_id);
        // The reused slot must behave like a fresh window.
        if w.rank() == 0 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[7u8; 8], 1, 8).unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        if w.rank() == 1 {
            win.lock(LockMode::Shared, 1).unwrap();
            win.with_local(|b| assert_eq!(&b[8..16], &[7u8; 8]))
                .unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn interleaved_windows_do_not_cross_free() {
    // A recycled id must never let a stale handle free the new window:
    // create A, free A, create B (reuses A's id) — freeing B again via a
    // second handle-drop path must leave only B's slot removed once.
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let a = WinHandle::create(&w, 32);
        let a_id = a.id();
        a.free().unwrap();
        let b = WinHandle::create(&w, 32);
        assert_eq!(b.id(), a_id);
        // B is alive and usable even though A (same id) was freed.
        if w.rank() == 0 {
            b.lock(LockMode::Exclusive, 0).unwrap();
            b.put_bytes(&[1u8; 4], 0, 0).unwrap();
            b.unlock(0).unwrap();
        }
        w.barrier();
        b.free().unwrap();
    });
}
