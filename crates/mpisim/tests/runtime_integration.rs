//! End-to-end tests of the simulated MPI runtime: p2p, collectives,
//! communicator creation, and passive-target RMA across real threads.

use mpisim::coll::ReduceOp;
use mpisim::mpi3::FetchOp;
use mpisim::{
    AccOp, Comm, Datatype, ElemType, LockMode, MpiError, Proc, RecvSrc, Runtime, RuntimeConfig,
    WinHandle, ANY_TAG,
};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------

#[test]
fn ring_pass() {
    Runtime::run_with(6, quiet(), |p: &Proc| {
        let w = p.world();
        let next = (w.rank() + 1) % w.size();
        let prev = (w.rank() + w.size() - 1) % w.size();
        w.send(next, 1, &[w.rank() as u8]);
        let (data, st) = w.recv(RecvSrc::Rank(prev), 1);
        assert_eq!(data, vec![prev as u8]);
        assert_eq!(st.source, prev);
    });
}

#[test]
fn wildcard_receive_collects_everyone() {
    Runtime::run_with(5, quiet(), |p: &Proc| {
        let w = p.world();
        if w.rank() == 0 {
            let mut seen = [false; 5];
            for _ in 1..5 {
                let (data, st) = w.recv(RecvSrc::Any, ANY_TAG);
                assert_eq!(data[0] as usize, st.source);
                seen[st.source] = true;
            }
            assert!(seen[1..].iter().all(|&b| b));
        } else {
            w.send(0, w.rank() as i32, &[w.rank() as u8]);
        }
    });
}

#[test]
fn messages_between_same_pair_are_ordered() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        if w.rank() == 0 {
            for i in 0..100u32 {
                w.send(1, 7, &i.to_le_bytes());
            }
        } else {
            for i in 0..100u32 {
                let (d, _) = w.recv(RecvSrc::Rank(0), 7);
                assert_eq!(u32::from_le_bytes(d.try_into().unwrap()), i);
            }
        }
    });
}

#[test]
fn virtual_time_send_recv_ordering() {
    // Receiver cannot observe a message before it was (virtually) sent.
    Runtime::run(2, |p: &Proc| {
        let w = p.world();
        if w.rank() == 0 {
            p.compute(5.0);
            w.send(1, 0, &[1u8; 1024]);
        } else {
            let (_, _) = w.recv(RecvSrc::Rank(0), 0);
            assert!(p.clock().now() >= 5.0, "recv at {}", p.clock().now());
        }
    });
}

// ---------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------

#[test]
fn allgather_orders_by_rank() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let all = w.allgather_bytes(vec![w.rank() as u8 + 10]);
        assert_eq!(all, vec![vec![10], vec![11], vec![12], vec![13]]);
    });
}

#[test]
fn bcast_from_nonzero_root() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let payload = if w.rank() == 2 {
            Some(vec![42u8, 43])
        } else {
            None
        };
        assert_eq!(w.bcast_bytes(2, payload), vec![42, 43]);
    });
}

#[test]
fn allreduce_sum_and_max() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let r = w.rank() as f64;
        assert_eq!(w.allreduce_f64(ReduceOp::Sum, &[r, 1.0]), vec![6.0, 4.0]);
        assert_eq!(w.allreduce_i64(ReduceOp::Max, &[w.rank() as i64]), vec![3]);
    });
}

#[test]
fn maxloc_elects_lowest_winner() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        // ranks 1 and 3 tie with value 5
        let v = if w.rank() % 2 == 1 { 5 } else { 0 };
        assert_eq!(w.maxloc_i64(v), (5, 1));
    });
}

#[test]
fn alltoallv_routes_blocks() {
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let w = p.world();
        let send: Vec<Vec<u8>> = (0..3)
            .map(|d| vec![(w.rank() * 10 + d) as u8; d + 1])
            .collect();
        let recv = w.alltoallv_bytes(send);
        for (s, block) in recv.iter().enumerate() {
            assert_eq!(block, &vec![(s * 10 + w.rank()) as u8; w.rank() + 1]);
        }
    });
}

#[test]
fn barrier_synchronises_clocks() {
    Runtime::run(3, |p: &Proc| {
        let w = p.world();
        p.compute(p.rank() as f64);
        w.barrier();
        assert!(p.clock().now() >= 2.0);
    });
}

#[test]
fn collectives_stress_many_rounds() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        for round in 0..200i64 {
            let s = w.allreduce_i64(ReduceOp::Sum, &[round + p.rank() as i64])[0];
            assert_eq!(s, 4 * round + 6);
        }
    });
}

// ---------------------------------------------------------------------
// Communicator creation
// ---------------------------------------------------------------------

#[test]
fn dup_is_independent_context() {
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let w = p.world();
        let d = w.dup();
        assert_ne!(d.id(), w.id());
        assert_eq!(d.rank(), w.rank());
        assert_eq!(d.size(), w.size());
        // message sent on dup is invisible on world
        if d.rank() == 0 {
            d.send(1, 5, b"dup");
        }
        if d.rank() == 1 {
            assert!(
                w.iprobe(RecvSrc::Any, ANY_TAG).is_none() || {
                    // it may not have arrived yet; wait on the right comm:
                    true
                }
            );
            let (data, _) = d.recv(RecvSrc::Rank(0), 5);
            assert_eq!(data, b"dup");
        }
    });
}

#[test]
fn split_by_parity_with_key_reversal() {
    Runtime::run_with(6, quiet(), |p: &Proc| {
        let w = p.world();
        let color = (w.rank() % 2) as i64;
        // reverse order within each group
        let key = -(w.rank() as i64);
        let sub = w.split(color, key).expect("member");
        assert_eq!(sub.size(), 3);
        // Highest world rank got key smallest -> comm rank 0.
        let expect_rank0_world = if color == 0 { 4 } else { 5 };
        assert_eq!(sub.world_rank_of(0), expect_rank0_world);
        // group collective works
        let sum = sub.allreduce_i64(ReduceOp::Sum, &[w.rank() as i64])[0];
        let expect: i64 = if color == 0 { 2 + 4 } else { 1 + 3 + 5 };
        assert_eq!(sum, expect);
    });
}

#[test]
fn split_undefined_color_returns_none() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let res = w.split(if w.rank() == 0 { -1 } else { 0 }, 0);
        if w.rank() == 0 {
            assert!(res.is_none());
        } else {
            let c = res.expect("member");
            assert_eq!(c.size(), 3);
        }
    });
}

#[test]
fn noncollective_creation_only_members_participate() {
    Runtime::run_with(6, quiet(), |p: &Proc| {
        let w = p.world();
        let members = [1usize, 3, 4];
        if members.contains(&w.rank()) {
            let g: Comm = w.create_noncollective(&members);
            assert_eq!(g.size(), 3);
            let my = members.iter().position(|&m| m == w.rank()).unwrap();
            assert_eq!(g.rank(), my);
            // the group is fully functional for collectives
            let s = g.allreduce_i64(ReduceOp::Sum, &[w.rank() as i64])[0];
            assert_eq!(s, 8);
        }
        // non-members do nothing — must not deadlock
    });
}

#[test]
fn nested_subgroups() {
    Runtime::run_with(8, quiet(), |p: &Proc| {
        let w = p.world();
        let half = w.split((w.rank() / 4) as i64, w.rank() as i64).unwrap();
        assert_eq!(half.size(), 4);
        let quarter = half.split((half.rank() / 2) as i64, 0).unwrap();
        assert_eq!(quarter.size(), 2);
        let s = quarter.allreduce_i64(ReduceOp::Sum, &[1])[0];
        assert_eq!(s, 2);
    });
}

// ---------------------------------------------------------------------
// RMA
// ---------------------------------------------------------------------

fn with_win<R: Send>(
    n: usize,
    size: usize,
    f: impl Fn(&Proc, &WinHandle) -> R + Send + Sync,
) -> Vec<R> {
    Runtime::run_with(n, quiet(), move |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, size);
        let r = f(p, &win);
        w.barrier();
        win.free().unwrap();
        r
    })
}

#[test]
fn put_then_get_roundtrip() {
    with_win(2, 64, |p, win| {
        let w = win.comm().clone();
        if p.rank() == 0 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[7u8; 16], 1, 8).unwrap();
            win.unlock(1).unwrap();
            w.barrier();
        } else {
            w.barrier();
            win.lock(LockMode::Exclusive, 1).unwrap();
            let local = win.with_local(|b| b.to_vec()).unwrap();
            win.unlock(1).unwrap();
            assert_eq!(&local[8..24], &[7u8; 16]);
            assert_eq!(&local[..8], &[0u8; 8]);
        }
    });
}

#[test]
fn get_reads_remote_window() {
    with_win(2, 32, |p, win| {
        let w = win.comm().clone();
        if p.rank() == 1 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.with_local_mut(|b| b.iter_mut().enumerate().for_each(|(i, x)| *x = i as u8))
                .unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        if p.rank() == 0 {
            let mut buf = vec![0u8; 8];
            win.lock(LockMode::Shared, 1).unwrap();
            win.get_bytes(&mut buf, 1, 4).unwrap();
            win.unlock(1).unwrap();
            assert_eq!(buf, vec![4, 5, 6, 7, 8, 9, 10, 11]);
        }
    });
}

#[test]
fn accumulate_sums_from_all_ranks() {
    let n = 4;
    with_win(n, 8 * 4, |p, win| {
        let w = win.comm().clone();
        let contrib: Vec<u8> = (0..4)
            .flat_map(|i| ((p.rank() + i) as f64).to_le_bytes())
            .collect();
        win.lock(LockMode::Exclusive, 0).unwrap();
        win.accumulate(
            &contrib,
            &Datatype::contiguous(32),
            0,
            0,
            &Datatype::contiguous(32),
            ElemType::F64,
            AccOp::Sum,
        )
        .unwrap();
        win.unlock(0).unwrap();
        w.barrier();
        if p.rank() == 0 {
            win.lock(LockMode::Exclusive, 0).unwrap();
            let vals = win
                .with_local(|b| {
                    b.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect::<Vec<_>>()
                })
                .unwrap();
            win.unlock(0).unwrap();
            // sum over ranks r of (r + i) = 6 + 4i
            for (i, v) in vals.iter().enumerate().take(4) {
                assert_eq!(*v, 6.0 + 4.0 * i as f64);
            }
        }
    });
}

#[test]
fn strided_put_with_subarray_datatype() {
    with_win(2, 6 * 8, |p, win| {
        let w = win.comm().clone();
        if p.rank() == 0 {
            // target is a 6-byte-wide "array" × 8 rows: write a 3x4 patch at (1,2)
            let tdt = Datatype::subarray(&[8, 6], &[3, 4], &[1, 2], 1).unwrap();
            let src: Vec<u8> = (1..=12).collect();
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put(&src, &Datatype::contiguous(12), 1, 0, &tdt)
                .unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        if p.rank() == 1 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            let local = win.with_local(|b| b.to_vec()).unwrap();
            win.unlock(1).unwrap();
            let mut expect = vec![0u8; 48];
            for r in 0..3 {
                for c in 0..4 {
                    expect[(1 + r) * 6 + 2 + c] = (r * 4 + c + 1) as u8;
                }
            }
            assert_eq!(local, expect);
        }
    });
}

#[test]
fn conflicting_puts_in_one_epoch_detected() {
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 64);
        if p.rank() == 0 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[1u8; 16], 1, 0).unwrap();
            let err = win.put_bytes(&[2u8; 16], 1, 8).unwrap_err();
            assert!(matches!(err, MpiError::ConflictingAccess { .. }), "{err}");
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn nonconflicting_ops_in_one_epoch_allowed() {
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 64);
        if p.rank() == 0 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[1u8; 8], 1, 0).unwrap();
            win.put_bytes(&[2u8; 8], 1, 8).unwrap();
            let mut buf = [0u8; 8];
            win.get_bytes(&mut buf, 1, 32).unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn overlapping_gets_are_fine_overlapping_acc_same_op_fine() {
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 64);
        if p.rank() == 0 {
            let mut a = [0u8; 16];
            win.lock(LockMode::Shared, 1).unwrap();
            win.get_bytes(&mut a, 1, 0).unwrap();
            win.get_bytes(&mut a, 1, 8).unwrap();
            win.unlock(1).unwrap();

            let x = [0u8; 16];
            win.lock(LockMode::Exclusive, 1).unwrap();
            let dt = Datatype::contiguous(16);
            win.accumulate(&x, &dt, 1, 0, &dt, ElemType::F64, AccOp::Sum)
                .unwrap();
            win.accumulate(&x, &dt, 1, 8, &dt, ElemType::F64, AccOp::Sum)
                .unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn rma_outside_epoch_rejected() {
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        if p.rank() == 0 {
            let err = win.put_bytes(&[1u8; 4], 1, 0).unwrap_err();
            assert!(matches!(err, MpiError::NoEpoch { target: 1 }));
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn double_lock_rejected() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        if p.rank() == 0 {
            win.lock(LockMode::Shared, 1).unwrap();
            let err = win.lock(LockMode::Shared, 1).unwrap_err();
            assert!(matches!(err, MpiError::AlreadyLocked { target: 1 }));
            win.unlock(1).unwrap();
            let err = win.unlock(1).unwrap_err();
            assert!(matches!(err, MpiError::NotLocked { target: 1 }));
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn out_of_bounds_rejected() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        if p.rank() == 0 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            let err = win.put_bytes(&[0u8; 8], 1, 12).unwrap_err();
            assert!(matches!(err, MpiError::OutOfBounds { .. }));
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn local_mut_requires_exclusive() {
    Runtime::run_with(1, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        assert!(win.with_local_mut(|_| ()).is_err());
        win.lock(LockMode::Shared, 0).unwrap();
        assert!(win.with_local(|_| ()).is_ok());
        assert!(win.with_local_mut(|_| ()).is_err());
        win.unlock(0).unwrap();
        win.lock(LockMode::Exclusive, 0).unwrap();
        assert!(win.with_local_mut(|b| b[0] = 9).is_ok());
        win.unlock(0).unwrap();
        let _ = p;
        win.free().unwrap();
    });
}

#[test]
fn zero_size_window_slices_allowed() {
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let w = p.world();
        // only rank 1 contributes memory
        let size = if p.rank() == 1 { 32 } else { 0 };
        let win = WinHandle::create(&w, size);
        assert_eq!(win.size_of(0), 0);
        assert_eq!(win.size_of(1), 32);
        if p.rank() == 2 {
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[5u8; 4], 1, 0).unwrap();
            win.unlock(1).unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn exclusive_epochs_serialize_concurrent_increments() {
    // Classic lost-update check: every rank does read-modify-write on the
    // same counter under an exclusive epoch; no update may be lost.
    let n = 8;
    let iters = 50;
    let cfg = RuntimeConfig {
        charge_time: false,
        semantic_checks: false, // the get+put pair below is exactly the
        // pattern MPI-2 forbids in one epoch (§V-D motivates mutexes);
        // disable the checker to demonstrate the exclusive lock's atomicity.
        ..Default::default()
    };
    Runtime::run_with(n, cfg, move |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 8);
        for _ in 0..iters {
            win.lock(LockMode::Exclusive, 0).unwrap();
            let mut buf = [0u8; 8];
            win.get_bytes(&mut buf, 0, 0).unwrap();
            let v = u64::from_le_bytes(buf) + 1;
            // get+put overlap would be flagged within one epoch with
            // checks on; the quiet() config disables checks, and the
            // exclusive lock makes the pair atomic anyway. This mirrors
            // why MPI-2 RMW needs mutexes (§V-D) — we model the "cheat"
            // that a correct implementation cannot use.
            win.put_bytes(&v.to_le_bytes(), 0, 0).unwrap();
            win.unlock(0).unwrap();
        }
        w.barrier();
        let total = if p.rank() == 0 {
            win.lock(LockMode::Shared, 0).unwrap();
            let mut buf = [0u8; 8];
            win.get_bytes(&mut buf, 0, 0).unwrap();
            win.unlock(0).unwrap();
            u64::from_le_bytes(buf)
        } else {
            0
        };
        w.barrier();
        win.free().unwrap();
        if p.rank() == 0 {
            assert_eq!(total, (n * iters) as u64);
        }
    });
}

#[test]
fn window_use_after_free_fails() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        let win2 = WinHandle::create(&w, 16);
        w.barrier();
        win2.free().unwrap();
        // win still OK
        win.lock(LockMode::Shared, 0).unwrap();
        win.unlock(0).unwrap();
        w.barrier();
        win.free().unwrap();
        let _ = p;
    });
}

// ---------------------------------------------------------------------
// MPI-3 extensions
// ---------------------------------------------------------------------

#[test]
fn fetch_and_op_is_atomic_under_contention() {
    let n = 8;
    let iters = 200;
    let results = Runtime::run_with(n, quiet(), move |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 8);
        win.lock_all().unwrap();
        let mut fetched = Vec::with_capacity(iters);
        for _ in 0..iters {
            fetched.push(win.fetch_and_op_i64(1, 0, 0, FetchOp::Sum).unwrap());
        }
        win.unlock_all().unwrap();
        w.barrier();
        let final_val = if p.rank() == 0 {
            win.lock(LockMode::Shared, 0).unwrap();
            let mut b = [0u8; 8];
            win.get_bytes(&mut b, 0, 0).unwrap();
            win.unlock(0).unwrap();
            i64::from_le_bytes(b)
        } else {
            -1
        };
        w.barrier();
        win.free().unwrap();
        (fetched, final_val)
    });
    // Final value = total increments; every fetched value unique.
    let mut all: Vec<i64> = results.iter().flat_map(|(f, _)| f.clone()).collect();
    all.sort_unstable();
    let expect: Vec<i64> = (0..(n * iters) as i64).collect();
    assert_eq!(
        all, expect,
        "fetch_and_op returned duplicate/missing values"
    );
    assert_eq!(results[0].1, (n * iters) as i64);
}

#[test]
fn compare_and_swap_spinlock() {
    let n = 4;
    Runtime::run_with(n, quiet(), move |p: &Proc| {
        let w = p.world();
        // word 0: lock; words 1: protected counter
        let win = WinHandle::create(&w, 16);
        win.lock_all().unwrap();
        for _ in 0..25 {
            // acquire
            while win.compare_and_swap_i64(0, 1, 0, 0).unwrap() != 0 {
                std::hint::spin_loop();
            }
            let v = win.fetch_and_op_i64(0, 0, 8, FetchOp::NoOp).unwrap();
            win.fetch_and_op_i64(v + 1, 0, 8, FetchOp::Replace).unwrap();
            // release
            win.fetch_and_op_i64(0, 0, 0, FetchOp::Replace).unwrap();
        }
        win.unlock_all().unwrap();
        w.barrier();
        if p.rank() == 0 {
            win.lock(LockMode::Shared, 0).unwrap();
            let mut b = [0u8; 8];
            win.get_bytes(&mut b, 0, 8).unwrap();
            win.unlock(0).unwrap();
            assert_eq!(i64::from_le_bytes(b), (n * 25) as i64);
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn lock_all_conflicts_with_per_target_locks() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        if p.rank() == 0 {
            win.lock(LockMode::Shared, 0).unwrap();
            assert!(matches!(
                win.lock_all(),
                Err(MpiError::EpochModeMixed { .. })
            ));
            win.unlock(0).unwrap();
            win.lock_all().unwrap();
            assert!(matches!(
                win.lock(LockMode::Shared, 1),
                Err(MpiError::EpochModeMixed { .. })
            ));
            win.unlock_all().unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn rput_rget_complete_via_wait() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 32);
        if p.rank() == 0 {
            let dt = Datatype::contiguous(8);
            win.lock_all().unwrap();
            let req = win.rput(&[9u8; 8], &dt, 1, 0, &dt).unwrap();
            req.wait(&win);
            win.flush(1).unwrap();
            let mut buf = [0u8; 8];
            let req = win.rget(&mut buf, &dt.clone(), 1, 0, &dt).unwrap();
            req.wait(&win);
            assert_eq!(buf, [9u8; 8]);
            win.unlock_all().unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn lock_all_permits_conflicts_without_error() {
    // MPI-3: conflicting accesses are undefined, not erroneous — the
    // checker must not fire under lock_all.
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        if p.rank() == 0 {
            win.lock_all().unwrap();
            win.put_bytes(&[1u8; 8], 1, 0).unwrap();
            win.put_bytes(&[2u8; 8], 1, 4).unwrap(); // overlapping: allowed
            win.unlock_all().unwrap();
        }
        w.barrier();
        win.free().unwrap();
    });
}

// ---------------------------------------------------------------------
// Virtual-time sanity
// ---------------------------------------------------------------------

#[test]
fn bigger_transfers_cost_more_virtual_time() {
    let times = Runtime::run(2, |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 1 << 20);
        let mut small_t = 0.0;
        let mut big_t = 0.0;
        if p.rank() == 0 {
            let t0 = p.clock().now();
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&[0u8; 64], 1, 0).unwrap();
            win.unlock(1).unwrap();
            small_t = p.clock().now() - t0;
            let t1 = p.clock().now();
            win.lock(LockMode::Exclusive, 1).unwrap();
            win.put_bytes(&vec![0u8; 1 << 20], 1, 0).unwrap();
            win.unlock(1).unwrap();
            big_t = p.clock().now() - t1;
        }
        w.barrier();
        win.free().unwrap();
        (small_t, big_t)
    });
    let (small, big) = times[0];
    assert!(big > 10.0 * small, "big {big} small {small}");
}
