//! Property tests for the datatype engine: subarray flattening against a
//! brute-force element enumeration, and zip/copy semantics through a real
//! window.

use mpisim::dtype::zip_segments;
use mpisim::{Datatype, LockMode, Runtime, RuntimeConfig, WinHandle};
use proptest::prelude::*;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

/// Strategy: a random subarray shape of rank 1–3 with small extents.
fn arb_subarray() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>, usize)> {
    (1usize..4).prop_flat_map(|rank| {
        let dims = proptest::collection::vec((1usize..6, 0usize..5, 1usize..6), rank);
        (dims, 1usize..5).prop_map(|(specs, elem)| {
            let mut sizes = Vec::new();
            let mut starts = Vec::new();
            let mut subsizes = Vec::new();
            for (sub, start, pad) in specs {
                subsizes.push(sub);
                starts.push(start);
                sizes.push(sub + start + pad);
            }
            (sizes, subsizes, starts, elem)
        })
    })
}

/// Brute-force byte enumeration of a subarray selection, in row-major
/// element order.
fn brute_force_bytes(
    sizes: &[usize],
    subsizes: &[usize],
    starts: &[usize],
    elem: usize,
) -> Vec<usize> {
    let n = sizes.len();
    let mut strides = vec![0usize; n];
    let mut acc = elem;
    for d in (0..n).rev() {
        strides[d] = acc;
        acc *= sizes[d];
    }
    let mut out = Vec::new();
    let mut idx = vec![0usize; n];
    loop {
        let base: usize = (0..n).map(|d| (starts[d] + idx[d]) * strides[d]).sum();
        for b in 0..elem {
            out.push(base + b);
        }
        // odometer increment over subsizes
        let mut d = n;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < subsizes[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `segments()` selects exactly the bytes of the brute-force
    /// enumeration, in order.
    #[test]
    fn subarray_segments_match_bruteforce(
        (sizes, subsizes, starts, elem) in arb_subarray()
    ) {
        let dt = Datatype::subarray(&sizes, &subsizes, &starts, elem).unwrap();
        let mut from_segments = Vec::new();
        for (off, len) in dt.segments() {
            from_segments.extend(off..off + len);
        }
        let brute = brute_force_bytes(&sizes, &subsizes, &starts, elem);
        prop_assert_eq!(from_segments, brute);
        prop_assert_eq!(dt.size(), subsizes.iter().product::<usize>() * elem);
    }

    /// `extent()` is exactly one past the last selected byte.
    #[test]
    fn subarray_extent_is_tight(
        (sizes, subsizes, starts, elem) in arb_subarray()
    ) {
        let dt = Datatype::subarray(&sizes, &subsizes, &starts, elem).unwrap();
        let brute = brute_force_bytes(&sizes, &subsizes, &starts, elem);
        prop_assert_eq!(dt.extent(), brute.iter().max().unwrap() + 1);
    }

    /// zip pairing preserves byte order: copying through any two types of
    /// equal size is equivalent to gathering the source bytes and
    /// scattering them into the target positions.
    #[test]
    fn zip_is_order_preserving(
        (sizes, subsizes, starts, elem) in arb_subarray()
    ) {
        let a = Datatype::subarray(&sizes, &subsizes, &starts, elem).unwrap();
        let b = Datatype::contiguous(a.size());
        let pairs = zip_segments(&a, &b).unwrap();
        // target offsets must be 0..size in order; source offsets must be
        // the brute-force selection in order
        let mut covered = 0usize;
        let mut src_bytes = Vec::new();
        for (aoff, boff, len) in pairs {
            prop_assert_eq!(boff, covered);
            covered += len;
            src_bytes.extend(aoff..aoff + len);
        }
        prop_assert_eq!(covered, a.size());
        prop_assert_eq!(src_bytes, brute_force_bytes(&sizes, &subsizes, &starts, elem));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random put/get through real windows with subarray target types
    /// round-trips exactly.
    #[test]
    fn window_subarray_roundtrip(
        (sizes, subsizes, starts, elem) in arb_subarray(),
        seed in 0u64..1000
    ) {
        let dt = Datatype::subarray(&sizes, &subsizes, &starts, elem).unwrap();
        let total = dt.size();
        let win_size = dt.extent();
        prop_assume!(total > 0);
        Runtime::run_with(2, quiet(), move |p| {
            let w = p.world();
            let win = WinHandle::create(&w, win_size);
            if p.rank() == 0 {
                let src: Vec<u8> = (0..total).map(|i| ((i as u64 * 31 + seed) % 251) as u8).collect();
                let cdt = Datatype::contiguous(total);
                win.lock(LockMode::Exclusive, 1).unwrap();
                win.put(&src, &cdt, 1, 0, &dt).unwrap();
                win.unlock(1).unwrap();
                let mut back = vec![0u8; total];
                win.lock(LockMode::Shared, 1).unwrap();
                win.get(&mut back, &cdt, 1, 0, &dt).unwrap();
                win.unlock(1).unwrap();
                assert_eq!(back, src);
            }
            w.barrier();
            win.free().unwrap();
        });
    }
}
