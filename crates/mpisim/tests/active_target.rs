//! Active-target (fence) RMA tests — the §III "active mode" the paper
//! rejects for ARMCI because of its all-party synchronisation.

use mpisim::{Datatype, LockMode, MpiError, Proc, Runtime, RuntimeConfig, WinHandle};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn fence_put_fence_read() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 32);
        win.fence().unwrap();
        // everyone puts its rank into the right neighbour
        let next = (p.rank() + 1) % 4;
        win.put_bytes(&[p.rank() as u8; 4], next, 0).unwrap();
        win.fence().unwrap();
        // after the fence, everyone's slice holds its left neighbour's id
        let prev = (p.rank() + 3) % 4;
        let mut buf = [0u8; 4];
        win.get_bytes(&mut buf, p.rank(), 0).unwrap();
        win.fence_end().unwrap();
        assert_eq!(buf, [prev as u8; 4]);
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn bulk_synchronous_halo_exchange() {
    // The classic active-target usage: alternating compute/exchange.
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 8);
        win.fence().unwrap();
        for step in 0..10u8 {
            let next = (p.rank() + 1) % 3;
            win.put_bytes(&[step + p.rank() as u8], next, 0).unwrap();
            win.fence().unwrap();
            let mut b = [0u8; 1];
            win.get_bytes(&mut b, p.rank(), 0).unwrap();
            let prev = (p.rank() + 2) % 3;
            assert_eq!(b[0], step + prev as u8);
            win.fence().unwrap();
        }
        win.fence_end().unwrap();
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn mixing_fence_and_lock_rejected() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 16);
        // lock then fence: rejected
        if p.rank() == 0 {
            win.lock(LockMode::Shared, 0).unwrap();
            assert!(matches!(win.fence(), Err(MpiError::EpochModeMixed { .. })));
            win.unlock(0).unwrap();
        }
        w.barrier();
        // fence then... ops fine, fence_end required before free
        win.fence().unwrap();
        win.put_bytes(&[1], p.rank(), 8).unwrap();
        win.fence_end().unwrap();
        // fence_end without fence: rejected
        assert!(matches!(win.fence_end(), Err(MpiError::NoEpoch { .. })));
        w.barrier();
        win.free().unwrap();
    });
}

#[test]
fn datatype_ops_work_in_active_epochs() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let w = p.world();
        let win = WinHandle::create(&w, 64);
        win.fence().unwrap();
        if p.rank() == 0 {
            let tdt = Datatype::Vector {
                count: 4,
                blocklen: 4,
                stride: 16,
            };
            win.put(&[9u8; 16], &Datatype::contiguous(16), 1, 0, &tdt)
                .unwrap();
        }
        win.fence().unwrap();
        if p.rank() == 1 {
            let mut buf = [0u8; 64];
            win.get_bytes(&mut buf, 1, 0).unwrap();
            for i in 0..4 {
                assert_eq!(&buf[i * 16..i * 16 + 4], &[9u8; 4]);
                assert_eq!(&buf[i * 16 + 4..i * 16 + 16], &[0u8; 12]);
            }
        }
        win.fence_end().unwrap();
        w.barrier();
        win.free().unwrap();
    });
}
