//! Tests of the data-server ARMCI, including the three-way backend
//! comparison the paper's §IX implies.

use armci::{Armci, ArmciExt, RmwOp};
use armci_ds::{run_with_servers, ArmciDs};
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, CcsdConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn put_get_roundtrip() {
    run_with_servers(3, quiet(), |p: &Proc, rt: &ArmciDs| {
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if rt.rank() == 0 {
            rt.put_f64s(&[1.5, 2.5], bases[2]).unwrap();
            // location consistency through the FIFO channel
            assert_eq!(rt.get_f64s(bases[2], 2).unwrap(), vec![1.5, 2.5]);
        }
        rt.barrier();
        if rt.rank() == 2 {
            assert_eq!(rt.get_f64s(bases[2], 2).unwrap(), vec![1.5, 2.5]);
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
        let _ = p;
    });
}

#[test]
fn accumulate_and_rmw() {
    let n = 4;
    run_with_servers(n, quiet(), move |_p, rt| {
        let bases = rt.malloc(32).unwrap();
        rt.barrier();
        rt.acc_f64s(2.0, &[1.0, 2.0], bases[0]).unwrap();
        rt.fence(0).unwrap();
        rt.barrier();
        if rt.rank() == 0 {
            let v = rt.get_f64s(bases[0], 2).unwrap();
            assert_eq!(v, vec![2.0 * n as f64, 4.0 * n as f64]);
        }
        rt.barrier();
        // nxtval on the server
        let t = rt.rmw(RmwOp::FetchAdd(1), bases[1].offset(16)).unwrap();
        assert!(t < n as i64);
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
    });
}

#[test]
fn rmw_tickets_unique() {
    let n = 4;
    let iters = 25;
    let all = run_with_servers(n, quiet(), move |_p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let mut got = Vec::new();
        for _ in 0..iters {
            got.push(rt.fetch_add(bases[0], 1).unwrap());
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
        got
    });
    let mut tickets: Vec<i64> = all.into_iter().flatten().collect();
    tickets.sort_unstable();
    assert_eq!(tickets, (0..(n * iters) as i64).collect::<Vec<_>>());
}

#[test]
fn strided_roundtrip() {
    run_with_servers(2, quiet(), |_p, rt| {
        let bases = rt.malloc(8 * 24).unwrap();
        rt.barrier();
        if rt.rank() == 0 {
            let local: Vec<u8> = (0..128u8).collect();
            rt.put_strided(&local, &[16], bases[1], &[24], &[16, 8])
                .unwrap();
            let mut back = vec![0u8; 128];
            rt.get_strided(bases[1], &[24], &mut back, &[16], &[16, 8])
                .unwrap();
            assert_eq!(back, local);
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
    });
}

#[test]
fn server_mutexes_protect_counter() {
    let n = 4;
    let iters = 15;
    run_with_servers(n, quiet(), move |_p, rt| {
        let bases = rt.malloc(8).unwrap();
        let h = rt.create_mutexes(1).unwrap();
        rt.barrier();
        for _ in 0..iters {
            rt.lock_mutex(h, 0, 0).unwrap();
            let v = rt.get_f64s(bases[0], 1).unwrap()[0];
            rt.put_f64s(&[v + 1.0], bases[0]).unwrap();
            rt.fence(0).unwrap();
            rt.unlock_mutex(h, 0, 0).unwrap();
        }
        rt.barrier();
        assert_eq!(rt.get_f64s(bases[0], 1).unwrap()[0], (n * iters) as f64);
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
        rt.free(bases[rt.rank()]).unwrap();
    });
}

#[test]
fn dla_is_emulated_via_roundtrips() {
    run_with_servers(2, quiet(), |_p, rt| {
        let bases = rt.malloc(16).unwrap();
        rt.barrier();
        let me = rt.rank();
        rt.access_mut(bases[me], 16, &mut |b| b.fill(me as u8 + 1))
            .unwrap();
        rt.access(bases[me], 4, &mut |b| assert_eq!(b[0], me as u8 + 1))
            .unwrap();
        rt.barrier();
        let peer = 1 - me;
        let mut buf = [0u8; 4];
        rt.get(bases[peer], &mut buf).unwrap();
        assert_eq!(buf[0], peer as u8 + 1);
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
    });
}

#[test]
fn full_ga_stack_runs_on_data_servers() {
    run_with_servers(3, quiet(), |_p, rt| {
        let a = GlobalArray::create(rt, "ds", GaType::F64, &[9, 9]).unwrap();
        a.fill(1.0).unwrap();
        a.acc_patch(0.5, &[2, 2], &[7, 7], &[2.0; 25]).unwrap();
        a.sync();
        let v = a.get_patch(&[4, 4], &[5, 5]).unwrap()[0];
        assert_eq!(v, 1.0 + 3.0 * 0.5 * 2.0);
        assert_eq!(a.dot(&a).unwrap(), {
            let inner = (1.0f64 + 3.0).powi(2) * 25.0;
            inner + (81.0 - 25.0)
        });
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn ccsd_proxy_energy_matches_rma_backends() {
    let cfg = CcsdConfig::tiny();
    let e_ds = run_with_servers(3, quiet(), move |p, rt| run_ccsd(p, rt, &cfg).energy)[0];
    let e_rma = Runtime::run_with(3, quiet(), move |p| {
        let rt = armci_mpi::ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg).energy
    })[0];
    assert_eq!(e_ds, e_rma);
}

#[test]
fn data_server_slower_than_rma_for_gets() {
    // §IX: the data-server design pays two-sided overheads on every
    // access; one-sided RMA beats it for bandwidth-bound gets.
    let size = 1 << 20;
    let t_ds = run_with_servers(2, RuntimeConfig::default(), move |p, rt| {
        let bases = rt.malloc(size).unwrap();
        rt.barrier();
        let mut t = 0.0;
        if rt.rank() == 0 {
            let mut buf = vec![0u8; size];
            let t0 = p.clock().now();
            for _ in 0..4 {
                rt.get(bases[1], &mut buf).unwrap();
            }
            t = p.clock().now() - t0;
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
        t
    })[0];
    let t_rma = Runtime::run(2, move |p| {
        let rt = armci_mpi::ArmciMpi::new(p);
        let bases = rt.malloc(size).unwrap();
        rt.barrier();
        let mut t = 0.0;
        if rt.rank() == 0 {
            let mut buf = vec![0u8; size];
            let t0 = p.clock().now();
            for _ in 0..4 {
                rt.get(bases[1], &mut buf).unwrap();
            }
            t = p.clock().now() - t0;
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
        t
    })[0];
    assert!(
        t_ds > t_rma,
        "data server ({t_ds}s) should be slower than RMA ({t_rma}s)"
    );
}
