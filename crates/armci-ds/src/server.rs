//! The data-server event loop.
//!
//! One server process per compute process: it owns that process's global
//! allocations and sits in a wildcard receive, servicing requests in
//! arrival order. Per-pair FIFO channels give the design its (location)
//! consistency; the single service loop is exactly the bottleneck the
//! paper's §IX calls out.

use crate::protocol::{code_kind, Reply, Request, TAG_REPLY, TAG_REQUEST};
use armci::stride::StridedIter;
use mpisim::{Comm, Proc, RecvSrc};
use std::collections::{HashMap, VecDeque};

struct MutexState {
    /// `held_by` per mutex: the compute rank holding it, if any.
    held: Vec<Option<usize>>,
    /// FIFO wait queues per mutex.
    queues: Vec<VecDeque<usize>>,
}

/// Runs the server loop for compute rank `world_rank - ncompute` until a
/// `Shutdown` request arrives.
pub fn serve(p: &Proc, world: &Comm, ncompute: usize) {
    let _ = ncompute;
    let mut allocs: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut mutexes: HashMap<usize, MutexState> = HashMap::new();
    // Model the server's per-request processing cost (tag matching,
    // dispatch) — a two-sided overhead of the design.
    let service_overhead = p.params().op_overhead;

    loop {
        let (bytes, status) = world.recv(RecvSrc::Any, TAG_REQUEST);
        let origin = status.source;
        p.compute(service_overhead);
        let reply = match Request::decode(&bytes) {
            Request::Shutdown => break,
            Request::Malloc { id, size } => {
                allocs.insert(id, vec![0u8; size]);
                Some(Reply::Ok)
            }
            Request::Free { id } => {
                allocs.remove(&id);
                Some(Reply::Ok)
            }
            Request::Get { id, off, len } => Some(match allocs.get(&id) {
                Some(mem) if off + len <= mem.len() => Reply::Data(mem[off..off + len].to_vec()),
                _ => Reply::Err(format!("bad get: alloc {id} off {off} len {len}")),
            }),
            Request::Put { id, off, data } => {
                if let Some(mem) = allocs.get_mut(&id) {
                    if off + data.len() <= mem.len() {
                        mem[off..off + data.len()].copy_from_slice(&data);
                    }
                }
                None // fire-and-forget
            }
            Request::Acc {
                id,
                off,
                elem,
                data,
            } => {
                if let Some(mem) = allocs.get_mut(&id) {
                    if off + data.len() <= mem.len() {
                        code_kind(elem)
                            .apply(&mut mem[off..off + data.len()], &data)
                            .expect("server-side combine");
                    }
                }
                None
            }
            Request::GetStrided {
                id,
                off,
                strides,
                count,
            } => Some(match allocs.get(&id) {
                Some(mem) => {
                    let seg = count[0];
                    let mut packed = Vec::with_capacity(count.iter().product::<usize>());
                    match StridedIter::new(&strides, &strides, &count) {
                        Ok(it) => {
                            for (disp, _) in it {
                                packed.extend_from_slice(&mem[off + disp..off + disp + seg]);
                            }
                            Reply::Data(packed)
                        }
                        Err(e) => Reply::Err(e.to_string()),
                    }
                }
                None => Reply::Err(format!("bad strided get: alloc {id}")),
            }),
            Request::PutStrided {
                id,
                off,
                strides,
                count,
                data,
            } => {
                if let Some(mem) = allocs.get_mut(&id) {
                    let seg = count[0];
                    if let Ok(it) = StridedIter::new(&strides, &strides, &count) {
                        for (i, (disp, _)) in it.enumerate() {
                            mem[off + disp..off + disp + seg]
                                .copy_from_slice(&data[i * seg..(i + 1) * seg]);
                        }
                    }
                }
                None
            }
            Request::AccStrided {
                id,
                off,
                strides,
                count,
                elem,
                data,
            } => {
                if let Some(mem) = allocs.get_mut(&id) {
                    let seg = count[0];
                    let kind = code_kind(elem);
                    if let Ok(it) = StridedIter::new(&strides, &strides, &count) {
                        for (i, (disp, _)) in it.enumerate() {
                            kind.apply(
                                &mut mem[off + disp..off + disp + seg],
                                &data[i * seg..(i + 1) * seg],
                            )
                            .expect("server-side combine");
                        }
                    }
                }
                None
            }
            Request::Rmw {
                id,
                off,
                code,
                operand,
            } => Some(match allocs.get_mut(&id) {
                Some(mem) if off + 8 <= mem.len() => {
                    let old = i64::from_le_bytes(mem[off..off + 8].try_into().unwrap());
                    let new = if code == 0 {
                        old.wrapping_add(operand)
                    } else {
                        operand
                    };
                    mem[off..off + 8].copy_from_slice(&new.to_le_bytes());
                    Reply::Value(old)
                }
                _ => Reply::Err(format!("bad rmw: alloc {id} off {off}")),
            }),
            Request::Fence => Some(Reply::Ok),
            Request::MutexCreate { handle, count } => {
                mutexes.insert(
                    handle,
                    MutexState {
                        held: vec![None; count],
                        queues: (0..count).map(|_| VecDeque::new()).collect(),
                    },
                );
                Some(Reply::Ok)
            }
            Request::MutexDestroy { handle } => {
                mutexes.remove(&handle);
                Some(Reply::Ok)
            }
            Request::MutexLock { handle, mutex } => {
                match mutexes.get_mut(&handle) {
                    Some(st) => {
                        if st.held[mutex].is_none() {
                            st.held[mutex] = Some(origin);
                            Some(Reply::Ok)
                        } else {
                            // defer the grant: enqueue, reply later
                            st.queues[mutex].push_back(origin);
                            None
                        }
                    }
                    None => Some(Reply::Err(format!("unknown mutex handle {handle}"))),
                }
            }
            Request::MutexUnlock { handle, mutex } => {
                match mutexes.get_mut(&handle) {
                    Some(st) => {
                        if st.held[mutex] != Some(origin) {
                            Some(Reply::Err(format!(
                                "unlock of mutex {mutex} not held by rank {origin}"
                            )))
                        } else if let Some(next) = st.queues[mutex].pop_front() {
                            // hand the mutex over and wake the waiter
                            st.held[mutex] = Some(next);
                            world.send(next, TAG_REPLY, &Reply::Ok.encode());
                            Some(Reply::Ok)
                        } else {
                            st.held[mutex] = None;
                            Some(Reply::Ok)
                        }
                    }
                    None => Some(Reply::Err(format!("unknown mutex handle {handle}"))),
                }
            }
        };
        if let Some(r) = reply {
            world.send(origin, TAG_REPLY, &r.encode());
        }
    }
}
