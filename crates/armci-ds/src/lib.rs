//! **ARMCI-DS** — ARMCI implemented over *two-sided* MPI messaging with
//! dedicated data-server processes.
//!
//! The paper's related-work section (§IX) describes this design — it had
//! shipped with ARMCI for years as the portable fallback: "a data server
//! process on each node … services requests to read from and write to
//! this data. However, this approach does not utilize MPI's one-sided
//! functionality and has several overheads, including consumption of a
//! core, bottlenecking on the data server, and two-sided messaging
//! overheads such as tag matching."
//!
//! This crate reproduces that design faithfully so the paper's comparison
//! can be made executable:
//!
//! * every *compute* process is paired with a *server* process that owns
//!   its global memory and loops on wildcard receives;
//! * all one-sided semantics are emulated with request/reply messages —
//!   even `ARMCI_Access` (direct local access) becomes a round trip,
//!   because the data lives in the server's address space;
//! * mutexes and RMW are serviced in the server's event loop (this is the
//!   CHT of native ports, promoted to a whole process);
//! * the **core consumption** overhead is structural: a job that would
//!   run on `2n` cores computes on only `n`.
//!
//! Use [`run_with_servers`] to launch: it spawns `2n` simulated processes,
//! runs the application closure on the `n` compute ranks, and runs server
//! loops on the other `n`.

mod protocol;
mod server;

use armci::{
    AccKind, AccessMode, Armci, ArmciError, ArmciGroup, ArmciResult, GlobalAddr, IovDesc, NbHandle,
    RmwOp,
};
use mpisim::{Comm, Proc, RecvSrc, Runtime, RuntimeConfig};
use protocol::{Reply, Request, TAG_REPLY, TAG_REQUEST};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

/// Launches an SPMD program on `ncompute` compute processes, each paired
/// with a data-server process (so `2·ncompute` simulated processes in
/// total). The closure receives the compute-rank [`Proc`] and a ready
/// [`ArmciDs`] handle.
///
/// ```
/// use armci::{Armci, ArmciExt};
/// use armci_ds::run_with_servers;
/// use mpisim::RuntimeConfig;
///
/// let cfg = RuntimeConfig { charge_time: false, ..Default::default() };
/// run_with_servers(2, cfg, |_p, rt| {
///     let bases = rt.malloc(64).unwrap();
///     rt.barrier();
///     if rt.rank() == 0 {
///         rt.put_f64s(&[3.5], bases[1]).unwrap();
///         assert_eq!(rt.get_f64s(bases[1], 1).unwrap(), vec![3.5]);
///     }
///     rt.barrier();
///     rt.free(bases[rt.rank()]).unwrap();
/// });
/// ```
pub fn run_with_servers<F, R>(ncompute: usize, cfg: RuntimeConfig, f: F) -> Vec<R>
where
    F: Fn(&Proc, &ArmciDs) -> R + Send + Sync,
    R: Send + Default,
{
    let results = Runtime::run_with(2 * ncompute, cfg, move |p| {
        let world = p.world();
        if p.rank() < ncompute {
            let rt = ArmciDs::new(p, ncompute);
            let r = f(p, &rt);
            rt.shutdown();
            Some(r)
        } else {
            server::serve(p, &world, ncompute);
            None
        }
    });
    results
        .into_iter()
        .take(ncompute)
        .map(|r| r.expect("compute rank result"))
        .collect()
}

/// Per-rank translation index: base address → (allocation id, size).
type AddrIndex = HashMap<usize, BTreeMap<usize, (u64, usize)>>;

/// Per-compute-process handle for the data-server ARMCI.
pub struct ArmciDs {
    world: Comm,
    ncompute: usize,
    /// Cached compute-ranks group (created once, collectively, at
    /// construction — all compute ranks build their handle together).
    compute_group: ArmciGroup,
    /// `(compute rank, base) → (allocation id, size)`.
    table: RefCell<AddrIndex>,
    /// Live allocation groups by id (needed for collective free).
    groups: RefCell<HashMap<u64, ArmciGroup>>,
    next_addr: Cell<usize>,
    next_mutex_handle: Cell<usize>,
    mutex_counts: RefCell<HashMap<usize, usize>>,
}

impl ArmciDs {
    /// Builds the handle (compute ranks only; `run_with_servers` does
    /// this for you).
    pub fn new(proc: &Proc, ncompute: usize) -> ArmciDs {
        assert!(proc.rank() < ncompute, "ArmciDs is for compute ranks");
        assert_eq!(
            proc.size(),
            2 * ncompute,
            "need one server per compute rank"
        );
        let world = proc.world();
        let members: Vec<usize> = (0..ncompute).collect();
        let compute_group = ArmciGroup::from_comm(world.create_noncollective(&members));
        ArmciDs {
            world,
            ncompute,
            compute_group,
            table: RefCell::new(HashMap::new()),
            groups: RefCell::new(HashMap::new()),
            next_addr: Cell::new(0x1000),
            next_mutex_handle: Cell::new(1),
            mutex_counts: RefCell::new(HashMap::new()),
        }
    }

    /// The server world-rank for compute rank `r`.
    fn server_of(&self, r: usize) -> usize {
        self.ncompute + r
    }

    /// The compute-only communicator view: ARMCI-DS addresses compute
    /// ranks; collective machinery runs on p2p + explicit leader logic.
    fn send_req(&self, target: usize, req: &Request) {
        self.world
            .send(self.server_of(target), TAG_REQUEST, &req.encode());
    }

    fn roundtrip(&self, target: usize, req: &Request) -> Reply {
        self.send_req(target, req);
        let (bytes, _) = self
            .world
            .recv(RecvSrc::Rank(self.server_of(target)), TAG_REPLY);
        Reply::decode(&bytes)
    }

    fn locate(&self, addr: GlobalAddr, len: usize) -> ArmciResult<(u64, usize)> {
        if addr.is_null() || addr.rank >= self.ncompute {
            return Err(ArmciError::BadAddress {
                rank: addr.rank,
                addr: addr.addr,
            });
        }
        let table = self.table.borrow();
        let m = table.get(&addr.rank).ok_or(ArmciError::BadAddress {
            rank: addr.rank,
            addr: addr.addr,
        })?;
        let (&base, &(id, size)) =
            m.range(..=addr.addr)
                .next_back()
                .ok_or(ArmciError::BadAddress {
                    rank: addr.rank,
                    addr: addr.addr,
                })?;
        if addr.addr + len.max(1) > base + size {
            return Err(ArmciError::OutOfBounds {
                rank: addr.rank,
                addr: addr.addr,
                len,
                limit: base + size,
            });
        }
        Ok((id, addr.addr - base))
    }

    /// Tells this rank's server to exit (called by `run_with_servers`).
    pub fn shutdown(&self) {
        // quiesce compute ranks, then every one stops its own server
        self.compute_group.barrier();
        self.send_req(self.world.rank(), &Request::Shutdown);
    }
}

impl Armci for ArmciDs {
    fn rank(&self) -> usize {
        self.world.rank()
    }

    fn nprocs(&self) -> usize {
        self.ncompute
    }

    fn world_group(&self) -> ArmciGroup {
        self.compute_group.clone()
    }

    fn malloc_group(&self, bytes: usize, group: &ArmciGroup) -> ArmciResult<Vec<GlobalAddr>> {
        let comm = group.comm();
        // agree on an allocation id
        let id_bytes = if comm.rank() == 0 {
            Some(comm.alloc_uid().to_le_bytes().to_vec())
        } else {
            None
        };
        let id = u64::from_le_bytes(comm.bcast_bytes(0, id_bytes).as_slice().try_into().unwrap());
        let base = if bytes > 0 {
            let b = self.next_addr.get();
            self.next_addr.set(b + bytes.div_ceil(64) * 64 + 64);
            b
        } else {
            0
        };
        // my server hosts my slice
        if bytes > 0 {
            let r = self.roundtrip(self.world.rank(), &Request::Malloc { id, size: bytes });
            debug_assert!(matches!(r, Reply::Ok));
        }
        // exchange bases
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&(base as u64).to_le_bytes());
        payload.extend_from_slice(&(bytes as u64).to_le_bytes());
        let all = comm.allgather_bytes(payload);
        let mut out = Vec::with_capacity(all.len());
        {
            let mut table = self.table.borrow_mut();
            for (gr, b) in all.iter().enumerate() {
                let gbase = u64::from_le_bytes(b[..8].try_into().unwrap()) as usize;
                let gsize = u64::from_le_bytes(b[8..16].try_into().unwrap()) as usize;
                let abs = group.absolute_id(gr)?;
                if gbase != 0 {
                    table.entry(abs).or_default().insert(gbase, (id, gsize));
                    out.push(GlobalAddr::new(abs, gbase));
                } else {
                    out.push(GlobalAddr::NULL);
                }
            }
        }
        self.groups.borrow_mut().insert(id, group.clone());
        Ok(out)
    }

    fn free_group(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<()> {
        // leader election as in §V-B
        let comm = group.comm();
        let my_vote = if addr.is_null() {
            -1
        } else {
            comm.rank() as i64
        };
        let (winner, leader) = comm.maxloc_i64(my_vote);
        if winner < 0 {
            return Err(ArmciError::BadDescriptor(
                "free with all-NULL addresses".into(),
            ));
        }
        let payload = if comm.rank() == leader {
            Some((addr.addr as u64).to_le_bytes().to_vec())
        } else {
            None
        };
        let leader_addr = u64::from_le_bytes(
            comm.bcast_bytes(leader, payload)
                .as_slice()
                .try_into()
                .unwrap(),
        ) as usize;
        let leader_abs = group.absolute_id(leader)?;
        let (id, _) = self.locate(GlobalAddr::new(leader_abs, leader_addr), 1)?;
        // drop table entries for every member, free my slice at my server
        {
            let mut table = self.table.borrow_mut();
            for m in table.values_mut() {
                m.retain(|_, &mut (aid, _)| aid != id);
            }
        }
        let r = self.roundtrip(self.world.rank(), &Request::Free { id });
        debug_assert!(matches!(r, Reply::Ok));
        self.groups.borrow_mut().remove(&id);
        comm.barrier();
        Ok(())
    }

    fn set_access_mode(
        &self,
        _addr: GlobalAddr,
        group: &ArmciGroup,
        _mode: AccessMode,
    ) -> ArmciResult<()> {
        // the data server serialises everything anyway: hints are no-ops
        group.barrier();
        Ok(())
    }

    fn get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()> {
        if dst.is_empty() {
            return Ok(());
        }
        let (id, off) = self.locate(src, dst.len())?;
        match self.roundtrip(
            src.rank,
            &Request::Get {
                id,
                off,
                len: dst.len(),
            },
        ) {
            Reply::Data(d) => {
                dst.copy_from_slice(&d);
                Ok(())
            }
            Reply::Err(e) => Err(ArmciError::BadDescriptor(e)),
            _ => Err(ArmciError::BadDescriptor("unexpected reply".into())),
        }
    }

    fn put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        let (id, off) = self.locate(dst, src.len())?;
        // puts are fire-and-forget (remote completion at fence)
        self.send_req(
            dst.rank,
            &Request::Put {
                id,
                off,
                data: src.to_vec(),
            },
        );
        Ok(())
    }

    fn acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        kind.check_len(src.len())?;
        let (id, off) = self.locate(dst, src.len())?;
        let scaled = kind.prescale(src)?;
        self.send_req(
            dst.rank,
            &Request::Acc {
                id,
                off,
                elem: protocol::elem_code(&kind),
                data: scaled,
            },
        );
        Ok(())
    }

    fn copy(&self, src: GlobalAddr, dst: GlobalAddr, bytes: usize) -> ArmciResult<()> {
        let mut tmp = vec![0u8; bytes];
        self.get(src, &mut tmp)?;
        self.put(&tmp, dst)
    }

    fn get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        armci::stride::validate(src_strides, count)?;
        armci::stride::validate(dst_strides, count)?;
        let extent = armci::stride::extent(src_strides, count);
        let (id, off) = self.locate(src, extent)?;
        let req = Request::GetStrided {
            id,
            off,
            strides: src_strides.to_vec(),
            count: count.to_vec(),
        };
        match self.roundtrip(src.rank, &req) {
            Reply::Data(packed) => {
                // unpack the dense payload into the local strided layout
                let seg = count[0];
                for (i, (_, ld)) in
                    armci::StridedIter::new(src_strides, dst_strides, count)?.enumerate()
                {
                    dst[ld..ld + seg].copy_from_slice(&packed[i * seg..(i + 1) * seg]);
                }
                Ok(())
            }
            Reply::Err(e) => Err(ArmciError::BadDescriptor(e)),
            _ => Err(ArmciError::BadDescriptor("unexpected reply".into())),
        }
    }

    fn put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        armci::stride::validate(src_strides, count)?;
        armci::stride::validate(dst_strides, count)?;
        let extent = armci::stride::extent(dst_strides, count);
        let (id, off) = self.locate(dst, extent)?;
        // pack at the origin (two-sided design ships dense payloads)
        let seg = count[0];
        let total = armci::stride::total_bytes(count);
        let mut packed = Vec::with_capacity(total);
        for (ls, _) in armci::StridedIter::new(src_strides, dst_strides, count)? {
            packed.extend_from_slice(&src[ls..ls + seg]);
        }
        self.send_req(
            dst.rank,
            &Request::PutStrided {
                id,
                off,
                strides: dst_strides.to_vec(),
                count: count.to_vec(),
                data: packed,
            },
        );
        Ok(())
    }

    fn acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        armci::stride::validate(src_strides, count)?;
        armci::stride::validate(dst_strides, count)?;
        kind.check_len(count[0])?;
        let extent = armci::stride::extent(dst_strides, count);
        let (id, off) = self.locate(dst, extent)?;
        let seg = count[0];
        let total = armci::stride::total_bytes(count);
        let mut packed = Vec::with_capacity(total);
        for (ls, _) in armci::StridedIter::new(src_strides, dst_strides, count)? {
            packed.extend_from_slice(&src[ls..ls + seg]);
        }
        let packed = kind.prescale(&packed)?;
        self.send_req(
            dst.rank,
            &Request::AccStrided {
                id,
                off,
                strides: dst_strides.to_vec(),
                count: count.to_vec(),
                elem: protocol::elem_code(&kind),
                data: packed,
            },
        );
        Ok(())
    }

    fn get_iov(&self, desc: &IovDesc, local: &mut [u8]) -> ArmciResult<()> {
        desc.validate()?;
        for (&lo, &ra) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            self.get(
                GlobalAddr::new(desc.rank, ra),
                &mut local[lo..lo + desc.bytes],
            )?;
        }
        Ok(())
    }

    fn put_iov(&self, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        desc.validate()?;
        for (&lo, &ra) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            self.put(&local[lo..lo + desc.bytes], GlobalAddr::new(desc.rank, ra))?;
        }
        Ok(())
    }

    fn acc_iov(&self, kind: AccKind, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        desc.validate()?;
        kind.check_len(desc.bytes)?;
        for (&lo, &ra) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            self.acc(
                kind,
                &local[lo..lo + desc.bytes],
                GlobalAddr::new(desc.rank, ra),
            )?;
        }
        Ok(())
    }

    // Every data-server operation is a synchronous request/reply
    // roundtrip: the transfer has fully completed (including remotely)
    // when the call returns. The nonblocking entry points therefore
    // complete eagerly and say so via the handle — honest eager
    // completion, not a blocking shim.

    fn nb_get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<NbHandle> {
        self.get(src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.put(src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.acc(kind, src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.get_strided(src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn nb_put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.put_strided(src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn nb_acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.acc_strided(kind, src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn fence(&self, proc: usize) -> ArmciResult<()> {
        // two-sided channels are FIFO per pair: a fence is a ping that
        // flushes everything ahead of it in the server's queue.
        match self.roundtrip(proc, &Request::Fence) {
            Reply::Ok => Ok(()),
            _ => Err(ArmciError::BadDescriptor("fence failed".into())),
        }
    }

    fn fence_all(&self) -> ArmciResult<()> {
        for r in 0..self.ncompute {
            self.fence(r)?;
        }
        Ok(())
    }

    fn barrier(&self) {
        self.fence_all().expect("fence_all");
        let g = self.world_group();
        g.barrier();
    }

    fn rmw(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        let (id, off) = self.locate(target, 8)?;
        let (code, operand) = match op {
            RmwOp::FetchAdd(x) => (0u8, x),
            RmwOp::Swap(x) => (1u8, x),
        };
        match self.roundtrip(
            target.rank,
            &Request::Rmw {
                id,
                off,
                code,
                operand,
            },
        ) {
            Reply::Value(v) => Ok(v),
            Reply::Err(e) => Err(ArmciError::BadDescriptor(e)),
            _ => Err(ArmciError::BadDescriptor("unexpected reply".into())),
        }
    }

    fn create_mutexes(&self, count: usize) -> ArmciResult<usize> {
        let g = self.world_group();
        g.barrier();
        let handle = self.next_mutex_handle.get();
        self.next_mutex_handle.set(handle + 1);
        self.mutex_counts.borrow_mut().insert(handle, count);
        let r = self.roundtrip(self.world.rank(), &Request::MutexCreate { handle, count });
        debug_assert!(matches!(r, Reply::Ok));
        g.barrier();
        Ok(handle)
    }

    fn lock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        let counts = self.mutex_counts.borrow();
        let &count = counts
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        if mutex >= count || proc >= self.ncompute {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex}@{proc} out of range"
            )));
        }
        match self.roundtrip(proc, &Request::MutexLock { handle, mutex }) {
            Reply::Ok => Ok(()),
            Reply::Err(e) => Err(ArmciError::MutexMisuse(e)),
            _ => Err(ArmciError::MutexMisuse("unexpected reply".into())),
        }
    }

    fn unlock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        let counts = self.mutex_counts.borrow();
        let &count = counts
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        if mutex >= count || proc >= self.ncompute {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex}@{proc} out of range"
            )));
        }
        match self.roundtrip(proc, &Request::MutexUnlock { handle, mutex }) {
            Reply::Ok => Ok(()),
            Reply::Err(e) => Err(ArmciError::MutexMisuse(e)),
            _ => Err(ArmciError::MutexMisuse("unexpected reply".into())),
        }
    }

    fn destroy_mutexes(&self, handle: usize) -> ArmciResult<()> {
        self.mutex_counts
            .borrow_mut()
            .remove(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        let r = self.roundtrip(self.world.rank(), &Request::MutexDestroy { handle });
        debug_assert!(matches!(r, Reply::Ok));
        let g = self.world_group();
        g.barrier();
        Ok(())
    }

    fn access_mut(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            return Err(ArmciError::BadDescriptor(
                "direct access to a remote process".into(),
            ));
        }
        // "Direct" local access is impossible: the data lives in the
        // server process. Emulated as get → mutate → put + fence — one of
        // the §IX overheads of the data-server design.
        let mut buf = vec![0u8; len];
        self.get(addr, &mut buf)?;
        f(&mut buf);
        self.put(&buf, addr)?;
        self.fence(addr.rank)
    }

    fn access(&self, addr: GlobalAddr, len: usize, f: &mut dyn FnMut(&[u8])) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            return Err(ArmciError::BadDescriptor(
                "direct access to a remote process".into(),
            ));
        }
        let mut buf = vec![0u8; len];
        self.get(addr, &mut buf)?;
        f(&buf);
        Ok(())
    }
}
