//! Wire protocol between compute processes and their data servers.
//!
//! Hand-rolled little-endian encoding (the design predates serialization
//! frameworks, and the simulator moves `Vec<u8>` anyway).

use armci::AccKind;

/// Tag for compute→server requests.
pub const TAG_REQUEST: i32 = 0x5e11;
/// Tag for server→compute replies.
pub const TAG_REPLY: i32 = 0x5e12;

/// A request to a data server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Malloc {
        id: u64,
        size: usize,
    },
    Free {
        id: u64,
    },
    Get {
        id: u64,
        off: usize,
        len: usize,
    },
    Put {
        id: u64,
        off: usize,
        data: Vec<u8>,
    },
    Acc {
        id: u64,
        off: usize,
        elem: u8,
        data: Vec<u8>,
    },
    GetStrided {
        id: u64,
        off: usize,
        strides: Vec<usize>,
        count: Vec<usize>,
    },
    PutStrided {
        id: u64,
        off: usize,
        strides: Vec<usize>,
        count: Vec<usize>,
        data: Vec<u8>,
    },
    AccStrided {
        id: u64,
        off: usize,
        strides: Vec<usize>,
        count: Vec<usize>,
        elem: u8,
        data: Vec<u8>,
    },
    Rmw {
        id: u64,
        off: usize,
        code: u8,
        operand: i64,
    },
    Fence,
    MutexCreate {
        handle: usize,
        count: usize,
    },
    MutexLock {
        handle: usize,
        mutex: usize,
    },
    MutexUnlock {
        handle: usize,
        mutex: usize,
    },
    MutexDestroy {
        handle: usize,
    },
    Shutdown,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Ok,
    Data(Vec<u8>),
    Value(i64),
    Err(String),
}

/// Element-type code for accumulates (scale already applied at origin).
pub fn elem_code(kind: &AccKind) -> u8 {
    match kind {
        AccKind::Int(_) => 0,
        AccKind::Long(_) => 1,
        AccKind::Float(_) => 2,
        AccKind::Double(_) => 3,
    }
}

/// Unit-scale kind for a code (server-side combine).
pub fn code_kind(code: u8) -> AccKind {
    match code {
        0 => AccKind::Int(1),
        1 => AccKind::Long(1),
        2 => AccKind::Float(1.0),
        _ => AccKind::Double(1.0),
    }
}

// --- encoding helpers --------------------------------------------------

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_usizes(out: &mut Vec<u8>, xs: &[usize]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x as u64);
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> u64 {
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }

    fn usize(&mut self) -> usize {
        self.u64() as usize
    }

    fn usizes(&mut self) -> Vec<usize> {
        let n = self.usize();
        (0..n).map(|_| self.usize()).collect()
    }

    fn bytes(&mut self) -> Vec<u8> {
        let n = self.usize();
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        head.to_vec()
    }

    fn u8(&mut self) -> u8 {
        let (head, rest) = self.0.split_first().unwrap();
        self.0 = rest;
        *head
    }
}

impl Request {
    /// Serialises the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut o = Vec::new();
        match self {
            Request::Malloc { id, size } => {
                o.push(0);
                put_u64(&mut o, *id);
                put_u64(&mut o, *size as u64);
            }
            Request::Free { id } => {
                o.push(1);
                put_u64(&mut o, *id);
            }
            Request::Get { id, off, len } => {
                o.push(2);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                put_u64(&mut o, *len as u64);
            }
            Request::Put { id, off, data } => {
                o.push(3);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                put_bytes(&mut o, data);
            }
            Request::Acc {
                id,
                off,
                elem,
                data,
            } => {
                o.push(4);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                o.push(*elem);
                put_bytes(&mut o, data);
            }
            Request::GetStrided {
                id,
                off,
                strides,
                count,
            } => {
                o.push(5);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                put_usizes(&mut o, strides);
                put_usizes(&mut o, count);
            }
            Request::PutStrided {
                id,
                off,
                strides,
                count,
                data,
            } => {
                o.push(6);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                put_usizes(&mut o, strides);
                put_usizes(&mut o, count);
                put_bytes(&mut o, data);
            }
            Request::AccStrided {
                id,
                off,
                strides,
                count,
                elem,
                data,
            } => {
                o.push(7);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                put_usizes(&mut o, strides);
                put_usizes(&mut o, count);
                o.push(*elem);
                put_bytes(&mut o, data);
            }
            Request::Rmw {
                id,
                off,
                code,
                operand,
            } => {
                o.push(8);
                put_u64(&mut o, *id);
                put_u64(&mut o, *off as u64);
                o.push(*code);
                put_u64(&mut o, *operand as u64);
            }
            Request::Fence => o.push(9),
            Request::MutexCreate { handle, count } => {
                o.push(10);
                put_u64(&mut o, *handle as u64);
                put_u64(&mut o, *count as u64);
            }
            Request::MutexLock { handle, mutex } => {
                o.push(11);
                put_u64(&mut o, *handle as u64);
                put_u64(&mut o, *mutex as u64);
            }
            Request::MutexUnlock { handle, mutex } => {
                o.push(12);
                put_u64(&mut o, *handle as u64);
                put_u64(&mut o, *mutex as u64);
            }
            Request::MutexDestroy { handle } => {
                o.push(13);
                put_u64(&mut o, *handle as u64);
            }
            Request::Shutdown => o.push(14),
        }
        o
    }

    /// Deserialises a request.
    pub fn decode(b: &[u8]) -> Request {
        let mut r = Reader(b);
        match r.u8() {
            0 => Request::Malloc {
                id: r.u64(),
                size: r.usize(),
            },
            1 => Request::Free { id: r.u64() },
            2 => Request::Get {
                id: r.u64(),
                off: r.usize(),
                len: r.usize(),
            },
            3 => Request::Put {
                id: r.u64(),
                off: r.usize(),
                data: r.bytes(),
            },
            4 => Request::Acc {
                id: r.u64(),
                off: r.usize(),
                elem: r.u8(),
                data: r.bytes(),
            },
            5 => Request::GetStrided {
                id: r.u64(),
                off: r.usize(),
                strides: r.usizes(),
                count: r.usizes(),
            },
            6 => Request::PutStrided {
                id: r.u64(),
                off: r.usize(),
                strides: r.usizes(),
                count: r.usizes(),
                data: r.bytes(),
            },
            7 => Request::AccStrided {
                id: r.u64(),
                off: r.usize(),
                strides: r.usizes(),
                count: r.usizes(),
                elem: r.u8(),
                data: r.bytes(),
            },
            8 => Request::Rmw {
                id: r.u64(),
                off: r.usize(),
                code: r.u8(),
                operand: r.u64() as i64,
            },
            9 => Request::Fence,
            10 => Request::MutexCreate {
                handle: r.usize(),
                count: r.usize(),
            },
            11 => Request::MutexLock {
                handle: r.usize(),
                mutex: r.usize(),
            },
            12 => Request::MutexUnlock {
                handle: r.usize(),
                mutex: r.usize(),
            },
            13 => Request::MutexDestroy { handle: r.usize() },
            _ => Request::Shutdown,
        }
    }
}

impl Reply {
    /// Serialises the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut o = Vec::new();
        match self {
            Reply::Ok => o.push(0),
            Reply::Data(d) => {
                o.push(1);
                put_bytes(&mut o, d);
            }
            Reply::Value(v) => {
                o.push(2);
                put_u64(&mut o, *v as u64);
            }
            Reply::Err(e) => {
                o.push(3);
                put_bytes(&mut o, e.as_bytes());
            }
        }
        o
    }

    /// Deserialises a reply.
    pub fn decode(b: &[u8]) -> Reply {
        let mut r = Reader(b);
        match r.u8() {
            0 => Reply::Ok,
            1 => Reply::Data(r.bytes()),
            2 => Reply::Value(r.u64() as i64),
            _ => Reply::Err(String::from_utf8_lossy(&r.bytes()).into_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let cases = vec![
            Request::Malloc { id: 7, size: 1024 },
            Request::Free { id: 7 },
            Request::Get {
                id: 1,
                off: 64,
                len: 128,
            },
            Request::Put {
                id: 1,
                off: 0,
                data: vec![1, 2, 3],
            },
            Request::Acc {
                id: 2,
                off: 8,
                elem: 3,
                data: vec![0; 16],
            },
            Request::GetStrided {
                id: 3,
                off: 4,
                strides: vec![32, 256],
                count: vec![16, 4, 2],
            },
            Request::PutStrided {
                id: 3,
                off: 4,
                strides: vec![32],
                count: vec![16, 4],
                data: vec![9; 64],
            },
            Request::AccStrided {
                id: 3,
                off: 0,
                strides: vec![64],
                count: vec![8, 2],
                elem: 1,
                data: vec![5; 16],
            },
            Request::Rmw {
                id: 4,
                off: 0,
                code: 0,
                operand: -17,
            },
            Request::Fence,
            Request::MutexCreate {
                handle: 1,
                count: 4,
            },
            Request::MutexLock {
                handle: 1,
                mutex: 2,
            },
            Request::MutexUnlock {
                handle: 1,
                mutex: 2,
            },
            Request::MutexDestroy { handle: 1 },
            Request::Shutdown,
        ];
        for c in cases {
            assert_eq!(Request::decode(&c.encode()), c, "{c:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        for r in [
            Reply::Ok,
            Reply::Data(vec![1, 2, 3]),
            Reply::Value(-42),
            Reply::Err("boom".into()),
        ] {
            assert_eq!(Reply::decode(&r.encode()), r, "{r:?}");
        }
    }

    #[test]
    fn elem_codes_roundtrip_to_unit_scale() {
        assert_eq!(
            code_kind(elem_code(&AccKind::Double(3.0))),
            AccKind::Double(1.0)
        );
        assert_eq!(code_kind(elem_code(&AccKind::Int(5))), AccKind::Int(1));
        assert_eq!(code_kind(elem_code(&AccKind::Long(2))), AccKind::Long(1));
        assert_eq!(
            code_kind(elem_code(&AccKind::Float(0.5))),
            AccKind::Float(1.0)
        );
    }
}
