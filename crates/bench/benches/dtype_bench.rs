//! Criterion bench: derived-datatype flattening and pairing — the hot
//! path of the direct strided method (§VI-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::dtype::zip_segments;
use mpisim::Datatype;
use std::hint::black_box;

fn bench_subarray_segments(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_segments");
    for &rows in &[16usize, 128, 1024] {
        let dt = Datatype::subarray(&[rows * 2, 256], &[rows, 64], &[8, 32], 8).unwrap();
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::from_parameter(rows), &dt, |b, dt| {
            b.iter(|| black_box(dt.segments()).len())
        });
    }
    g.finish();
}

fn bench_zip(c: &mut Criterion) {
    let mut g = c.benchmark_group("zip_segments");
    for &n in &[64usize, 1024] {
        let origin = Datatype::Indexed {
            blocks: (0..n).map(|i| (i * 32, 16)).collect(),
        };
        let target = Datatype::Vector {
            count: n,
            blocklen: 16,
            stride: 48,
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(origin, target),
            |b, (o, t)| b.iter(|| zip_segments(black_box(o), black_box(t)).unwrap().len()),
        );
    }
    g.finish();
}

fn bench_strided_iter(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_strided_iter");
    for &n in &[256usize, 4096] {
        let strides = [64usize, 64 * 64];
        let count = [16usize, 64, n / 64];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &count, |b, count| {
            b.iter(|| {
                armci::StridedIter::new(black_box(&strides), &strides, count)
                    .unwrap()
                    .map(|(s, d)| s ^ d)
                    .fold(0usize, |a, x| a ^ x)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_subarray_segments,
    bench_zip,
    bench_strided_iter
);
criterion_main!(benches);
