//! Criterion bench: the executable NWChem proxy end to end on both ARMCI
//! backends — the Figure 6 workload at laptop scale, wall-clock.

use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, run_triples, CcsdConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        semantic_checks: false,
        ..Default::default()
    }
}

fn bench_ccsd(c: &mut Criterion) {
    let cfg = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let mut g = c.benchmark_group("ccsd_proxy");
    g.sample_size(10);
    for backend in ["armci-mpi", "armci-native"] {
        g.bench_with_input(BenchmarkId::from_parameter(backend), &backend, |b, &be| {
            b.iter(|| {
                Runtime::run_with(4, quiet(), move |p| {
                    if be == "armci-mpi" {
                        run_ccsd(p, &ArmciMpi::new(p), &cfg).energy
                    } else {
                        run_ccsd(p, &ArmciNative::new(p), &cfg).energy
                    }
                })[0]
            })
        });
    }
    g.finish();
}

fn bench_triples(c: &mut Criterion) {
    let cfg = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let mut g = c.benchmark_group("triples_proxy");
    g.sample_size(10);
    g.bench_function("armci-mpi", |b| {
        b.iter(|| {
            Runtime::run_with(4, quiet(), move |p| {
                run_triples(p, &ArmciMpi::new(p), &cfg).energy
            })[0]
        })
    });
    g.finish();
}

fn bench_fig6_des(c: &mut Criterion) {
    // the discrete-event simulator at full scale (12288 procs, 13456 tasks)
    use nwchem_proxy::{Backend, ProxyPhase};
    let mut g = c.benchmark_group("scalesim_des");
    g.sample_size(10);
    g.bench_function("xt5_12288_cores", |b| {
        let platform = simnet::Platform::get(simnet::PlatformId::CrayXT5);
        b.iter(|| {
            scalesim::fig6::point(&platform, Backend::ArmciMpi, ProxyPhase::Ccsd, 12288).minutes
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ccsd, bench_triples, bench_fig6_des);
criterion_main!(benches);
