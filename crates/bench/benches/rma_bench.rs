//! Criterion bench: RMW ablation (§V-D vs §VIII-B) and mutex throughput.
//!
//! The mutex-based MPI-2 RMW protocol is the paper's poster child for
//! what MPI-3 `fetch_and_op` fixes. Both paths run here under identical
//! contention; the virtual-time ratio is reported by the figure harness,
//! this bench tracks the wall-clock implementation cost.

use armci::{Armci, ArmciExt};
use armci_mpi::{ArmciMpi, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        semantic_checks: false,
        ..Default::default()
    }
}

fn bench_rmw(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmw_protocols");
    g.sample_size(20);
    for (label, mpi3) in [("mutex_mpi2", false), ("fetch_and_op_mpi3", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mpi3, |b, &mpi3| {
            b.iter(|| {
                let cfg = Config {
                    use_mpi3_rmw: mpi3,
                    // The default resolves to native atomics; the MPI-2
                    // arm must really run the mutex protocol.
                    atomics: if mpi3 {
                        armci_mpi::AtomicsMode::Native
                    } else {
                        armci_mpi::AtomicsMode::MutexFallback
                    },
                    ..Default::default()
                };
                Runtime::run_with(4, quiet(), move |p| {
                    let rt = ArmciMpi::with_config(p, cfg.clone());
                    let bases = rt.malloc(8).unwrap();
                    rt.barrier();
                    for _ in 0..20 {
                        rt.fetch_add(bases[0], 1).unwrap();
                    }
                    rt.barrier();
                    rt.free(bases[p.rank()]).unwrap();
                });
            })
        });
    }
    g.finish();
}

fn bench_mutex_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("latham_mutex");
    g.sample_size(15);
    for &ranks in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Runtime::run_with(ranks, quiet(), |p| {
                    let rt = ArmciMpi::new(p);
                    let h = rt.create_mutexes(1).unwrap();
                    rt.barrier();
                    for _ in 0..10 {
                        rt.lock_mutex(h, 0, 0).unwrap();
                        rt.unlock_mutex(h, 0, 0).unwrap();
                    }
                    rt.barrier();
                    rt.destroy_mutexes(h).unwrap();
                    let _ = p;
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rmw, bench_mutex_contention);
criterion_main!(benches);
