//! Criterion bench: wall-clock cost of the ARMCI-MPI strided methods on
//! the simulator (implementation overhead, not modelled network time).

use armci::{Armci, StridedMethod};
use armci_mpi::{ArmciMpi, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{Runtime, RuntimeConfig};
use std::hint::black_box;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        semantic_checks: false,
        ..Default::default()
    }
}

fn bench_strided_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("armci_mpi_strided_wallclock");
    g.sample_size(20);
    for method in [
        StridedMethod::IovConservative,
        StridedMethod::IovBatched { batch: 0 },
        StridedMethod::IovDatatype,
        StridedMethod::Direct,
        StridedMethod::Auto,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, &method| {
                b.iter(|| {
                    let cfg = Config {
                        strided: method,
                        iov: method,
                        ..Default::default()
                    };
                    Runtime::run_with(2, quiet(), move |p| {
                        let rt = ArmciMpi::with_config(p, cfg.clone());
                        let bases = rt.malloc(256 * 64).unwrap();
                        rt.barrier();
                        if p.rank() == 0 {
                            let local = vec![1u8; 256 * 16];
                            for _ in 0..8 {
                                rt.put_strided(
                                    black_box(&local),
                                    &[16],
                                    bases[1],
                                    &[64],
                                    &[16, 256],
                                )
                                .unwrap();
                            }
                        }
                        rt.barrier();
                        rt.free(bases[p.rank()]).unwrap();
                    });
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strided_methods);
criterion_main!(benches);
