//! Criterion bench: the §VI-B conflict tree versus the naive O(N²) scan.
//!
//! The paper motivates the AVL conflict tree with NWChem IOVs of "tens to
//! hundreds of thousands of segments"; this bench shows the crossover and
//! the asymptotic win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn disjoint_segments(n: usize) -> Vec<(usize, usize)> {
    // strided IOV: 16-byte segments every 64 bytes (a Figure 4 shape)
    (0..n).map(|i| (i * 64, 16)).collect()
}

fn shuffled_segments(n: usize) -> Vec<(usize, usize)> {
    // deterministic shuffle (LCG) to exercise tree balance
    let mut segs = disjoint_segments(n);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..segs.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        segs.swap(i, j);
    }
    segs
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("iov_overlap_scan");
    for &n in &[64usize, 256, 1024, 4096, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        let segs = shuffled_segments(n);
        g.bench_with_input(BenchmarkId::new("ctree", n), &segs, |b, segs| {
            b.iter(|| ctree::scan_segments(black_box(segs)).is_ok())
        });
        // the naive scan is quadratic; skip the largest sizes
        if n <= 4096 {
            g.bench_with_input(BenchmarkId::new("naive", n), &segs, |b, segs| {
                b.iter(|| ctree::scan_segments_naive(black_box(segs)).is_ok())
            });
        }
    }
    g.finish();
}

fn bench_insert_orders(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctree_insert_order");
    let n = 4096usize;
    let ascending = disjoint_segments(n);
    let shuffled = shuffled_segments(n);
    g.bench_function("ascending", |b| {
        b.iter(|| ctree::scan_segments(black_box(&ascending)).is_ok())
    });
    g.bench_function("shuffled", |b| {
        b.iter(|| ctree::scan_segments(black_box(&shuffled)).is_ok())
    });
    g.finish();
}

criterion_group!(benches, bench_scan, bench_insert_orders);
criterion_main!(benches);
