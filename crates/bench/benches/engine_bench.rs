//! Criterion bench: the transfer engine's plan/issue/complete hot path.
//!
//! The virtual-time figures say what the *modelled* machines do; this
//! bench tracks what the harness itself costs in wall-clock to push one
//! operation through plan → acquire → execute → complete, so engine
//! refactors (and the progress-engine coupling on that path) show up as
//! regressions here rather than as mysteriously slow test suites. The
//! `figures -- harness` artifact (`BENCH_harness.json`) seeds the same
//! numbers in machine-readable form.

use armci::Armci;
use armci_mpi::{ArmciMpi, Config, ProgressMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        semantic_checks: false,
        ..Default::default()
    }
}

/// Blocking contiguous ops through the full engine pipeline: per-op
/// epoch, plan, wire issue, completion at unlock.
fn bench_blocking_path(c: &mut Criterion) {
    const OPS: usize = 64;
    const BYTES: usize = 1 << 10;
    let mut g = c.benchmark_group("engine_blocking");
    g.sample_size(20);
    g.throughput(Throughput::Elements(OPS as u64 * 2));
    for (label, progress) in [
        ("progress_none", ProgressMode::None),
        ("progress_agent", ProgressMode::Agent),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &progress,
            |b, &progress| {
                b.iter(|| {
                    Runtime::run_with(2, quiet(), move |p| {
                        let rt = ArmciMpi::with_config(
                            p,
                            Config {
                                progress,
                                ..Default::default()
                            },
                        );
                        let bases = rt.malloc(BYTES).unwrap();
                        rt.barrier();
                        if p.rank() == 0 {
                            let src = vec![7u8; BYTES];
                            let mut dst = vec![0u8; BYTES];
                            for _ in 0..OPS {
                                rt.put(&src, bases[1]).unwrap();
                                rt.get(bases[1], &mut dst).unwrap();
                            }
                        }
                        rt.barrier();
                        rt.free(bases[p.rank()]).unwrap();
                    });
                });
            },
        );
    }
    g.finish();
}

/// Nonblocking aggregate path: plan + queue on issue, coalesced wire
/// runs and completion at wait.
fn bench_nonblocking_path(c: &mut Criterion) {
    const OPS: usize = 64;
    const BYTES: usize = 1 << 10;
    let mut g = c.benchmark_group("engine_nonblocking");
    g.sample_size(20);
    g.throughput(Throughput::Elements(OPS as u64));
    g.bench_function("nb_put_wait_all", |b| {
        b.iter(|| {
            Runtime::run_with(2, quiet(), move |p| {
                let rt = ArmciMpi::with_config(p, Config::default());
                let bases = rt.malloc(OPS * BYTES).unwrap();
                rt.barrier();
                if p.rank() == 0 {
                    let src = vec![7u8; BYTES];
                    let mut hs = Vec::with_capacity(OPS);
                    for i in 0..OPS {
                        hs.push(rt.nb_put(&src, bases[1].offset(i * BYTES)).unwrap());
                    }
                    rt.wait_all(hs).unwrap();
                }
                rt.barrier();
                rt.free(bases[p.rank()]).unwrap();
            });
        });
    });
    g.finish();
}

criterion_group!(benches, bench_blocking_path, bench_nonblocking_path);
criterion_main!(benches);
