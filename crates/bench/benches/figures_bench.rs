//! Criterion bench: end-to-end regeneration cost of each paper artifact.
//! One benchmark per table/figure, so `cargo bench` exercises every
//! experiment's full pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::PlatformId;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_render", |b| {
        b.iter(|| black_box(bench::table2::render()).len())
    });
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_generate");
    g.sample_size(10);
    g.bench_function("infiniband", |b| {
        b.iter(|| bench::fig3::generate(black_box(PlatformId::InfiniBandCluster)).len())
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_generate");
    g.sample_size(10);
    g.bench_function("cray_xe6", |b| {
        b.iter(|| bench::fig4::generate(black_box(PlatformId::CrayXE6)).len())
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_generate", |b| {
        b.iter(|| bench::fig5::generate().len())
    });
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_generate");
    g.sample_size(10);
    g.bench_function("cray_xe6", |b| {
        b.iter(|| bench::fig6r::generate(black_box(PlatformId::CrayXE6)).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6
);
criterion_main!(benches);
