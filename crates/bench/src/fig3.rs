//! Figure 3: bandwidth of contiguous ARMCI get/put/accumulate over a
//! range of transfer sizes, ARMCI-MPI vs ARMCI-Native, on all four
//! platforms.

use armci::{AccKind, Armci};
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use mpisim::Runtime;
use serde::Serialize;
use simnet::PlatformId;

/// Backend label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Impl {
    Native,
    Mpi,
}

/// One bandwidth curve.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub platform: PlatformId,
    pub backend: Impl,
    pub op: &'static str,
    /// `(transfer bytes, bandwidth bytes/sec)`
    pub points: Vec<(usize, f64)>,
}

/// Transfer sizes: powers of two, 1 B … 32 MiB (the paper sweeps
/// 2⁰…2²⁵).
pub fn sizes() -> Vec<usize> {
    (0..=25).map(|k| 1usize << k).collect()
}

/// Measures all six curves for one platform. The benchmark topology is
/// the paper's: one origin (rank 0), one target (rank 1), virtual time.
pub fn generate(platform: PlatformId) -> Vec<Series> {
    let mut out = Vec::new();
    for backend in [Impl::Native, Impl::Mpi] {
        let cfg = crate::internode(platform);
        let curves = Runtime::run_with(2, cfg, move |p| {
            macro_rules! drive {
                ($rt:expr) => {{
                    let rt = $rt;
                    measure(p, &rt)
                }};
            }
            match backend {
                Impl::Native => drive!(ArmciNative::new(p)),
                Impl::Mpi => drive!(ArmciMpi::new(p)),
            }
        })
        .swap_remove(0);
        for (op, points) in curves {
            out.push(Series {
                platform,
                backend,
                op,
                points,
            });
        }
    }
    out
}

type Curves = Vec<(&'static str, Vec<(usize, f64)>)>;

fn measure<A: Armci>(p: &mpisim::Proc, rt: &A) -> Curves {
    let max = *sizes().last().unwrap();
    let bases = rt.malloc(max).expect("malloc");
    rt.barrier();
    let mut curves: Curves = vec![
        ("get", Vec::new()),
        ("put", Vec::new()),
        ("acc", Vec::new()),
    ];
    if p.rank() == 0 {
        let mut buf = vec![0u8; max];
        for &size in &sizes() {
            // Accumulate needs element alignment; skip sub-element sizes
            // for acc like the paper's double-precision accumulate.
            for (op, points) in curves.iter_mut() {
                let reps = 3;
                let t0 = p.clock().now();
                for _ in 0..reps {
                    match *op {
                        "get" => rt.get(bases[1], &mut buf[..size]).unwrap(),
                        "put" => rt.put(&buf[..size], bases[1]).unwrap(),
                        "acc" => {
                            if size >= 8 {
                                rt.acc(AccKind::Double(1.0), &buf[..size & !7], bases[1])
                                    .unwrap();
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                let dt = (p.clock().now() - t0) / reps as f64;
                if *op != "acc" || size >= 8 {
                    points.push((size, size as f64 / dt));
                }
            }
        }
    }
    rt.barrier();
    rt.free(bases[p.rank()]).unwrap();
    curves
}

/// Renders the figure as aligned text (one block per backend/op).
pub fn render(all: &[Series]) -> String {
    let mut s = String::new();
    for series in all {
        s.push_str(&format!(
            "# Figure 3 — {} — {:?} {}\n# bytes, GB/s\n",
            series.platform.name(),
            series.backend,
            series.op
        ));
        for &(bytes, bw) in &series.points {
            s.push_str(&format!(
                "{:>10}  {:>8}\n",
                crate::fmt_bytes(bytes),
                crate::fmt_gbps(bw)
            ));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(all: &'a [Series], backend: Impl, op: &str) -> &'a Series {
        all.iter()
            .find(|s| s.backend == backend && s.op == op)
            .expect("curve present")
    }

    fn peak(s: &Series) -> f64 {
        s.points.iter().map(|&(_, bw)| bw).fold(0.0, f64::max)
    }

    #[test]
    fn infiniband_shapes_match_paper() {
        let all = generate(PlatformId::InfiniBandCluster);
        assert_eq!(all.len(), 6);
        // native ≥ MPI for get/put; acc gap > 1.5 GB/s
        let nat_get = peak(curve(&all, Impl::Native, "get"));
        let mpi_get = peak(curve(&all, Impl::Mpi, "get"));
        assert!(nat_get > mpi_get);
        let gap = peak(curve(&all, Impl::Native, "acc")) - peak(curve(&all, Impl::Mpi, "acc"));
        assert!(gap > 1.5e9, "acc gap {gap}");
        // bandwidth grows with size
        let g = curve(&all, Impl::Mpi, "get");
        assert!(g.points.first().unwrap().1 < g.points.last().unwrap().1);
    }

    #[test]
    fn blue_gene_mpi_close_behind_native() {
        let all = generate(PlatformId::BlueGeneP);
        let r = peak(curve(&all, Impl::Mpi, "get")) / peak(curve(&all, Impl::Native, "get"));
        assert!(r > 0.8 && r < 1.0, "BG/P get ratio {r}");
        // acc clearly behind
        let racc = peak(curve(&all, Impl::Mpi, "acc")) / peak(curve(&all, Impl::Native, "acc"));
        assert!(racc < 0.75, "BG/P acc ratio {racc}");
    }

    #[test]
    fn cray_xe_mpi_beats_native() {
        let all = generate(PlatformId::CrayXE6);
        let r = peak(curve(&all, Impl::Mpi, "put")) / peak(curve(&all, Impl::Native, "put"));
        assert!(r > 1.7, "XE put ratio {r}");
    }

    #[test]
    fn cray_xt_mpi_half_bandwidth_beyond_32k() {
        let all = generate(PlatformId::CrayXT5);
        let m = curve(&all, Impl::Mpi, "get");
        let n = curve(&all, Impl::Native, "get");
        let at = |s: &Series, sz: usize| s.points.iter().find(|&&(b, _)| b == sz).unwrap().1;
        let small_ratio = at(m, 16 << 10) / at(n, 16 << 10);
        let big_ratio = at(m, 8 << 20) / at(n, 8 << 20);
        assert!(small_ratio > 0.7, "small {small_ratio}");
        assert!(big_ratio < 0.6, "big {big_ratio}");
    }
}
