//! Harness speed: wall-clock cost of the simulator/engine hot path
//! itself, as machine-readable seed rows for `BENCH_harness.json`.
//!
//! Unlike every other artifact these numbers are *host* measurements —
//! nanoseconds of real time per ARMCI operation pushed through
//! plan → acquire → execute → complete — so absolute values vary by
//! machine and build. The rows exist as a seed/baseline to diff against
//! when engine work (like the progress-engine coupling on the hot path)
//! is suspected of slowing the harness down; `benches/engine_bench.rs`
//! is the statistically careful criterion version of the same loops.

use serde::Serialize;

/// One measured loop.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Which loop ran (`"engine-contig"`).
    pub bench: &'static str,
    /// Recorder arm: `"record-on"` (events captured and discarded) or
    /// `"record-off"` (one relaxed load per call site).
    pub stage: &'static str,
    /// ARMCI data operations the loop issued.
    pub ops: u64,
    /// Host nanoseconds per operation.
    pub ns_per_op: f64,
}

/// Repetitions of the contiguous put/get loop per arm.
pub const REPS: usize = 200;

/// Measures both recorder arms of the engine hot loop.
pub fn generate() -> Vec<Row> {
    let ops = REPS as u64 * crate::trace::OVERHEAD_OPS_PER_REP;
    let on = crate::trace::contig_overhead(REPS);
    let off = crate::trace::contig_overhead_off(REPS);
    vec![
        Row {
            bench: "engine-contig",
            stage: "record-on",
            ops,
            ns_per_op: on.as_nanos() as f64 / ops as f64,
        },
        Row {
            bench: "engine-contig",
            stage: "record-off",
            ops,
            ns_per_op: off.as_nanos() as f64 / ops as f64,
        },
    ]
}

/// Renders the rows as aligned text.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Harness hot-path wall-clock (host ns per ARMCI op)\n");
    s.push_str(&format!(
        "{:<16} {:<12} {:>8} {:>12}\n",
        "bench", "stage", "ops", "ns_per_op"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<16} {:<12} {:>8} {:>12.1}\n",
            r.bench, r.stage, r.ops, r.ns_per_op
        ));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_rows_are_positive_and_complete() {
        let rows = generate();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ops > 0);
            assert!(r.ns_per_op > 0.0, "{}/{} measured zero", r.bench, r.stage);
        }
    }
}
