//! Coalescing-scheduler A/B: the same traffic replayed through three
//! arms — the paper's per-op baseline (one blocking exclusive epoch per
//! operation, §V-C), the legacy nonblocking path (aggregate epochs, one
//! wire operation per queued op), and the coalescing scheduler (merged
//! runs under coarsened epochs, committed-datatype cache) — on a
//! Figure 3/4-style strided mix and the CCSD ladder proxy (§VII).
//!
//! Payloads and energies must be bit-identical across arms; the arms
//! differ only in epoch count, wire-operation count, and virtual time.

use armci::Armci;
use armci_mpi::{ArmciMpi, AtomicsMode, CoalesceMode, Config};
use mpisim::{Proc, Runtime};
use nwchem_proxy::{run_ccsd, run_ccsd_pipelined, CcsdConfig};
use serde::Serialize;
use simnet::PlatformId;

/// Rounds of the strided-mix workload (each round: writes, wait, reads).
pub const ROUNDS: usize = 4;
/// Contiguous puts per round (adjacent 4 KiB blocks — the merge case).
const CONTIG_OPS: usize = 8;
const CONTIG_BYTES: usize = 4096;
/// Interleaved strided puts per round (disjoint column blocks).
const STRIDED_OPS: usize = 4;
const SEG: usize = 16;
const ROWS: usize = 64;

/// One measured arm of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// Wire backend the measurement ran over (see `armci_mpi::transport`).
    pub transport: &'static str,
    /// `"fig3-strided-mix"` or `"ccsd-proxy"`.
    pub workload: &'static str,
    /// `"blocking-perop"`, `"nb-perop"` or `"nb-coalesced"`.
    pub arm: &'static str,
    /// Node layout of the measurement (one rank per node; see
    /// `crate::internode`).
    pub ranks_per_node: u32,
    /// Passive-target epochs opened during the phase.
    pub epochs: u64,
    /// Flush completions (the MPI-3 arms synchronise with `flush` under
    /// the standing `lock_all` instead of opening epochs).
    pub flushes: u64,
    /// Wire-level RMA operations (after merging, where it applies).
    pub wire_ops: u64,
    /// Operations enqueued on the scheduler (zero for non-scheduler arms).
    pub queued_ops: u64,
    /// Merged runs the scheduler issued.
    pub runs: u64,
    /// Datatype segments entering / leaving the segment merger.
    pub segs_in: u64,
    pub segs_out: u64,
    pub dtype_hits: u64,
    pub dtype_misses: u64,
    pub dtype_hit_rate: f64,
    /// Virtual seconds on rank 0 for the measured phase.
    pub virtual_s: f64,
    /// Final remote memory (or energy) bit-identical to the per-op arm.
    pub payload_ok: bool,
    /// CCSD synthetic energy (zero for the strided mix).
    pub energy: f64,
}

fn arm_cfg(arm: &str, epochless: bool) -> Config {
    Config {
        epochless,
        // Keep the lock/unlock epoch shape this A/B asserts on stable:
        // the non-epochless arms model the paper's MPI-2 configuration,
        // whose RMW is the mutex protocol, not native atomics.
        atomics: if epochless {
            AtomicsMode::Auto
        } else {
            AtomicsMode::MutexFallback
        },
        coalesce: match arm {
            "nb-coalesced" => CoalesceMode::Auto,
            _ => CoalesceMode::PerOp,
        },
        // This A/B isolates the wire scheduler: rank-local ops are
        // always "same node", so the shared-memory bypass would route
        // them around the scheduler under every arm and skew the epoch
        // and wire-op counts. The shm tier gets its own A/B in shm.rs.
        shm: false,
        ..Default::default()
    }
}

/// Runs the strided mix under one arm; returns the stats row (without
/// `payload_ok`, fixed up by the caller) and the final remote image.
fn run_mix(platform: PlatformId, arm: &'static str) -> (Row, Vec<u8>) {
    let cfg = crate::internode(platform);
    let mut out = Runtime::run_with(2, cfg, move |p| {
        let rt = ArmciMpi::with_config(p, arm_cfg(arm, false));
        let strided_base = CONTIG_OPS * CONTIG_BYTES;
        let total = strided_base + ROWS * STRIDED_OPS * SEG;
        let bases = rt.malloc(total).expect("malloc");
        rt.barrier();
        let mut row = None;
        let mut image = Vec::new();
        if p.rank() == 0 {
            let t0 = p.clock().now();
            let s0 = rt.stats();
            let g0 = rt.stage_stats();
            let contig: Vec<Vec<u8>> = (0..CONTIG_OPS)
                .map(|i| {
                    (0..CONTIG_BYTES)
                        .map(|b| (b as u8).wrapping_mul(7).wrapping_add(i as u8))
                        .collect()
                })
                .collect();
            let rowstride = STRIDED_OPS * SEG;
            let col: Vec<Vec<u8>> = (0..STRIDED_OPS)
                .map(|k| vec![0x40 + k as u8; ROWS * SEG])
                .collect();
            for _ in 0..ROUNDS {
                // write phase: adjacent contiguous puts + interleaved
                // disjoint strided puts, all to rank 1
                if arm == "blocking-perop" {
                    for (i, payload) in contig.iter().enumerate() {
                        rt.put(payload, bases[1].offset(i * CONTIG_BYTES)).unwrap();
                    }
                    for (k, payload) in col.iter().enumerate() {
                        rt.put_strided(
                            payload,
                            &[SEG],
                            bases[1].offset(strided_base + k * SEG),
                            &[rowstride],
                            &[SEG, ROWS],
                        )
                        .unwrap();
                    }
                } else {
                    let mut hs = Vec::new();
                    for (i, payload) in contig.iter().enumerate() {
                        hs.push(
                            rt.nb_put(payload, bases[1].offset(i * CONTIG_BYTES))
                                .unwrap(),
                        );
                    }
                    for (k, payload) in col.iter().enumerate() {
                        hs.push(
                            rt.nb_put_strided(
                                payload,
                                &[SEG],
                                bases[1].offset(strided_base + k * SEG),
                                &[rowstride],
                                &[SEG, ROWS],
                            )
                            .unwrap(),
                        );
                    }
                    rt.wait_all(hs).unwrap();
                }
                // read phase: the contiguous region back in chunks
                let mut buf = vec![0u8; CONTIG_BYTES];
                if arm == "blocking-perop" {
                    for i in 0..CONTIG_OPS {
                        rt.get(bases[1].offset(i * CONTIG_BYTES), &mut buf).unwrap();
                    }
                } else {
                    let mut hs = Vec::new();
                    for i in 0..CONTIG_OPS {
                        hs.push(
                            rt.nb_get(bases[1].offset(i * CONTIG_BYTES), &mut buf)
                                .unwrap(),
                        );
                    }
                    rt.wait_all(hs).unwrap();
                }
            }
            let s1 = rt.stats();
            let g1 = rt.stage_stats().delta(&g0);
            let t1 = p.clock().now();
            row = Some(Row {
                platform,
                transport: rt.transport_name(),
                workload: "fig3-strided-mix",
                arm,
                ranks_per_node: 1,
                epochs: s1.epochs - s0.epochs,
                flushes: s1.flushes - s0.flushes,
                wire_ops: (s1.puts - s0.puts) + (s1.gets - s0.gets) + (s1.accs - s0.accs),
                queued_ops: g1.sched_enqueued,
                runs: g1.sched_runs,
                segs_in: g1.sched_segs_in,
                segs_out: g1.sched_segs_out,
                dtype_hits: g1.dtype_hits,
                dtype_misses: g1.dtype_misses,
                dtype_hit_rate: g1.dtype_hit_rate(),
                virtual_s: t1 - t0,
                payload_ok: false,
                energy: 0.0,
            });
            let mut img = vec![0u8; total];
            rt.get(bases[1], &mut img).unwrap();
            image = img;
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        (row, image)
    })
    .swap_remove(0);
    (out.0.take().expect("rank 0 row"), out.1)
}

/// Runs the CCSD ladder proxy under one arm; returns the row (the
/// caller fixes `payload_ok` against the per-op energy).
fn run_ccsd_arm(platform: PlatformId, arm: &'static str) -> Row {
    let cfg = crate::internode(platform);
    Runtime::run_with(2, cfg, move |p: &Proc| {
        // The per-op baseline is the paper's §V-C model (one exclusive
        // epoch per blocking op, MPI-2); both nonblocking arms run the
        // chunked §VII schedule on the MPI-3 lock_all+flush path.
        let rt = ArmciMpi::with_config(p, arm_cfg(arm, arm != "blocking-perop"));
        let ccsd = CcsdConfig {
            iterations: 2,
            ..CcsdConfig::tiny()
        };
        let s0 = rt.stats();
        let g0 = rt.stage_stats();
        let r = if arm == "blocking-perop" {
            run_ccsd(p, &rt, &ccsd)
        } else {
            run_ccsd_pipelined(p, &rt, &ccsd)
        };
        let s1 = rt.stats();
        let g1 = rt.stage_stats().delta(&g0);
        Row {
            platform,
            transport: rt.transport_name(),
            workload: "ccsd-proxy",
            arm,
            ranks_per_node: 1,
            epochs: s1.epochs - s0.epochs,
            flushes: s1.flushes - s0.flushes,
            wire_ops: (s1.puts - s0.puts) + (s1.gets - s0.gets) + (s1.accs - s0.accs),
            queued_ops: g1.sched_enqueued,
            runs: g1.sched_runs,
            segs_in: g1.sched_segs_in,
            segs_out: g1.sched_segs_out,
            dtype_hits: g1.dtype_hits,
            dtype_misses: g1.dtype_misses,
            dtype_hit_rate: g1.dtype_hit_rate(),
            virtual_s: r.elapsed,
            payload_ok: false,
            energy: r.energy,
        }
    })
    .swap_remove(0)
}

/// Measures all arms of both workloads on one platform.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    const ARMS: [&str; 3] = ["blocking-perop", "nb-perop", "nb-coalesced"];
    let mut rows = Vec::new();
    let mut ref_image: Option<Vec<u8>> = None;
    for arm in ARMS {
        let (mut row, image) = run_mix(platform, arm);
        row.payload_ok = match &ref_image {
            None => {
                ref_image = Some(image);
                true
            }
            Some(r) => r == &image,
        };
        rows.push(row);
    }
    let mut ref_energy: Option<f64> = None;
    for arm in ARMS {
        let mut row = run_ccsd_arm(platform, arm);
        row.payload_ok = match ref_energy {
            None => {
                ref_energy = Some(row.energy);
                true
            }
            Some(e) => e.to_bits() == row.energy.to_bits(),
        };
        rows.push(row);
    }
    rows
}

/// Renders the A/B as aligned text, with the headline reductions.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Coalescing scheduler A/B — epochs, wire ops, virtual time per arm\n");
    s.push_str(&format!(
        "{:<30} {:>7} {:>9} {:>7} {:>11} {:>8} {:>7} {:>3}\n",
        "workload/arm", "syncs", "wire_ops", "runs", "virtual_µs", "dtype%", "segs", "ok"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<30} {:>7} {:>9} {:>7} {:>11.1} {:>8.1} {:>7} {:>3}\n",
            format!("{}/{}", r.workload, r.arm),
            r.epochs + r.flushes,
            r.wire_ops,
            r.runs,
            r.virtual_s * 1e6,
            r.dtype_hit_rate * 100.0,
            r.segs_out,
            if r.payload_ok { "y" } else { "N" },
        ));
    }
    for workload in ["fig3-strided-mix", "ccsd-proxy"] {
        let get = |arm: &str| rows.iter().find(|r| r.workload == workload && r.arm == arm);
        if let (Some(perop), Some(coal)) = (get("blocking-perop"), get("nb-coalesced")) {
            s.push_str(&format!(
                "{workload}: {:.1}x fewer sync epochs, {:.1}x fewer wire ops, {:+.1}% latency vs per-op\n",
                (perop.epochs + perop.flushes) as f64 / (coal.epochs + coal.flushes).max(1) as f64,
                perop.wire_ops as f64 / coal.wire_ops.max(1) as f64,
                (coal.virtual_s / perop.virtual_s - 1.0) * 100.0,
            ));
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_cuts_epochs_and_latency_with_identical_payloads() {
        let rows = generate(PlatformId::InfiniBandCluster);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.payload_ok, "{}/{} payload drifted", r.workload, r.arm);
        }
        for workload in ["fig3-strided-mix", "ccsd-proxy"] {
            let get = |arm: &str| {
                rows.iter()
                    .find(|r| r.workload == workload && r.arm == arm)
                    .unwrap()
            };
            let perop = get("blocking-perop");
            let coal = get("nb-coalesced");
            let (coal_sync, perop_sync) =
                (coal.epochs + coal.flushes, perop.epochs + perop.flushes);
            assert!(
                coal_sync * 2 <= perop_sync,
                "{workload}: sync epochs {coal_sync} vs {perop_sync} — not a 2x reduction"
            );
            assert!(
                coal.wire_ops < perop.wire_ops,
                "{workload}: merging did not reduce wire ops"
            );
            assert!(
                coal.virtual_s < perop.virtual_s,
                "{workload}: coalesced arm not faster ({} vs {})",
                coal.virtual_s,
                perop.virtual_s
            );
            // the scheduler actually ran on the coalesced arm only
            assert!(coal.queued_ops > 0);
            assert_eq!(perop.queued_ops, 0);
        }
        // steady-state CCSD tile shapes live in the committed-datatype cache
        let ccsd = rows
            .iter()
            .find(|r| r.workload == "ccsd-proxy" && r.arm == "nb-coalesced")
            .unwrap();
        assert!(
            ccsd.dtype_hit_rate > 0.9,
            "ccsd dtype hit rate {:.2} ≤ 0.9",
            ccsd.dtype_hit_rate
        );
    }
}
