//! Table II: experimental platforms and system characteristics.

use simnet::Platform;

/// Renders Table II as aligned text.
pub fn render() -> String {
    let mut s = String::from("# Table II — Experimental platforms and system characteristics\n");
    s.push_str(&format!(
        "{:<24} {:>7} {:>15} {:>12} {:<16} {:<14}\n",
        "System", "Nodes", "Cores per Node", "Mem per Node", "Interconnect", "MPI Version"
    ));
    for p in Platform::all() {
        s.push_str(&format!(
            "{:<24} {:>7} {:>9} x {:<3} {:>9} GB {:<16} {:<14}\n",
            format!("{} ({})", p.name, p.system),
            p.nodes,
            p.sockets_per_node,
            p.cores_per_socket,
            p.memory_per_node_gib,
            p.interconnect,
            p.mpi_version
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_contains_all_rows() {
        let t = super::render();
        for name in ["Intrepid", "Fusion", "Jaguar PF", "Hopper II"] {
            assert!(t.contains(name), "missing {name}:\n{t}");
        }
        assert!(t.contains("40960"));
        assert!(t.contains("InfiniBand QDR"));
        assert!(t.contains("Seastar 2+"));
        assert!(t.contains("Gemini"));
    }
}
