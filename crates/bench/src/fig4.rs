//! Figure 4: strided bandwidth for the four ARMCI-MPI methods and native
//! ARMCI, with contiguous segments of 16 B and 1 KiB and 1…1024 segments.

use armci::{AccKind, Armci, StridedMethod};
use armci_mpi::{ArmciMpi, AtomicsMode, Config};
use armci_native::ArmciNative;
use mpisim::Runtime;
use serde::Serialize;
use simnet::PlatformId;

/// The five plotted methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Method {
    Native,
    Direct,
    IovDirect,
    IovBatched,
    IovConservative,
}

impl Method {
    /// All methods in the figure's legend order.
    pub const ALL: [Method; 5] = [
        Method::Native,
        Method::Direct,
        Method::IovDirect,
        Method::IovBatched,
        Method::IovConservative,
    ];

    fn armci_mpi_config(self) -> Option<Config> {
        let strided = match self {
            Method::Native => return None,
            Method::Direct => StridedMethod::Direct,
            Method::IovDirect => StridedMethod::IovDatatype,
            Method::IovBatched => StridedMethod::IovBatched { batch: 0 },
            Method::IovConservative => StridedMethod::IovConservative,
        };
        Some(Config {
            strided,
            iov: strided,
            // Figure 4 reproduces the paper's MPI-2 measurement; keep the
            // whole configuration on that vintage (no RMW traffic flows
            // here, but the pin documents the fidelity).
            atomics: AtomicsMode::MutexFallback,
            ..Default::default()
        })
    }

    /// Legend label as in the figure.
    pub fn label(self) -> &'static str {
        match self {
            Method::Native => "Native",
            Method::Direct => "Direct",
            Method::IovDirect => "IOV-Direct",
            Method::IovBatched => "IOV-Batched",
            Method::IovConservative => "IOV-Consrv",
        }
    }
}

/// One curve: bandwidth vs segment count.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub platform: PlatformId,
    pub method: Method,
    pub op: &'static str,
    pub seg_size: usize,
    /// `(number of segments, bandwidth bytes/sec)`
    pub points: Vec<(usize, f64)>,
}

/// Segment counts: 2⁰ … 2¹⁰.
pub fn seg_counts() -> Vec<usize> {
    (0..=10).map(|k| 1usize << k).collect()
}

/// The two plotted segment sizes.
pub const SEG_SIZES: [usize; 2] = [16, 1024];

/// Measures all curves for one platform.
pub fn generate(platform: PlatformId) -> Vec<Series> {
    let mut out = Vec::new();
    for method in Method::ALL {
        let cfg = crate::internode(platform);
        let curves = Runtime::run_with(2, cfg, move |p| match method.armci_mpi_config() {
            None => measure(p, &ArmciNative::new(p)),
            Some(c) => measure(p, &ArmciMpi::with_config(p, c)),
        })
        .swap_remove(0);
        for (op, seg_size, points) in curves {
            out.push(Series {
                platform,
                method,
                op,
                seg_size,
                points,
            });
        }
    }
    out
}

type Curves = Vec<(&'static str, usize, Vec<(usize, f64)>)>;

fn measure<A: Armci>(p: &mpisim::Proc, rt: &A) -> Curves {
    let max_segs = *seg_counts().last().unwrap();
    let max_seg_size = SEG_SIZES[1];
    // Remote layout: segments of `seg` bytes strided at `2·seg` (50% dense)
    let bases = rt.malloc(max_segs * max_seg_size * 2).expect("malloc");
    rt.barrier();
    let mut curves: Curves = Vec::new();
    for &seg in &SEG_SIZES {
        for op in ["get", "acc", "put"] {
            let mut points = Vec::new();
            if p.rank() == 0 {
                let mut local = vec![1u8; max_segs * seg];
                for &n in &seg_counts() {
                    let count = [seg, n];
                    let lstr = [seg]; // dense local
                    let rstr = [2 * seg]; // strided remote
                    let reps = 2;
                    let t0 = p.clock().now();
                    for _ in 0..reps {
                        match op {
                            "get" => rt
                                .get_strided(bases[1], &rstr, &mut local[..n * seg], &lstr, &count)
                                .unwrap(),
                            "put" => rt
                                .put_strided(&local[..n * seg], &lstr, bases[1], &rstr, &count)
                                .unwrap(),
                            "acc" => rt
                                .acc_strided(
                                    AccKind::Double(1.0),
                                    &local[..n * seg],
                                    &lstr,
                                    bases[1],
                                    &rstr,
                                    &count,
                                )
                                .unwrap(),
                            _ => unreachable!(),
                        }
                    }
                    let dt = (p.clock().now() - t0) / reps as f64;
                    points.push((n, (n * seg) as f64 / dt));
                }
            }
            curves.push((op, seg, points));
        }
    }
    rt.barrier();
    rt.free(bases[p.rank()]).unwrap();
    curves
}

/// Renders the figure as aligned text.
pub fn render(all: &[Series]) -> String {
    let mut s = String::new();
    for series in all {
        s.push_str(&format!(
            "# Figure 4 — {} — {} {} SIZE={}B\n# segments, GB/s\n",
            series.platform.name(),
            series.method.label(),
            series.op,
            series.seg_size
        ));
        for &(n, bw) in &series.points {
            s.push_str(&format!("{n:>6}  {:>8}\n", crate::fmt_gbps(bw)));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(all: &[Series], m: Method, op: &str, seg: usize, n: usize) -> f64 {
        all.iter()
            .find(|s| s.method == m && s.op == op && s.seg_size == seg)
            .and_then(|s| s.points.iter().find(|&&(k, _)| k == n))
            .map(|&(_, b)| b)
            .expect("point present")
    }

    #[test]
    fn infiniband_batched_collapses_for_many_segments() {
        // The MVAPICH2 batched-op issue (paper: "performance of the
        // batched transfer method suffers severely").
        let all = generate(PlatformId::InfiniBandCluster);
        let few = bw(&all, Method::IovBatched, "put", 1024, 4);
        let many = bw(&all, Method::IovBatched, "put", 1024, 1024);
        // bandwidth per segment collapses: many-segment bw falls below
        // the 4-segment bw despite 256× the payload
        assert!(many < few * 2.0, "few {few} many {many}");
        // and direct datatypes overtake batched at high segment counts
        let direct_many = bw(&all, Method::IovDirect, "put", 16, 1024);
        let batched_many = bw(&all, Method::IovBatched, "put", 16, 1024);
        assert!(direct_many > batched_many);
    }

    #[test]
    fn bgp_direct_wins_small_segments_batched_wins_large() {
        let all = generate(PlatformId::BlueGeneP);
        // 16 B segments: datatype packing wins
        let d16 = bw(&all, Method::Direct, "put", 16, 1024);
        let b16 = bw(&all, Method::IovBatched, "put", 16, 1024);
        assert!(d16 > b16, "16B: direct {d16} batched {b16}");
        // 1 KiB segments: slow cores make packing lose; batched is nearer
        // native
        let d1k = bw(&all, Method::Direct, "put", 1024, 1024);
        let b1k = bw(&all, Method::IovBatched, "put", 1024, 1024);
        let n1k = bw(&all, Method::Native, "put", 1024, 1024);
        assert!(b1k > d1k, "1KiB: batched {b1k} direct {d1k}");
        assert!(b1k > 0.5 * n1k, "batched {b1k} vs native {n1k}");
    }

    #[test]
    fn conservative_is_slowest_mpi_method_at_scale() {
        let all = generate(PlatformId::CrayXT5);
        for op in ["get", "put", "acc"] {
            let cons = bw(&all, Method::IovConservative, op, 16, 1024);
            for m in [Method::Direct, Method::IovDirect, Method::IovBatched] {
                let other = bw(&all, m, op, 16, 1024);
                assert!(other > cons, "{op}: {m:?} {other} vs conservative {cons}");
            }
        }
    }

    #[test]
    fn cray_xe_mpi_beats_native_strided() {
        let all = generate(PlatformId::CrayXE6);
        let d = bw(&all, Method::Direct, "get", 1024, 1024);
        let n = bw(&all, Method::Native, "get", 1024, 1024);
        assert!(d > n, "XE strided: direct {d} vs native {n}");
    }

    #[test]
    fn single_segment_methods_agree_roughly() {
        // With one segment, all MPI methods issue one op in one epoch, so
        // their bandwidths should be within a small factor.
        let all = generate(PlatformId::InfiniBandCluster);
        let vals: Vec<f64> = [
            Method::Direct,
            Method::IovDirect,
            Method::IovBatched,
            Method::IovConservative,
        ]
        .iter()
        .map(|&m| bw(&all, m, "put", 1024, 1))
        .collect();
        let mx = vals.iter().fold(0.0f64, |a, &b| a.max(b));
        let mn = vals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(mx / mn < 2.0, "spread too large: {vals:?}");
    }
}
