//! Wire-backend A/B (`BENCH_transport.json`): the same traffic replayed
//! over MPI passive-target RMA and the RAMC-style channel backend, with
//! and without the congestion-aware shared-NIC queueing model.
//!
//! Two workloads run at 1 and 8 ranks per node: a Figure 3-style
//! contiguous put/get/accumulate mix fanned out from rank 0, and the
//! CCSD ladder proxy (§VII). Payloads and synthetic energies must be
//! bit-identical across every arm — the backend may only change what
//! the movement costs and how it is bracketed (epochs vs doorbells),
//! never what arrives. The channel backend's offload/fallback split is
//! recorded per arm. On the single-driver mix (whose virtual makespan
//! is deterministic) congestion pricing must never be cheaper than the
//! uncongested run of the same backend; the proxy's makespan depends on
//! dynamic NXTVAL task claiming, so its timings are reported, not
//! compared.

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, AtomicsMode, Config, TransportKind};
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, CcsdConfig};
use serde::Serialize;
use simnet::{CongestionParams, Platform, PlatformId};

/// Ranks-per-node sweep points: fully spread (every transfer crosses
/// the wire) and packed enough that NICs are shared under congestion.
pub const RANKS_PER_NODE: [u32; 2] = [1, 8];

/// Simulated processes per run.
const RANKS: usize = 8;

/// One measured arm of one workload at one layout.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// `"fig3-mix"` or `"ccsd-proxy"`.
    pub workload: &'static str,
    /// Wire backend: `"mpi-rma"` or `"channel"`.
    pub transport: &'static str,
    /// Whether the shared-NIC congestion model priced this arm.
    pub congested: bool,
    pub ranks_per_node: u32,
    /// Passive-target epochs opened, summed over ranks (zero for the
    /// channel backend — it has no epochs).
    pub epochs: u64,
    /// Flush operations, summed over ranks.
    pub flushes: u64,
    /// Channel operations completed in "hardware" (contiguous
    /// doorbell/CQ transfers and NIC atomics), summed over ranks.
    pub offloaded_ops: u64,
    /// Channel operations that took the software fallback, summed.
    pub fallback_ops: u64,
    /// Virtual makespan (max over ranks) of the measured phase.
    pub virtual_s: f64,
    /// Payload (or energy) bit-identical to the uncongested MPI-RMA arm.
    pub payload_ok: bool,
    /// CCSD synthetic energy (zero for the mix).
    pub energy: f64,
}

/// Runtime for `platform` at `ranks_per_node`, optionally with the
/// congestion-aware shared-NIC queueing model armed.
fn topo(platform: PlatformId, ranks_per_node: u32, congested: bool) -> RuntimeConfig {
    let mut p = Platform::get(platform).customized("transport-bench");
    p.sockets_per_node = 1;
    p.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform: p,
        congestion: congested.then(CongestionParams::default),
        ..Default::default()
    }
}

fn arm_cfg(transport: TransportKind) -> Config {
    Config {
        transport,
        // This A/B isolates the wire backend: with the node slab on,
        // packed layouts would route node-local traffic through the shm
        // tier (which locks under the channel backend) and measure the
        // slab instead of the wire. BENCH_shm measures that tier.
        shm: false,
        // Both wire arms carry the paper's MPI-2 RMW (mutex protocol) so
        // the backend comparison is unaffected by the native-atomics
        // default; BENCH_rmw is where the disciplines are compared.
        atomics: AtomicsMode::MutexFallback,
        ..Default::default()
    }
}

fn kind_of(transport: &str) -> TransportKind {
    if transport == "channel" {
        TransportKind::Channel
    } else {
        TransportKind::MpiRma
    }
}

fn fold(
    platform: PlatformId,
    workload: &'static str,
    transport: &'static str,
    congested: bool,
    rpn: u32,
) -> Row {
    Row {
        platform,
        workload,
        transport,
        congested,
        ranks_per_node: rpn,
        epochs: 0,
        flushes: 0,
        offloaded_ops: 0,
        fallback_ops: 0,
        virtual_s: 0.0,
        payload_ok: false,
        energy: 0.0,
    }
}

/// Per-rank measurement: epoch/flush deltas, offload counters, elapsed.
type RankSample = (u64, u64, u64, u64, f64);

fn add_sample(row: &mut Row, s: &RankSample) {
    row.epochs += s.0;
    row.flushes += s.1;
    row.offloaded_ops += s.2;
    row.fallback_ops += s.3;
    row.virtual_s = row.virtual_s.max(s.4);
}

/// Figure 3-style mix: rank 0 fans contiguous put/get/acc at three sizes
/// out to every peer, plus a strided transfer per peer so the channel
/// backend exercises its software fallback. Returns the row and the
/// concatenated final images of all targets (the cross-arm bit-compare
/// payload).
fn run_mix(
    platform: PlatformId,
    rpn: u32,
    transport: &'static str,
    congested: bool,
) -> (Row, Vec<u8>) {
    const SIZES: [usize; 3] = [1 << 10, 1 << 14, 1 << 18];
    let max = *SIZES.iter().max().unwrap();
    let per_rank = Runtime::run_with(RANKS, topo(platform, rpn, congested), move |p| {
        let rt = ArmciMpi::with_config(p, arm_cfg(kind_of(transport)));
        let bases = rt.malloc(max).expect("malloc");
        rt.barrier();
        let mut out: (RankSample, Vec<u8>) = ((0, 0, 0, 0, 0.0), Vec::new());
        if p.rank() == 0 {
            let src: Vec<u8> = (0..max).map(|i| (i % 251) as u8).collect();
            let mut dst = vec![0u8; max];
            let s0 = rt.stats();
            let t0 = p.clock().now();
            for &base in &bases[1..] {
                for &size in &SIZES {
                    rt.put(&src[..size], base).unwrap();
                    rt.get(base, &mut dst[..size]).unwrap();
                    rt.acc(AccKind::Double(1.0), &src[..size], base).unwrap();
                }
                // 2-D strided put: 64-byte rows every 128 bytes.
                rt.put_strided(&src[..512], &[64], base, &[128], &[64, 8])
                    .unwrap();
            }
            let elapsed = p.clock().now() - t0;
            let s1 = rt.stats();
            let tx = rt.transport_stats();
            let mut images = Vec::new();
            for &base in &bases[1..] {
                let mut image = vec![0u8; max];
                rt.get(base, &mut image).unwrap();
                images.extend(image);
            }
            out = (
                (
                    s1.epochs - s0.epochs,
                    s1.flushes - s0.flushes,
                    tx.offloaded,
                    tx.fallback,
                    elapsed,
                ),
                images,
            );
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    });
    let mut row = fold(platform, "fig3-mix", transport, congested, rpn);
    let mut payload = Vec::new();
    for (s, images) in per_rank {
        add_sample(&mut row, &s);
        if !images.is_empty() {
            payload = images;
        }
    }
    (row, payload)
}

/// The CCSD ladder proxy (§VII): every rank claims tasks (NXTVAL RMW),
/// gets tiles, accumulates results. The bit-compare payload is the
/// synthetic energy.
fn run_ccsd_arm(platform: PlatformId, rpn: u32, transport: &'static str, congested: bool) -> Row {
    let per_rank = Runtime::run_with(RANKS, topo(platform, rpn, congested), move |p| {
        let rt = ArmciMpi::with_config(p, arm_cfg(kind_of(transport)));
        let ccsd = CcsdConfig {
            iterations: 2,
            ..CcsdConfig::tiny()
        };
        let s0 = rt.stats();
        let r = run_ccsd(p, &rt, &ccsd);
        let s1 = rt.stats();
        let tx = rt.transport_stats();
        let sample: RankSample = (
            s1.epochs - s0.epochs,
            s1.flushes - s0.flushes,
            tx.offloaded,
            tx.fallback,
            r.elapsed,
        );
        (sample, r.energy)
    });
    let mut row = fold(platform, "ccsd-proxy", transport, congested, rpn);
    row.energy = per_rank[0].1;
    for (s, _) in &per_rank {
        add_sample(&mut row, s);
    }
    row
}

/// Measures both backends, uncongested and congested, on both workloads
/// across the ranks-per-node sweep. The uncongested MPI-RMA arm is the
/// payload baseline for every other arm of the same workload/layout.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let mut rows = Vec::new();
    for rpn in RANKS_PER_NODE {
        let mut arms = Vec::new();
        let mut baseline_image = Vec::new();
        for transport in ["mpi-rma", "channel"] {
            for congested in [false, true] {
                let (mut row, image) = run_mix(platform, rpn, transport, congested);
                if transport == "mpi-rma" && !congested {
                    baseline_image = image;
                    row.payload_ok = true;
                } else {
                    row.payload_ok = image == baseline_image;
                }
                arms.push(row);
            }
        }
        rows.extend(arms);

        let mut arms = Vec::new();
        let mut baseline_energy = 0.0f64;
        for transport in ["mpi-rma", "channel"] {
            for congested in [false, true] {
                let mut row = run_ccsd_arm(platform, rpn, transport, congested);
                if transport == "mpi-rma" && !congested {
                    baseline_energy = row.energy;
                    row.payload_ok = true;
                } else {
                    row.payload_ok = row.energy.to_bits() == baseline_energy.to_bits();
                }
                arms.push(row);
            }
        }
        rows.extend(arms);
    }
    rows
}

/// Renders the A/B as aligned text with the headline backend deltas.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Wire-backend A/B — MPI RMA vs RAMC-style channels, +/- congestion\n");
    s.push_str(&format!(
        "{:<28} {:>5} {:>8} {:>8} {:>9} {:>9} {:>11} {:>3}\n",
        "workload/transport", "rpn", "epochs", "flushes", "offload", "fallback", "virtual_µs", "ok"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<28} {:>5} {:>8} {:>8} {:>9} {:>9} {:>11.1} {:>3}\n",
            format!(
                "{}/{}{}",
                r.workload,
                r.transport,
                if r.congested { "+cong" } else { "" }
            ),
            r.ranks_per_node,
            r.epochs,
            r.flushes,
            r.offloaded_ops,
            r.fallback_ops,
            r.virtual_s * 1e6,
            if r.payload_ok { "y" } else { "N" },
        ));
    }
    for workload in ["fig3-mix", "ccsd-proxy"] {
        for rpn in RANKS_PER_NODE {
            let get = |transport: &str, congested: bool| {
                rows.iter().find(|r| {
                    r.workload == workload
                        && r.transport == transport
                        && r.congested == congested
                        && r.ranks_per_node == rpn
                })
            };
            if let (Some(mpi), Some(chan)) = (get("mpi-rma", false), get("channel", false)) {
                s.push_str(&format!(
                    "{workload} @ {rpn} ranks/node: channel {:.2}x vs MPI RMA \
                     ({} offloaded / {} fallback)\n",
                    mpi.virtual_s / chan.virtual_s,
                    chan.offloaded_ops,
                    chan.fallback_ops,
                ));
            }
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_bitwise_and_congestion_never_helps() {
        let rows = generate(PlatformId::InfiniBandCluster);
        assert_eq!(rows.len(), RANKS_PER_NODE.len() * 8);
        for r in &rows {
            assert!(
                r.payload_ok,
                "{}/{} congested={} @ {} ranks/node: payload drifted",
                r.workload, r.transport, r.congested, r.ranks_per_node
            );
        }
        let get = |workload: &str, transport: &str, congested: bool, rpn: u32| {
            rows.iter()
                .find(|r| {
                    r.workload == workload
                        && r.transport == transport
                        && r.congested == congested
                        && r.ranks_per_node == rpn
                })
                .unwrap()
        };
        for workload in ["fig3-mix", "ccsd-proxy"] {
            for rpn in RANKS_PER_NODE {
                // The channel backend has no MPI epochs; MPI RMA opens one
                // per blocking access context.
                let mpi = get(workload, "mpi-rma", false, rpn);
                let chan = get(workload, "channel", false, rpn);
                assert!(
                    mpi.epochs > 0,
                    "{workload} @ {rpn}: MPI arm opened no epochs"
                );
                assert_eq!(
                    (chan.epochs, chan.flushes),
                    (0, 0),
                    "{workload} @ {rpn}: channel arm used MPI epochs"
                );
                assert!(
                    chan.offloaded_ops > 0,
                    "{workload} @ {rpn}: channel arm never offloaded"
                );
                // Congestion pricing may only add time. Compared on the
                // mix only: its makespan is deterministic (one driver
                // rank), whereas the proxy's depends on which rank wins
                // each NXTVAL claim and jitters a few percent run to run.
                if workload == "fig3-mix" {
                    for transport in ["mpi-rma", "channel"] {
                        let free = get(workload, transport, false, rpn);
                        let cong = get(workload, transport, true, rpn);
                        assert!(
                            cong.virtual_s >= free.virtual_s,
                            "{workload}/{transport} @ {rpn}: congestion made it faster \
                             ({} < {})",
                            cong.virtual_s,
                            free.virtual_s
                        );
                    }
                }
            }
        }
        // The mix includes strided traffic: the channel backend must
        // report a software-fallback share.
        assert!(get("fig3-mix", "channel", false, 1).fallback_ops > 0);
    }
}
