//! Workload-suite A/B (`BENCH_workloads.json`): the three drivers of
//! `crates/workloads` — graph kernel, halo stencil, KV/parameter-server
//! loop — measured across the runtime's config axes, plus each driver's
//! scalesim rank-scaling series.
//!
//! **Runtime rows** (`source: "runtime"`): every driver runs once per
//! arm — `baseline` (defaults), `transport` (RAMC-style channels),
//! `atomics` (forced mutex fallback), `progress` (per-node agents),
//! `coalesce` (per-op legacy engine) — at 4 ranks, one per node, on the
//! virtual-time runtime. Each arm's payload is checked against the
//! driver's bit-exact oracle AND against the baseline arm's outputs
//! (`verified`): the config axes are *timing* models and must never
//! change results. Provenance columns carry the *resolved* transport /
//! atomics / progress names reported by the runtime, not the requested
//! enum.
//!
//! **DES rows** (`source: "des"`): `workloads::scale` extends each
//! driver's contended resource to 10⁵–10⁶ simulated clients per
//! contention discipline.

use armci_mpi::{ArmciMpi, AtomicsMode, CoalesceMode, Config, ProgressMode, TransportKind};
use mpisim::Runtime;
use serde::Serialize;
use simnet::{Platform, PlatformId};
use workloads::{graph, kv, scale, stencil, GraphOpts, KvOpts, StencilOpts};

/// Ranks of the runtime measurements (one per node; see
/// [`crate::internode`]).
pub const RANKS: usize = 4;

/// Minimum spread (slowest arm / fastest arm of virtual time) each
/// driver must show on at least one config axis — the ISSUE's ≥1.3×
/// acceptance gate. Enforced by the module test and `figures check`.
pub const GATE_SPREAD: f64 = 1.3;

/// One measured arm (or one DES scaling point) of one driver.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// `graph`, `stencil`, or `kv`.
    pub workload: &'static str,
    /// `"runtime"` (measured on the simulated runtime) or `"des"`
    /// (scalesim discrete-event model).
    pub source: &'static str,
    /// Config axis this arm varies: `baseline`, `transport`, `atomics`,
    /// `progress`, `coalesce` — or `scale` for DES rows.
    pub axis: &'static str,
    /// Resolved wire transport (`mpi-rma` / `channel`).
    pub transport: &'static str,
    /// Resolved atomics discipline (`native` / `mutex`; DES rows also
    /// use `sharded`).
    pub atomics: &'static str,
    /// Resolved progress discipline (`none` / `agent`).
    pub progress: &'static str,
    /// Requested coalesce mode of the arm.
    pub coalesce: &'static str,
    /// Ranks of the runtime run, or simulated clients of the DES point.
    pub ranks: u64,
    pub ranks_per_node: u32,
    /// One-sided operations issued (runtime) or modelled (DES).
    pub ops: u64,
    /// Virtual seconds: max over ranks (runtime) / makespan (DES).
    pub virtual_s: f64,
    /// Operations per virtual second.
    pub throughput_per_s: f64,
    /// Oracle verdict: bit-exact oracle passed AND outputs identical to
    /// the baseline arm. Always true on DES rows (nothing to verify).
    pub verified: bool,
}

/// Graph instance for the bench: hub-skewed R-MAT with modelled
/// per-vertex compute and rank skew, so the progress axis has stalls to
/// collapse and the wait analyzers see stragglers.
pub fn graph_opts() -> GraphOpts {
    GraphOpts {
        scale: 6,
        edge_factor: 8,
        vertex_compute_s: 30e-6,
        skew: 2.0,
        ..GraphOpts::default()
    }
}

/// Stencil instance for the bench: 2D Jacobi with a radius-2 halo and
/// periodic boundaries. Periodic wrap splits every halo face into
/// multiple small strided fragments, which is the shape that separates
/// the MPI per-op path from the channel backend's software
/// segmentation (measured ≈1.4× on InfiniBandCluster).
pub fn stencil_opts() -> StencilOpts {
    StencilOpts {
        dims: vec![48, 48],
        iters: 4,
        radius: 2,
        periodic: true,
        ..StencilOpts::default()
    }
}

/// KV instance for the bench: hot-key heavy RMW mix.
pub fn kv_opts() -> KvOpts {
    KvOpts {
        ops_per_rank: 192,
        ..KvOpts::default()
    }
}

/// The five config arms swept per driver.
pub fn arms() -> Vec<(&'static str, Config)> {
    vec![
        ("baseline", Config::default()),
        (
            "transport",
            Config {
                transport: TransportKind::Channel,
                ..Default::default()
            },
        ),
        (
            "atomics",
            Config {
                atomics: AtomicsMode::MutexFallback,
                ..Default::default()
            },
        ),
        (
            "progress",
            Config {
                progress: ProgressMode::Agent,
                ..Default::default()
            },
        ),
        (
            "coalesce",
            Config {
                coalesce: CoalesceMode::PerOp,
                ..Default::default()
            },
        ),
    ]
}

fn coalesce_name(c: CoalesceMode) -> &'static str {
    match c {
        CoalesceMode::PerOp => "per-op",
        CoalesceMode::Batched => "batched",
        CoalesceMode::Datatype => "datatype",
        CoalesceMode::Auto => "auto",
    }
}

/// Output fingerprint of one driver run, for the cross-arm
/// bit-identical check.
#[derive(PartialEq)]
enum Payload {
    Graph(Vec<i64>, Vec<i64>),
    Stencil(Vec<u64>, Vec<u64>),
    Kv(Vec<i64>),
}

struct ArmRun {
    transport: &'static str,
    atomics: &'static str,
    progress: &'static str,
    ops: u64,
    virtual_s: f64,
    verified: bool,
    payload: Payload,
}

fn run_driver(platform: PlatformId, workload: &'static str, cfg: Config) -> ArmRun {
    let rt_cfg = crate::internode(platform);
    match workload {
        "graph" => {
            let opts = graph_opts();
            let cfg2 = cfg.clone();
            let opts2 = opts.clone();
            let out = Runtime::run_with(RANKS, rt_cfg, move |p| {
                let rt = ArmciMpi::with_config(p, cfg2.clone());
                let r = graph::run_graph(p, &rt, &opts2);
                (
                    r,
                    rt.transport_name(),
                    rt.atomics_mode_name(),
                    rt.progress_mode_name(),
                )
            });
            let verified = graph::verify(
                &opts,
                &out.iter().map(|(r, ..)| r.clone()).collect::<Vec<_>>(),
            )
            .is_ok();
            let (r0, transport, atomics, progress) = {
                let (r, t, a, p) = &out[0];
                (r.clone(), *t, *a, *p)
            };
            ArmRun {
                transport,
                atomics,
                progress,
                ops: out.iter().map(|(r, ..)| r.ops).sum(),
                virtual_s: out.iter().map(|(r, ..)| r.elapsed_s).fold(0.0, f64::max),
                verified,
                payload: Payload::Graph(r0.dist, r0.pagerank),
            }
        }
        "stencil" => {
            let opts = stencil_opts();
            let cfg2 = cfg.clone();
            let opts2 = opts.clone();
            let out = Runtime::run_with(RANKS, rt_cfg, move |p| {
                let rt = ArmciMpi::with_config(p, cfg2.clone());
                let r = stencil::run_stencil(p, &rt, &opts2);
                (
                    r,
                    rt.transport_name(),
                    rt.atomics_mode_name(),
                    rt.progress_mode_name(),
                )
            });
            let verified = stencil::verify(
                &opts,
                RANKS,
                &out.iter().map(|(r, ..)| r.clone()).collect::<Vec<_>>(),
            )
            .is_ok();
            let (r0, transport, atomics, progress) = {
                let (r, t, a, p) = &out[0];
                (r.clone(), *t, *a, *p)
            };
            ArmRun {
                transport,
                atomics,
                progress,
                ops: out.iter().map(|(r, ..)| r.ops).sum(),
                virtual_s: out.iter().map(|(r, ..)| r.elapsed_s).fold(0.0, f64::max),
                verified,
                payload: Payload::Stencil(
                    r0.field.iter().map(|v| v.to_bits()).collect(),
                    r0.residuals.iter().map(|v| v.to_bits()).collect(),
                ),
            }
        }
        _ => {
            let opts = kv_opts();
            let cfg2 = cfg.clone();
            let opts2 = opts.clone();
            let out = Runtime::run_with(RANKS, rt_cfg, move |p| {
                let rt = ArmciMpi::with_config(p, cfg2.clone());
                let r = kv::run_kv(p, &rt, &opts2);
                (
                    r,
                    rt.transport_name(),
                    rt.atomics_mode_name(),
                    rt.progress_mode_name(),
                )
            });
            let verified = kv::verify(
                &opts,
                &out.iter().map(|(r, ..)| r.clone()).collect::<Vec<_>>(),
            )
            .is_ok();
            let (r0, transport, atomics, progress) = {
                let (r, t, a, p) = &out[0];
                (r.clone(), *t, *a, *p)
            };
            ArmRun {
                transport,
                atomics,
                progress,
                ops: out.iter().map(|(r, ..)| r.ops).sum(),
                virtual_s: out.iter().map(|(r, ..)| r.elapsed_s).fold(0.0, f64::max),
                verified,
                payload: Payload::Kv(r0.finals),
            }
        }
    }
}

/// Maps a DES contention discipline to the provenance columns.
fn des_provenance(discipline: &'static str) -> (&'static str, &'static str) {
    match discipline {
        "channel" => ("channel", "native"),
        other => ("mpi-rma", other),
    }
}

/// Measures every arm of every driver and appends the DES series.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let mut rows = Vec::new();
    for workload in ["graph", "stencil", "kv"] {
        let mut baseline_payload: Option<Payload> = None;
        for (axis, cfg) in arms() {
            let coalesce = coalesce_name(cfg.coalesce);
            let run = run_driver(platform, workload, cfg);
            // The config axes are timing models: every arm must produce
            // the baseline arm's bits.
            let identical = match &baseline_payload {
                None => {
                    baseline_payload = Some(run.payload);
                    true
                }
                Some(b) => *b == run.payload,
            };
            rows.push(Row {
                platform,
                workload,
                source: "runtime",
                axis,
                transport: run.transport,
                atomics: run.atomics,
                progress: run.progress,
                coalesce,
                ranks: RANKS as u64,
                ranks_per_node: 1,
                ops: run.ops,
                virtual_s: run.virtual_s,
                throughput_per_s: run.ops as f64 / run.virtual_s.max(1e-12),
                verified: run.verified && identical,
            });
        }
    }
    let p = Platform::get(platform);
    let shard_rpn = (p.sockets_per_node * p.cores_per_socket).max(1);
    for s in scale::kv_scale(&p)
        .into_iter()
        .chain(scale::graph_scale(&p))
        .chain(scale::stencil_scale(&p))
    {
        let (transport, atomics) = des_provenance(s.discipline);
        let driver: &'static str = match s.driver {
            "graph" => "graph",
            "stencil" => "stencil",
            _ => "kv",
        };
        rows.push(Row {
            platform,
            workload: driver,
            source: "des",
            axis: "scale",
            transport,
            atomics,
            progress: "none",
            coalesce: "auto",
            ranks: s.clients as u64,
            ranks_per_node: if s.discipline == "sharded" {
                shard_rpn
            } else {
                1
            },
            ops: (s.throughput_per_s * s.makespan_s).round() as u64,
            virtual_s: s.makespan_s,
            throughput_per_s: s.throughput_per_s,
            verified: true,
        });
    }
    rows
}

/// Spread (slowest/fastest virtual time) of one driver across the
/// runtime arms of one axis vs baseline.
pub fn axis_spread(rows: &[Row], workload: &str, axis: &str) -> Option<f64> {
    let of = |a: &str| {
        rows.iter()
            .find(|r| r.source == "runtime" && r.workload == workload && r.axis == a)
            .map(|r| r.virtual_s)
    };
    let (base, arm) = (of("baseline")?, of(axis)?);
    Some(arm.max(base) / arm.min(base).max(f64::MIN_POSITIVE))
}

/// The widest axis spread a driver shows (the ≥1.3× gate reads this).
pub fn best_spread(rows: &[Row], workload: &str) -> Option<(&'static str, f64)> {
    ["transport", "atomics", "progress", "coalesce"]
        .into_iter()
        .filter_map(|a| axis_spread(rows, workload, a).map(|s| (a, s)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Renders the sweep as aligned text with the per-driver headline
/// spreads.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Workload suite — config-axis A/B + DES scaling\n");
    s.push_str(&format!(
        "{:<8} {:<8} {:<10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>12} {:>12} {:>3}\n",
        "workload",
        "source",
        "axis",
        "transport",
        "atomics",
        "progress",
        "ranks",
        "ops",
        "virtual_ms",
        "ops/s",
        "ok"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:<8} {:<10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>12.3} {:>12.0} {:>3}\n",
            r.workload,
            r.source,
            r.axis,
            r.transport,
            r.atomics,
            r.progress,
            r.ranks,
            r.ops,
            r.virtual_s * 1e3,
            r.throughput_per_s,
            if r.verified { "y" } else { "N" },
        ));
    }
    for w in ["graph", "stencil", "kv"] {
        if let Some((axis, spread)) = best_spread(rows, w) {
            s.push_str(&format!("{w}: widest axis {axis}, {spread:.2}x spread\n"));
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_spreads() {
        let rows = generate(PlatformId::InfiniBandCluster);
        print!("{}", render(&rows)); // shown by libtest on failure
        assert_eq!(
            rows.iter().filter(|r| r.source == "runtime").count(),
            3 * arms().len()
        );
        for r in &rows {
            assert!(
                r.verified,
                "{}/{}/{}: oracle or cross-arm payload check failed",
                r.workload, r.source, r.axis
            );
            assert!(!r.transport.is_empty() && !r.atomics.is_empty());
        }
        for w in ["graph", "stencil", "kv"] {
            let (axis, spread) = best_spread(&rows, w).expect("spread rows");
            assert!(
                spread >= GATE_SPREAD,
                "{w}: widest config-axis spread {spread:.2}x ({axis}) below the {GATE_SPREAD}x gate"
            );
        }
        // The DES series must reach the 10^6-client scale the ISSUE
        // names, and the mutex discipline must be the one that hurts.
        let kv_max = rows
            .iter()
            .filter(|r| r.source == "des" && r.workload == "kv")
            .map(|r| r.ranks)
            .max()
            .unwrap();
        assert_eq!(kv_max, 1_000_000);
        let des_kv = |atomics: &str| {
            rows.iter()
                .find(|r| {
                    r.source == "des"
                        && r.workload == "kv"
                        && r.atomics == atomics
                        && r.ranks == 1_000_000
                })
                .unwrap()
                .virtual_s
        };
        assert!(des_kv("mutex") > des_kv("native"));
        assert!(des_kv("sharded") < des_kv("native"));
    }
}
