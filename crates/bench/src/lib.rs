//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§VII) from the simulated runtimes.
//!
//! | artifact | module | paper content |
//! |----------|--------|---------------|
//! | Table II | [`table2`] | experimental platforms |
//! | Figure 3 | [`fig3`]   | contiguous get/put/acc bandwidth vs size |
//! | Figure 4 | [`fig4`]   | strided bandwidth by method, 16 B & 1 KiB segments |
//! | Figure 5 | [`fig5`]   | ARMCI/MPI buffer-registration interoperability |
//! | Figure 6 | [`fig6r`]  | NWChem CCSD and (T) scaling |
//!
//! A supplemental §IX comparison (`ds_compare`) pits ARMCI-MPI against
//! the legacy two-sided data-server ARMCI, [`pipeline`] breaks the
//! transfer engine's plan/acquire/execute/complete stages down over the
//! Figure 3/4 workloads (`BENCH_pipeline.json`), [`pool`] reports
//! the staging buffer pool's hit/miss/registration behaviour on the same
//! workloads (`BENCH_pool.json`), [`coalesce`] A/B-tests the
//! coalescing RMA scheduler and committed-datatype cache against the
//! per-op path on the fig3 mix and the CCSD proxy
//! (`BENCH_coalesce.json`), asserting bit-identical payloads/energies,
//! and [`shm`] A/B-tests the intra-node shared-memory fast path against
//! the forced-wire baseline over a ranks-per-node sweep
//! (`BENCH_shm.json`). [`transport`] A/B-tests the pluggable wire
//! backends — MPI passive-target RMA vs RAMC-style remote memory
//! channels — with and without the congestion-aware shared-NIC queueing
//! model (`BENCH_transport.json`). [`rmw`] sweeps the NXTVAL contention
//! story 1 → 4096 ranks across the three ticket disciplines — native
//! MPI-3 atomics, the §V-D Latham mutex, and the sharded per-node
//! counter (`BENCH_rmw.json`).
//!
//! The `figures` binary prints each as aligned text and (optionally) JSON.
//! Bandwidth numbers are **virtual-time** measurements: the operations
//! really execute on the simulated runtime and the platform cost model
//! prices them, so shapes are deterministic and platform-faithful.

pub mod coalesce;
pub mod ds_compare;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6r;
pub mod harness;
pub mod pipeline;
pub mod pool;
pub mod progress;
pub mod rmw;
pub mod shm;
pub mod table2;
pub mod trace;
pub mod transport;
pub mod workloads;

/// Runtime configuration for `id` with the ranks spread one per node.
///
/// The paper's bandwidth topologies place origin and target on separate
/// nodes, so the wire benchmarks must keep the intra-node shared-memory
/// tier out of their measurements; `BENCH_shm.json` is where that tier
/// is measured, explicitly, A/B against the forced-wire path.
pub fn internode(id: simnet::PlatformId) -> mpisim::RuntimeConfig {
    let mut platform = simnet::Platform::get(id).customized("internode-bench");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = 1;
    mpisim::RuntimeConfig {
        platform,
        ..Default::default()
    }
}

/// Formats a byte count like the paper's axes (powers of two).
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Formats a bandwidth in GB/s with three significant digits.
pub fn fmt_gbps(bps: f64) -> String {
    format!("{:.3}", bps / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(16), "16B");
        assert_eq!(fmt_bytes(2048), "2KiB");
        assert_eq!(fmt_bytes(1 << 22), "4MiB");
    }

    #[test]
    fn gbps_formatting() {
        assert_eq!(fmt_gbps(3.21e9), "3.210");
    }
}
