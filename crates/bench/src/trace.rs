//! Chrome-trace capture: runs instrumented workloads with the recorder
//! enabled and exports the per-rank event streams as Chrome-trace JSON
//! (`chrome://tracing` / Perfetto), a folded metrics report, and the
//! epoch-invariant auditor's verdict.
//!
//! Two canonical captures back the `results/TRACE_*.json` artifacts: the
//! Figure 3 microbenchmark mix (contiguous put/get/acc, strided put, a
//! nonblocking burst, and a direct-local-access region, all in MPI-2
//! per-op epoch mode so lock epochs show up as trace intervals) and one
//! tiny CCSD proxy iteration (the paper's §VII NWChem workload: NXTVAL
//! task claims, tile gets, accumulate flushes). A third capture replays
//! the CCSD iteration through the pipelined schedule with the
//! coalescing scheduler active, so the auditor vets the coarsened-epoch
//! shape alongside the per-op one (`obs audit ccsd-coalesced`).

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Proc, Runtime};
use nwchem_proxy::{run_ccsd, run_ccsd_pipelined, run_ccsd_skewed, CcsdConfig};
use simnet::PlatformId;

/// One captured event stream (every rank, program order within a rank).
pub struct Capture {
    pub events: Vec<obs::Event>,
}

impl Capture {
    /// Chrome-trace JSON (`traceEvents` object form).
    pub fn chrome_json(&self) -> String {
        obs::chrome::to_chrome_trace(&self.events)
    }

    /// Metrics registry folded from the stream.
    pub fn registry(&self) -> obs::metrics::Registry {
        obs::metrics::Registry::from_events(&self.events)
    }

    /// Epoch-invariant audit of the stream.
    pub fn audit(&self) -> Vec<obs::audit::Violation> {
        obs::audit::audit(&self.events)
    }

    /// Wait-state attribution of the stream.
    pub fn waitstate(&self) -> obs::waitstate::WaitReport {
        obs::waitstate::analyze(&self.events)
    }

    /// Critical path through the stream's virtual-time DAG.
    pub fn critpath(&self) -> obs::critpath::CritPath {
        obs::critpath::analyze(&self.events)
    }
}

/// One `OBS_critpath` artifact row: the waitstate + critical-path summary
/// of a capture, in the flat shape `figures check` schema-gates.
pub fn critpath_row(workload: &str, ranks: usize, cap: &Capture) -> serde::Value {
    let ws = cap.waitstate();
    let cp = cap.critpath();
    let cat = |name: &str| ws.cat_s.get(name).copied().unwrap_or(0.0);
    let top = ws
        .top_category()
        .map(|(c, _)| c.to_string())
        .unwrap_or_else(|| "none".to_string());
    serde::Value::Object(vec![
        (
            "workload".to_string(),
            serde::Value::Str(workload.to_string()),
        ),
        ("ranks".to_string(), serde::Value::UInt(ranks as u64)),
        ("makespan_s".to_string(), serde::Value::Float(cp.makespan)),
        ("critpath_s".to_string(), serde::Value::Float(cp.length)),
        (
            "rank_switches".to_string(),
            serde::Value::UInt(u64::from(cp.rank_switches)),
        ),
        (
            "attributed_frac".to_string(),
            serde::Value::Float(ws.attributed_fraction()),
        ),
        ("imbalance".to_string(), serde::Value::Float(ws.imbalance())),
        ("top_wait_category".to_string(), serde::Value::Str(top)),
        (
            "wait_progress_s".to_string(),
            serde::Value::Float(cat("progress")),
        ),
        ("wait_lock_s".to_string(), serde::Value::Float(cat("lock"))),
        (
            "wait_congestion_s".to_string(),
            serde::Value::Float(cat("congestion")),
        ),
        (
            "wait_cas_retry_s".to_string(),
            serde::Value::Float(cat("cas_retry")),
        ),
        (
            "wait_win_sync_s".to_string(),
            serde::Value::Float(cat("win_sync")),
        ),
        ("compute_s".to_string(), serde::Value::Float(ws.compute_s)),
        ("tracked_s".to_string(), serde::Value::Float(ws.tracked_s)),
        (
            "untracked_s".to_string(),
            serde::Value::Float(ws.untracked_s),
        ),
    ])
}

/// Runs `body` on `ranks` simulated processes with the recorder on and
/// collects every rank's events. Holds the recorder's global guard for
/// the duration: the sink is process-wide, so concurrent captures would
/// cross-contaminate.
pub fn capture(ranks: usize, platform: PlatformId, body: impl Fn(&Proc) + Send + Sync) -> Capture {
    let _g = obs::test_guard();
    obs::enable();
    obs::clear();
    let cfg = crate::internode(platform);
    Runtime::run_with(ranks, cfg, |p| {
        body(p);
        obs::flush_thread();
    });
    Capture {
        events: obs::take(),
    }
}

/// Figure 3 workload mix in MPI-2 mode: every transfer runs inside its
/// own passive-target epoch, so the trace shows lock intervals, the
/// four pipeline stages, datatype packs (strided direct), an aggregate
/// nonblocking epoch, and a DLA region.
pub fn fig3_capture() -> Capture {
    capture(2, PlatformId::InfiniBandCluster, |p| {
        // MPI-2 mode: mutex RMW, per-op lock epochs.
        let rt = ArmciMpi::with_config(
            p,
            Config {
                atomics: armci_mpi::AtomicsMode::MutexFallback,
                ..Default::default()
            },
        );
        let bases = rt.malloc(1 << 20).expect("malloc");
        rt.barrier();
        if p.rank() == 0 {
            let src = vec![1u8; 1 << 20];
            let mut dst = vec![0u8; 1 << 16];
            for &size in &[1usize << 10, 1 << 14, 1 << 18] {
                rt.put(&src[..size], bases[1]).unwrap();
            }
            rt.get(bases[1], &mut dst).unwrap();
            rt.acc(AccKind::Int(2), &src[..1 << 12], bases[1]).unwrap();
            // 64 × 256 B segments, 50%-dense target: the direct strided
            // path builds subarray datatypes, so packs appear.
            let count = [256, 64];
            rt.put_strided(&src[..256 * 64], &[256], bases[1], &[512], &count)
                .unwrap();
            // Nonblocking burst: one aggregate epoch for four puts.
            let mut hs = Vec::new();
            for _ in 0..4 {
                hs.push(rt.nb_put(&src[..1 << 12], bases[1]).unwrap());
            }
            rt.wait_all(hs).unwrap();
        }
        rt.barrier();
        // Every rank stores into its own slice through the DLA extension.
        rt.access_mut(bases[p.rank()], 64, &mut |b| {
            b[0] = b[0].wrapping_add(1);
        })
        .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    })
}

/// One tiny CCSD ladder iteration on two ranks (§VII traffic: read_inc
/// task claims, strided tile gets, accumulates).
pub fn ccsd_capture() -> Capture {
    capture(2, PlatformId::InfiniBandCluster, |p| {
        // Paper-vintage MPI-2 shape: the read_inc task claims go through
        // the mutex protocol, so its lock intervals stay in the trace.
        let rt = ArmciMpi::with_config(
            p,
            Config {
                atomics: armci_mpi::AtomicsMode::MutexFallback,
                ..Default::default()
            },
        );
        let cfg = CcsdConfig::tiny();
        run_ccsd(p, &rt, &cfg);
    })
}

/// The same tiny CCSD iteration through the chunked pipelined schedule
/// with the coalescing scheduler active (MPI-3 epochless mode): the
/// trace shows `SchedFlush` instants, coarsened nonblocking epochs and
/// per-target flushes instead of per-op locks. The auditor must accept
/// this shape too — it is the "both paths" half of the coalescing
/// acceptance gate.
pub fn ccsd_coalesced_capture() -> Capture {
    capture(2, PlatformId::InfiniBandCluster, |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                epochless: true,
                // Rank-local tile traffic would take the shared-memory
                // bypass and rob the scheduler of the queued ops this
                // capture exists to show the auditor.
                shm: false,
                ..Config::default()
            },
        );
        let cfg = CcsdConfig::tiny();
        run_ccsd_pipelined(p, &rt, &cfg);
    })
}

/// Ranks used by [`ccsd_skewed_capture`] (artifact-row provenance).
pub const CCSD_SKEWED_RANKS: usize = 4;

/// The statically-scheduled CCSD ladder with a per-rank compute skew:
/// rank `r` runs `1 + skew·r/(P−1)` times slower, so every collective
/// (array syncs, the energy reductions) waits on the top rank. The
/// resulting trace is the wait-state attributor's canonical input — the
/// stalls are real, deterministic, and must land in the `progress`
/// category with the critical path running through the slow rank.
pub fn ccsd_skewed_capture(skew: f64) -> Capture {
    ccsd_skewed_capture_with(skew, armci_mpi::ProgressMode::None)
}

/// [`ccsd_skewed_capture`] under an explicit progress discipline: the
/// `Agent` arm swaps the host-CPU `Wait{Progress}` stalls for priced
/// `AgentDrain` spans, which is how `obs critpath`'s A/B shows the
/// straggler share of the critical path dropping. Uses the async-progress
/// A/B's CCSD shape rather than `CcsdConfig::tiny()`: the coupling reads
/// phase profiles published at the *previous* collective round, so a
/// single-iteration run never engages it and both arms would be
/// trivially identical.
pub fn ccsd_skewed_capture_with(skew: f64, progress: armci_mpi::ProgressMode) -> Capture {
    capture(CCSD_SKEWED_RANKS, PlatformId::InfiniBandCluster, move |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                progress,
                ..Default::default()
            },
        );
        let cfg = crate::progress::ccsd_cfg();
        run_ccsd_skewed(p, &rt, &cfg, skew);
    })
}

/// Ranks used by the workload-suite captures (artifact-row provenance).
pub const WORKLOAD_RANKS: usize = crate::workloads::RANKS;

/// The graph kernel under compute skew: the bench instance's hub-skewed
/// R-MAT with per-vertex compute where rank `r` runs `1 + skew·r/(P−1)`
/// slower. Every BFS level ends in a sync that waits on the straggler,
/// and the hot-spot `read_inc` claims serialise at the hub owner — the
/// trace the ISSUE's ≥0.9 attribution gate reads.
pub fn graph_capture() -> Capture {
    capture(WORKLOAD_RANKS, PlatformId::InfiniBandCluster, |p| {
        let rt = ArmciMpi::with_config(p, Config::default());
        let opts = crate::workloads::graph_opts();
        workloads::graph::run_graph(p, &rt, &opts);
    })
}

/// The halo-exchange stencil: strided ghost fetches through the dtype
/// cache, collective residual folds, alternating-array syncs.
pub fn stencil_capture() -> Capture {
    capture(WORKLOAD_RANKS, PlatformId::InfiniBandCluster, |p| {
        let rt = ArmciMpi::with_config(p, Config::default());
        let opts = crate::workloads::stencil_opts();
        workloads::stencil::run_stencil(p, &rt, &opts);
    })
}

/// The KV/parameter-server loop under the mutex atomics fallback, so
/// the hot-key fetch-and-add contention shows up as lock waits.
pub fn kv_capture() -> Capture {
    capture(WORKLOAD_RANKS, PlatformId::InfiniBandCluster, |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                atomics: armci_mpi::AtomicsMode::MutexFallback,
                ..Default::default()
            },
        );
        let opts = crate::workloads::kv_opts();
        workloads::kv::run_kv(p, &rt, &opts);
    })
}

/// Wall-clock for `reps` rounds of fig3-style contiguous put/get with the
/// recorder in this build's state (recording when compiled in, inert under
/// `--features obs/off`). Events are discarded every round so the buffer
/// stays flat; the number only means something A/B'd against the other
/// build of the same binary.
pub fn contig_overhead(reps: usize) -> std::time::Duration {
    contig_loop(reps, true)
}

/// The same loop with the recorder explicitly disabled (the runtime-off
/// arm of the per-op overhead assertion — one relaxed load per call
/// site). Comparing against [`contig_overhead`] in one `COMPILED_IN`
/// binary isolates the recording cost from build-to-build noise.
pub fn contig_overhead_off(reps: usize) -> std::time::Duration {
    contig_loop(reps, false)
}

/// ARMCI data ops issued by one rep of the overhead loop (3 puts + 3
/// gets), for normalising wall-clock deltas to per-op cost.
pub const OVERHEAD_OPS_PER_REP: u64 = 6;

fn contig_loop(reps: usize, record: bool) -> std::time::Duration {
    let _g = obs::test_guard();
    if record {
        obs::enable();
    } else {
        obs::disable();
    }
    obs::clear();
    let cfg = crate::internode(PlatformId::InfiniBandCluster);
    let start = std::time::Instant::now();
    Runtime::run_with(2, cfg, |p| {
        let rt = ArmciMpi::with_config(p, Config::default());
        let bases = rt.malloc(1 << 18).expect("malloc");
        rt.barrier();
        if p.rank() == 0 {
            let src = vec![1u8; 1 << 14];
            let mut dst = vec![0u8; 1 << 14];
            for _ in 0..reps {
                for &size in &[256usize, 1 << 10, 1 << 14] {
                    rt.put(&src[..size], bases[1]).unwrap();
                    rt.get(bases[1], &mut dst[..size]).unwrap();
                }
                let _ = obs::take_local();
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
    let dt = start.elapsed();
    obs::clear();
    obs::disable();
    dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_trace_is_valid_and_audits_clean() {
        let cap = fig3_capture();
        assert!(!cap.events.is_empty());
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        // The Chrome export parses back and carries the span categories
        // the acceptance gate names: epoch, stage, pack.
        let json = cap.chrome_json();
        let serde::Value::Object(top) = serde_json::from_str(&json).unwrap() else {
            panic!("trace top level is not an object");
        };
        let (_, serde::Value::Array(evs)) = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .unwrap()
            .clone()
        else {
            panic!("traceEvents missing");
        };
        let cats: std::collections::HashSet<String> =
            evs.iter()
                .filter_map(|e| match e {
                    serde::Value::Object(fields) => fields
                        .iter()
                        .find(|(k, _)| k == "cat")
                        .and_then(|(_, v)| match v {
                            serde::Value::Str(s) => Some(s.clone()),
                            _ => None,
                        }),
                    _ => None,
                })
                .collect();
        for want in ["epoch", "stage", "pack", "op", "rma", "dla"] {
            assert!(cats.contains(want), "missing category {want}: {cats:?}");
        }
    }

    #[test]
    fn ccsd_coalesced_trace_audits_clean_and_coalesces() {
        let cap = ccsd_coalesced_capture();
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        let reg = cap.registry();
        // The scheduler actually ran: queued ops outnumber wire runs.
        assert!(reg.counter("sched.flushes") > 0, "no scheduler flushes");
        assert!(reg.counter("sched.ops") > reg.counter("sched.runs"));
        // Epochless completion: flushes, no per-op exclusive epochs.
        assert!(reg.counter("epochs.flushes") > 0);
    }

    #[test]
    fn skewed_ccsd_critpath_meets_acceptance_gates() {
        let cap = ccsd_skewed_capture(4.0);
        assert!(!cap.events.is_empty());
        // ≥90% of non-compute virtual time lands in named categories,
        // the straggler skew shows up as progress waits, and the
        // backward walk covers the makespan exactly.
        let ws = cap.waitstate();
        assert!(
            ws.attributed_fraction() >= 0.9,
            "attribution {:.3} below the 0.9 gate",
            ws.attributed_fraction()
        );
        assert_eq!(ws.top_category().map(|(c, _)| c), Some("progress"));
        let cp = cap.critpath();
        assert!(cp.makespan > 0.0);
        assert!(
            (cp.length - cp.makespan).abs() <= 1e-9 * cp.makespan,
            "critpath {} vs makespan {}",
            cp.length,
            cp.makespan
        );
        assert!(cp.rank_switches > 0, "skew must route the path cross-rank");
        // Virtual time is deterministic: the figures row is identical
        // across re-captures, so the artifact is reproducible byte for
        // byte.
        let again = ccsd_skewed_capture(4.0);
        let row = |c: &Capture| {
            serde_json::to_string_pretty(&critpath_row("ccsd-skewed", CCSD_SKEWED_RANKS, c))
                .unwrap()
        };
        assert_eq!(row(&cap), row(&again));
    }

    #[test]
    fn graph_capture_attributes_and_audits_clean() {
        let cap = graph_capture();
        assert!(!cap.events.is_empty());
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        // The ISSUE acceptance gate: the skewed graph run attributes
        // ≥90% of its wait time to named categories.
        let ws = cap.waitstate();
        assert!(
            ws.attributed_fraction() >= 0.9,
            "graph attribution {:.3} below the 0.9 gate",
            ws.attributed_fraction()
        );
        // Hot-spot claims reach the runtime as read_inc traffic.
        let reg = cap.registry();
        assert!(reg.counter("ga.ga_read_inc") > 0, "no read_inc in trace");
    }

    #[test]
    fn stencil_capture_audits_clean_and_is_deterministic() {
        let cap = stencil_capture();
        assert!(!cap.events.is_empty());
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        assert!(cap.registry().counter("rma.get") > 0);
        let again = stencil_capture();
        let row = |c: &Capture| {
            serde_json::to_string_pretty(&critpath_row("stencil", WORKLOAD_RANKS, c)).unwrap()
        };
        assert_eq!(row(&cap), row(&again));
    }

    #[test]
    fn kv_capture_audits_clean_with_lock_waits() {
        let cap = kv_capture();
        assert!(!cap.events.is_empty());
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        // The mutex-fallback hot-key counters serialise behind the
        // Latham queue, so lock waits must be visible to waitstate.
        let ws = cap.waitstate();
        assert!(
            ws.cat_s.get("lock").copied().unwrap_or(0.0) > 0.0,
            "no lock wait time under mutex atomics: {:?}",
            ws.cat_s
        );
    }

    #[test]
    fn ccsd_trace_audits_clean_and_has_rmw_traffic() {
        let cap = ccsd_capture();
        let v = cap.audit();
        assert!(v.is_empty(), "audit violations: {:?}", v);
        let reg = cap.registry();
        // NXTVAL task claims reach ARMCI_Rmw (the mutex protocol moves
        // the counter with put/get epochs, so no engine-level rmw op).
        assert!(reg.counter("ga.ga_read_inc") > 0, "no read_inc in trace");
        assert!(reg.counter("rma.get") > 0);
        assert!(reg.counter("epochs.exclusive") > 0);
    }
}
