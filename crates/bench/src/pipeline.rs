//! Transfer-engine pipeline breakdown: per-stage counters and virtual
//! time spent in plan / acquire / execute / complete, over the paper's
//! Figure 3 (contiguous) and Figure 4 (strided) workloads, comparing
//! blocking epochs against nonblocking aggregate epochs.
//!
//! Unlike the bandwidth figures this reports *where the time goes inside
//! the runtime*: translation and datatype construction (plan), epoch or
//! flush acquisition (acquire), RMA issue (execute), and completion
//! (complete). The nonblocking rows issue a burst of operations before
//! waiting, so they also show epoch aggregation at work.

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, Config, StageStats};
use mpisim::Runtime;
use serde::Serialize;
use simnet::PlatformId;

/// Operations issued back to back per measurement; the nonblocking path
/// aggregates them into one epoch, the blocking path pays one each.
pub const BURST: usize = 4;

/// One measured workload configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// Wire backend the measurement ran over (see `armci_mpi::transport`).
    pub transport: &'static str,
    /// `"contig-put"`, `"contig-acc"` or `"strided-put"`.
    pub workload: &'static str,
    /// Contiguous: transfer size. Strided: segment size.
    pub bytes: usize,
    /// Strided only: number of segments (1 for contiguous).
    pub segments: usize,
    /// Node layout of the measurement (the wire benchmarks spread ranks
    /// one per node; see `crate::internode`).
    pub ranks_per_node: u32,
    pub nonblocking: bool,
    // Stage counters for the whole burst.
    pub plans: u64,
    pub planned_ops: u64,
    pub acquires: u64,
    pub executed_ops: u64,
    pub completes: u64,
    pub nb_aggregated: u64,
    // Virtual seconds per stage for the whole burst.
    pub plan_s: f64,
    pub acquire_s: f64,
    pub execute_s: f64,
    pub complete_s: f64,
    // Staging buffer pool counters (accumulate staging, bounce copies).
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_reg_s: f64,
    /// Pool hit-rate for this phase alone (0.0 when the pool was idle).
    pub pool_hit_rate: f64,
    // Recorder-derived phase totals (zero when obs is compiled out).
    /// Virtual seconds passive-target locks were held during the phase.
    pub epoch_held_s: f64,
    /// Virtual seconds charged to datatype pack/unpack.
    pub pack_s: f64,
    /// MPI-level RMA operations the recorder saw this phase.
    pub rma_ops: u64,
}

/// Figure 3 contiguous sizes (a coarse subset: 1 KiB … 1 MiB).
pub fn contig_sizes() -> Vec<usize> {
    (10..=20).step_by(2).map(|k| 1usize << k).collect()
}

/// Figure 4 strided shapes: `(segment bytes, segment count)`.
pub fn strided_shapes() -> Vec<(usize, usize)> {
    vec![(16, 64), (1024, 64)]
}

/// Measures every workload on one platform (rank 0 → rank 1, epochless
/// mode so the nonblocking burst genuinely overlaps).
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let cfg = crate::internode(platform);
    Runtime::run_with(2, cfg, move |p| measure(p, platform)).swap_remove(0)
}

/// Marks a phase boundary: snapshots the running stage counters and
/// drains this thread's recorder buffer so [`row`] sees only the
/// phase's own events. The counters themselves are never reset — the
/// cumulative totals stay available to the caller.
fn phase_start(rt: &ArmciMpi) -> StageStats {
    let _ = obs::take_local();
    rt.stage_stats()
}

fn measure(p: &mpisim::Proc, platform: PlatformId) -> Vec<Row> {
    obs::enable();
    let rt = ArmciMpi::with_config(
        p,
        Config {
            epochless: true,
            ..Default::default()
        },
    );
    let max_contig = *contig_sizes().last().unwrap();
    let max_strided = strided_shapes()
        .iter()
        .map(|&(seg, n)| 2 * seg * n)
        .max()
        .unwrap();
    let bases = rt.malloc(max_contig.max(max_strided)).expect("malloc");
    rt.barrier();
    let mut rows = Vec::new();
    if p.rank() == 0 {
        let src = vec![1u8; max_contig.max(max_strided)];
        for &size in &contig_sizes() {
            for nonblocking in [false, true] {
                let s0 = phase_start(&rt);
                if nonblocking {
                    let mut hs = Vec::new();
                    for _ in 0..BURST {
                        hs.push(rt.nb_put(&src[..size], bases[1]).unwrap());
                    }
                    rt.wait_all(hs).unwrap();
                } else {
                    for _ in 0..BURST {
                        rt.put(&src[..size], bases[1]).unwrap();
                    }
                }
                rows.push(row(platform, "contig-put", size, 1, nonblocking, &rt, &s0));
            }
        }
        for &size in &contig_sizes() {
            // Accumulate: the pre-scale staging draws from the buffer
            // pool, so these rows exercise the pool counters.
            for nonblocking in [false, true] {
                let s0 = phase_start(&rt);
                if nonblocking {
                    let mut hs = Vec::new();
                    for _ in 0..BURST {
                        hs.push(rt.nb_acc(AccKind::Int(2), &src[..size], bases[1]).unwrap());
                    }
                    rt.wait_all(hs).unwrap();
                } else {
                    for _ in 0..BURST {
                        rt.acc(AccKind::Int(2), &src[..size], bases[1]).unwrap();
                    }
                }
                rows.push(row(platform, "contig-acc", size, 1, nonblocking, &rt, &s0));
            }
        }
        for &(seg, n) in &strided_shapes() {
            let count = [seg, n];
            let lstr = [seg]; // dense local
            let rstr = [2 * seg]; // 50%-dense remote, as in Figure 4
            for nonblocking in [false, true] {
                let s0 = phase_start(&rt);
                if nonblocking {
                    let mut hs = Vec::new();
                    for _ in 0..BURST {
                        hs.push(
                            rt.nb_put_strided(&src[..n * seg], &lstr, bases[1], &rstr, &count)
                                .unwrap(),
                        );
                    }
                    rt.wait_all(hs).unwrap();
                } else {
                    for _ in 0..BURST {
                        rt.put_strided(&src[..n * seg], &lstr, bases[1], &rstr, &count)
                            .unwrap();
                    }
                }
                rows.push(row(platform, "strided-put", seg, n, nonblocking, &rt, &s0));
            }
        }
    }
    rt.barrier();
    rt.free(bases[p.rank()]).unwrap();
    rows
}

fn row(
    platform: PlatformId,
    workload: &'static str,
    bytes: usize,
    segments: usize,
    nonblocking: bool,
    rt: &ArmciMpi,
    since: &StageStats,
) -> Row {
    let g = rt.stage_stats().delta(since);
    let reg = obs::metrics::Registry::from_events(&obs::take_local());
    Row {
        platform,
        transport: rt.transport_name(),
        workload,
        bytes,
        segments,
        ranks_per_node: 1,
        nonblocking,
        plans: g.plans,
        planned_ops: g.planned_ops,
        acquires: g.acquires,
        executed_ops: g.executed_ops,
        completes: g.completes,
        nb_aggregated: g.nb_aggregated,
        plan_s: g.plan_s,
        acquire_s: g.acquire_s,
        execute_s: g.execute_s,
        complete_s: g.complete_s,
        pool_hits: g.pool_hits,
        pool_misses: g.pool_misses,
        pool_reg_s: g.pool_reg_s,
        pool_hit_rate: g.pool_hit_rate(),
        epoch_held_s: reg.time("epoch_held_s"),
        pack_s: reg.time("pack_s"),
        rma_ops: reg.counter("rma.put")
            + reg.counter("rma.get")
            + reg.counter("rma.acc")
            + reg.counter("rma.rmw"),
    }
}

/// Renders the table as aligned text.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "# Engine pipeline breakdown — burst of {BURST} puts, virtual µs per stage\n"
    ));
    s.push_str(&format!(
        "{:<24} {:>10} {:>5} {:>3} {:>9} {:>9} {:>9} {:>9} {:>4} {:>4}\n",
        "workload", "bytes", "segs", "nb", "plan", "acquire", "execute", "complete", "acq", "agg"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<24} {:>10} {:>5} {:>3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>4} {:>4}\n",
            format!("{}/{}", r.platform.name(), r.workload),
            r.bytes,
            r.segments,
            if r.nonblocking { "y" } else { "n" },
            r.plan_s * 1e6,
            r.acquire_s * 1e6,
            r.execute_s * 1e6,
            r.complete_s * 1e6,
            r.acquires,
            r.nb_aggregated,
        ));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_rows_cover_both_modes() {
        let rows = generate(PlatformId::InfiniBandCluster);
        let expect = 2 * (2 * contig_sizes().len() + strided_shapes().len());
        assert_eq!(rows.len(), expect);
        for r in &rows {
            assert!(r.plans >= BURST as u64);
            assert!(r.executed_ops > 0);
            if r.nonblocking {
                // The burst aggregates into a single flush epoch.
                assert_eq!(r.acquires, 1, "{}: burst not aggregated", r.workload);
                assert!(r.nb_aggregated > 0);
                assert_eq!(r.completes, 1);
            } else {
                // One epoch per blocking transfer.
                assert_eq!(r.acquires as usize, BURST);
                assert_eq!(r.completes as usize, BURST);
            }
        }
    }

    #[test]
    fn accumulate_rows_exercise_the_pool() {
        let rows = generate(PlatformId::InfiniBandCluster);
        for r in rows.iter().filter(|r| r.workload == "contig-acc") {
            // Every accumulate stages through the pool.
            assert_eq!(
                (r.pool_hits + r.pool_misses) as usize,
                BURST,
                "{}B nb={}: takes",
                r.bytes,
                r.nonblocking
            );
            // At most one miss per burst: the first take warms the size
            // class, the rest hit it.
            assert!(r.pool_hits as usize >= BURST - 1);
        }
        // Put rows never touch the pool.
        for r in rows.iter().filter(|r| r.workload == "contig-put") {
            assert_eq!(r.pool_hits + r.pool_misses, 0);
        }
    }

    #[test]
    fn nonblocking_burst_completes_sooner() {
        // The aggregated burst should spend no more total virtual time
        // across stages than the blocking one for large transfers.
        let rows = generate(PlatformId::InfiniBandCluster);
        let total = |r: &Row| r.plan_s + r.acquire_s + r.execute_s + r.complete_s;
        let big = *contig_sizes().last().unwrap();
        let b = rows
            .iter()
            .find(|r| r.workload == "contig-put" && r.bytes == big && !r.nonblocking)
            .unwrap();
        let nb = rows
            .iter()
            .find(|r| r.workload == "contig-put" && r.bytes == big && r.nonblocking)
            .unwrap();
        assert!(
            total(nb) <= total(b) * 1.05,
            "nonblocking {} s vs blocking {} s",
            total(nb),
            total(b)
        );
    }
}
