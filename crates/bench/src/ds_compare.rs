//! Supplemental comparison (paper §IX): ARMCI-MPI (one-sided RMA) versus
//! the legacy data-server ARMCI (two-sided messaging) — contiguous get
//! bandwidth and NXTVAL latency.

use armci::{Armci, ArmciExt};
use armci_ds::run_with_servers;
use armci_mpi::ArmciMpi;
use mpisim::Runtime;
use serde::Serialize;
use simnet::PlatformId;

/// One comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub bytes: usize,
    pub rma_gbps: f64,
    pub ds_gbps: f64,
}

/// Measures contiguous get bandwidth for both designs on `platform`.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let sizes: Vec<usize> = (3..=22).step_by(2).map(|k| 1usize << k).collect();
    let mut rows = Vec::new();
    for &size in &sizes {
        let reps = 3usize;
        let rma = Runtime::run_with(2, crate::internode(platform), move |p| {
            let rt = ArmciMpi::new(p);
            let bases = rt.malloc(size).unwrap();
            rt.barrier();
            let mut t = 0.0;
            if rt.rank() == 0 {
                let mut buf = vec![0u8; size];
                let t0 = p.clock().now();
                for _ in 0..reps {
                    rt.get(bases[1], &mut buf).unwrap();
                }
                t = (p.clock().now() - t0) / reps as f64;
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            t
        })[0];
        let ds = run_with_servers(2, crate::internode(platform), move |p, rt| {
            let bases = rt.malloc(size).unwrap();
            rt.barrier();
            let mut t = 0.0;
            if rt.rank() == 0 {
                let mut buf = vec![0u8; size];
                let t0 = p.clock().now();
                for _ in 0..reps {
                    rt.get(bases[1], &mut buf).unwrap();
                }
                t = (p.clock().now() - t0) / reps as f64;
            }
            rt.barrier();
            rt.free(bases[rt.rank()]).unwrap();
            t
        })[0];
        rows.push(Row {
            bytes: size,
            rma_gbps: size as f64 / rma / 1e9,
            ds_gbps: size as f64 / ds / 1e9,
        });
    }
    rows
}

/// NXTVAL latency (µs) for both designs under `n`-way contention.
pub fn nxtval_latency(platform: PlatformId, n: usize) -> (f64, f64) {
    let iters = 30usize;
    let rma = Runtime::run_with(n, crate::internode(platform), move |p| {
        // This measurement is the paper's §V-D mutex protocol (the render
        // labels it "RMA (mutex)"); native atomics are the default now, so
        // pin the fallback explicitly.
        let rt = ArmciMpi::with_config(
            p,
            armci_mpi::Config {
                atomics: armci_mpi::AtomicsMode::MutexFallback,
                ..Default::default()
            },
        );
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let t0 = p.clock().now();
        for _ in 0..iters {
            rt.fetch_add(bases[0], 1).unwrap();
        }
        let dt = (p.clock().now() - t0) / iters as f64;
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        dt
    })
    .iter()
    .sum::<f64>()
        / n as f64;
    let ds = run_with_servers(n, crate::internode(platform), move |p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let t0 = p.clock().now();
        for _ in 0..iters {
            rt.fetch_add(bases[0], 1).unwrap();
        }
        let dt = (p.clock().now() - t0) / iters as f64;
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
        dt
    })
    .iter()
    .sum::<f64>()
        / n as f64;
    (rma * 1e6, ds * 1e6)
}

/// Renders the comparison.
pub fn render(rows: &[Row], nxtval: (f64, f64)) -> String {
    let mut s = String::from(
        "# Supplemental (§IX) — ARMCI-MPI (RMA) vs data-server ARMCI (two-sided)\n\
         # contiguous get bandwidth, InfiniBand model\n\
         #    bytes   RMA GB/s    DS GB/s\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>10} {:>10.3} {:>10.3}\n",
            crate::fmt_bytes(r.bytes),
            r.rma_gbps,
            r.ds_gbps
        ));
    }
    s.push_str(&format!(
        "# NXTVAL under 4-way contention: RMA (mutex) {:.2} µs, data server {:.2} µs\n",
        nxtval.0, nxtval.1
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rma_beats_data_server_at_large_sizes() {
        let rows = generate(PlatformId::InfiniBandCluster);
        let big = rows.last().unwrap();
        assert!(
            big.rma_gbps > big.ds_gbps,
            "RMA {} vs DS {}",
            big.rma_gbps,
            big.ds_gbps
        );
    }

    #[test]
    fn data_server_nxtval_is_competitive() {
        // The server *is* a dedicated progress engine, so its fetch-add
        // round trip can beat the MPI-2 mutex protocol — the paper's
        // point is the cost elsewhere (a core, bandwidth, serialisation).
        let (rma, ds) = nxtval_latency(PlatformId::InfiniBandCluster, 4);
        assert!(rma > 0.0 && ds > 0.0);
        assert!(ds < 5.0 * rma, "ds {ds}µs vs rma {rma}µs");
    }
}
