//! NXTVAL contention sweep (`BENCH_rmw.json`): the synchronization
//! stack's three ticket disciplines — **native** MPI-3 `fetch_and_op`
//! at the home rank, the paper's §V-D Latham **mutex** protocol, and
//! the **sharded** per-node counter (`armci_mpi::NxtvalCounter`) — under
//! growing rank counts.
//!
//! Two sources feed the same row shape:
//!
//! * `"runtime"` rows ground the service times: the executable runtimes
//!   really take tickets at small rank counts and the per-ticket virtual
//!   cost (and CAS retry count) is measured;
//! * `"des"` rows sweep 1 → 4096 ranks through [`scalesim`] with the
//!   per-discipline service times priced from the same platform model —
//!   the mutex formula of [`nwchem_proxy::profile::nxtval_service`],
//!   `rmw_latency` for native, and the slab atomic cost for shards.
//!
//! The headline is the paper's §VIII-B argument made quantitative:
//! native atomics are strictly cheaper than the mutex at every
//! contended point, and sharding scales ticket throughput past the
//! single-home-rank plateau that caps both flat disciplines.

use armci::Armci;
use armci_mpi::{ArmciMpi, AtomicsMode, Config, NxtvalCounter};
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{nxtval_service, Backend};
use scalesim::{simulate, simulate_sharded, ShardedCounter, SimConfig};
use serde::Serialize;
use simnet::{Platform, PlatformId};

/// Rank counts of the DES sweep (1 → 4096).
pub const DES_RANKS: [usize; 7] = [1, 4, 16, 64, 256, 1024, 4096];

/// Rank counts the executable runtimes ground the model at.
pub const RUNTIME_RANKS: [usize; 2] = [4, 8];

/// Ranks per node of the sweep topology.
pub const RANKS_PER_NODE: u32 = 32;

/// Sharded-counter refill block.
pub const BLOCK: usize = 64;

/// Tickets per rank (weak scaling: total tickets grow with ranks).
const TICKETS_PER_RANK: usize = 8;

/// Per-ticket task time in the DES (compute + comm a claimant performs
/// before returning for the next ticket).
const TASK_S: f64 = 200.0e-6;

/// One measured point of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// Wire backend carrying the counter traffic.
    pub transport: &'static str,
    /// Ticket discipline: `"native"`, `"mutex"` or `"sharded"`.
    pub atomics_mode: &'static str,
    /// `"des"` (scalesim sweep) or `"runtime"` (executable grounding).
    pub source: &'static str,
    pub ranks: u64,
    pub ranks_per_node: u32,
    /// Refill block (1 = flat counter).
    pub block: u64,
    /// Home-rank service time per request, µs.
    pub service_us: f64,
    /// Mean virtual time per ticket observed by a claimant, µs.
    pub ticket_us: f64,
    /// Makespan of the ticketed task loop, seconds.
    pub makespan_s: f64,
    /// Home-counter busy fraction (the flat plateau's cause).
    pub counter_utilisation: f64,
    /// CAS retries observed (runtime rows; zero in the DES).
    pub cas_retries: u64,
}

/// Per-discipline home service time, seconds.
fn service_s(platform: &Platform, mode: &str) -> f64 {
    match mode {
        "mutex" => nxtval_service(platform, Backend::ArmciMpi),
        // Native fetch_and_op at the home rank; the sharded counter uses
        // the same home atomics, 1/block as often.
        _ => platform.mpi.rmw_latency,
    }
}

/// One DES point of the sweep.
fn des_row(platform: &Platform, mode: &'static str, ranks: usize) -> Row {
    let service = service_s(platform, mode);
    let cfg = SimConfig {
        nprocs: ranks,
        ntasks: TICKETS_PER_RANK * ranks,
        task_compute: TASK_S,
        task_comm: 0.0,
        nxtval_service: service,
        nxtval_latency: 2.0 * service,
        congestion_scale: None,
        startup: 0.0,
        iterations: 1,
    };
    let res = if mode == "sharded" {
        simulate_sharded(
            &cfg,
            &ShardedCounter {
                ranks_per_node: RANKS_PER_NODE as usize,
                block: BLOCK,
                shard_service: platform.shm.atomic_cost(),
                shard_latency: 2.0 * platform.shm.atomic_cost(),
            },
        )
    } else {
        simulate(&cfg)
    };
    Row {
        platform: platform.id,
        transport: "mpi-rma",
        atomics_mode: mode,
        source: "des",
        ranks: ranks as u64,
        ranks_per_node: RANKS_PER_NODE,
        block: if mode == "sharded" { BLOCK as u64 } else { 1 },
        service_us: service * 1e6,
        ticket_us: res.makespan * 1e6 / TICKETS_PER_RANK as f64,
        makespan_s: res.makespan,
        counter_utilisation: res.counter_utilisation,
        cas_retries: 0,
    }
}

/// Executable grounding: every rank takes `TICKETS_PER_RANK` tickets
/// through the real runtime; the per-ticket virtual cost is the max over
/// ranks of elapsed / tickets.
fn runtime_row(id: PlatformId, mode: &'static str, ranks: usize) -> Row {
    let mut platform = Platform::get(id).customized("rmw-bench");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = RANKS_PER_NODE;
    let service = service_s(&platform, mode);
    let rcfg = RuntimeConfig {
        platform: platform.clone(),
        ..Default::default()
    };
    let per_rank = Runtime::run_with(ranks, rcfg, move |p| {
        let cfg = match mode {
            "mutex" => Config {
                atomics: AtomicsMode::MutexFallback,
                ..Default::default()
            },
            _ => Config::default(),
        };
        let rt = ArmciMpi::with_config(p, cfg);
        let counter = match mode {
            "sharded" => Some(NxtvalCounter::create(&rt, BLOCK as u16).unwrap()),
            _ => None,
        };
        let bases = rt.malloc(8).unwrap();
        rt.access_mut(bases[p.rank()], 8, &mut |b| b.fill(0))
            .unwrap();
        rt.barrier();
        rt.reset_stats();
        let t0 = p.clock().now();
        for _ in 0..TICKETS_PER_RANK {
            match &counter {
                Some(c) => c.next(&rt).unwrap(),
                None => rt.rmw(armci::RmwOp::FetchAdd(1), bases[0]).unwrap(),
            };
        }
        let elapsed = p.clock().now() - t0;
        let retries = rt.stats().cas_retries;
        rt.barrier();
        if let Some(c) = counter {
            c.drain(&rt).unwrap();
            rt.barrier();
            c.destroy(&rt).unwrap();
        }
        rt.free(bases[p.rank()]).unwrap();
        (elapsed, retries)
    });
    let makespan = per_rank.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let retries: u64 = per_rank.iter().map(|r| r.1).sum();
    Row {
        platform: id,
        transport: "mpi-rma",
        atomics_mode: mode,
        source: "runtime",
        ranks: ranks as u64,
        ranks_per_node: RANKS_PER_NODE,
        block: if mode == "sharded" { BLOCK as u64 } else { 1 },
        service_us: service * 1e6,
        ticket_us: makespan * 1e6 / TICKETS_PER_RANK as f64,
        makespan_s: makespan,
        counter_utilisation: 0.0,
        cas_retries: retries,
    }
}

/// Generates the full sweep for one platform.
pub fn generate(id: PlatformId) -> Vec<Row> {
    let platform = Platform::get(id);
    let mut rows = Vec::new();
    for mode in ["native", "mutex", "sharded"] {
        for ranks in RUNTIME_RANKS {
            rows.push(runtime_row(id, mode, ranks));
        }
        for ranks in DES_RANKS {
            rows.push(des_row(&platform, mode, ranks));
        }
    }
    rows
}

/// Renders the sweep as aligned text with the headline crossovers.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# NXTVAL contention sweep — native vs mutex vs sharded\n");
    s.push_str(&format!(
        "{:<9} {:>7} {:>8} {:>5} {:>10} {:>11} {:>12} {:>6} {:>8}\n",
        "mode/src",
        "ranks",
        "rpn",
        "block",
        "service_µs",
        "ticket_µs",
        "makespan_ms",
        "util%",
        "retries"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<9} {:>7} {:>8} {:>5} {:>10.3} {:>11.2} {:>12.3} {:>5.1}% {:>8}\n",
            format!("{}/{}", r.atomics_mode, &r.source[..3]),
            r.ranks,
            r.ranks_per_node,
            r.block,
            r.service_us,
            r.ticket_us,
            r.makespan_s * 1e3,
            r.counter_utilisation * 100.0,
            r.cas_retries,
        ));
    }
    let des = |mode: &str, ranks: u64| {
        rows.iter()
            .find(|r| r.source == "des" && r.atomics_mode == mode && r.ranks == ranks)
    };
    if let (Some(n), Some(m), Some(sh)) = (
        des("native", 4096),
        des("mutex", 4096),
        des("sharded", 4096),
    ) {
        s.push_str(&format!(
            "@4096 ranks: mutex {:.1} ms, native {:.1} ms ({:.1}x), sharded {:.1} ms ({:.1}x)\n",
            m.makespan_s * 1e3,
            n.makespan_s * 1e3,
            m.makespan_s / n.makespan_s,
            sh.makespan_s * 1e3,
            m.makespan_s / sh.makespan_s,
        ));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_beats_mutex_and_sharded_beats_the_plateau() {
        let rows = generate(PlatformId::InfiniBandCluster);
        let get = |mode: &str, source: &str, ranks: u64| {
            rows.iter()
                .find(|r| r.atomics_mode == mode && r.source == source && r.ranks == ranks)
                .unwrap()
        };
        // DES acceptance: native strictly cheaper than the Latham mutex
        // at every contended point (≥ 64 ranks).
        for ranks in [64u64, 256, 1024, 4096] {
            let native = get("native", "des", ranks);
            let mutex = get("mutex", "des", ranks);
            assert!(
                native.makespan_s < mutex.makespan_s,
                "{ranks} ranks: native {} vs mutex {}",
                native.makespan_s,
                mutex.makespan_s
            );
        }
        // The flat native counter plateaus: home utilisation saturates
        // and ticket throughput stalls between 1024 and 4096 ranks.
        let tp = |r: &Row| TICKETS_PER_RANK as f64 * r.ranks as f64 / r.makespan_s;
        let n1k = get("native", "des", 1024);
        let n4k = get("native", "des", 4096);
        assert!(n4k.counter_utilisation > 0.9, "{}", n4k.counter_utilisation);
        assert!(tp(n4k) < 1.1 * tp(n1k), "flat native must plateau");
        // Sharding scales past it.
        let s4k = get("sharded", "des", 4096);
        assert!(
            tp(s4k) > 2.0 * tp(n4k),
            "sharded {} tickets/s vs flat {}",
            tp(s4k),
            tp(n4k)
        );
        // The home server sheds ~1/block of the load (visible before
        // both curves saturate the window).
        let s1k = get("sharded", "des", 1024);
        assert!(
            s1k.counter_utilisation < 0.5 * n1k.counter_utilisation,
            "sharded home util {} vs flat {}",
            s1k.counter_utilisation,
            n1k.counter_utilisation
        );
        // Executable grounding agrees in ordering: native tickets are
        // cheaper than mutex tickets on the real runtime too.
        for ranks in RUNTIME_RANKS {
            let native = get("native", "runtime", ranks as u64);
            let mutex = get("mutex", "runtime", ranks as u64);
            assert!(
                native.ticket_us < mutex.ticket_us,
                "{ranks} ranks: native {} µs vs mutex {} µs",
                native.ticket_us,
                mutex.ticket_us
            );
        }
    }
}
