//! Asynchronous-progress A/B: the skewed CCSD ladder (every collective
//! and passive-target round waits on the slowest rank) and the fig3-style
//! contiguous mix, each run twice — host-CPU progress
//! ([`armci_mpi::ProgressMode::None`], origins stall while busy targets
//! compute) and per-node progress agents
//! ([`armci_mpi::ProgressMode::Agent`], the agent drains passive-target
//! rounds at its priced service cost).
//!
//! Payloads and energies must be bit-identical across arms: the agent is
//! a *timing* model — it changes when remote rounds complete, never what
//! they do. The headline gate is the collapse of `progress.stall_s`
//! (passive-target service stalls; `progress.straggler_s` — load
//! imbalance at synchronisation points — is reported separately because
//! no agent can compute a straggler's work for it) at skew ≥ 1.0: the
//! ISSUE's ≥3× reduction, measured service-inclusively so the agent pays
//! for its own drain time. The fig3 mix is the control: no compute means
//! no stalls to collapse, so both arms must price identically there.

use armci_mpi::{ArmciMpi, Config, ProgressMode};
use mpisim::Runtime;
use nwchem_proxy::{run_ccsd_skewed, CcsdConfig};
use serde::Serialize;
use simnet::PlatformId;

/// Compute-skew factors swept by the A/B (`run_ccsd_skewed`'s `skew`:
/// rank `r` computes `1 + skew·r/(P−1)` times slower).
pub const SKEWS: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// Ranks of the skewed runs (one per node; see [`crate::internode`]).
pub const RANKS: usize = 4;

/// The skew level the stall-collapse acceptance gate reads
/// (`figures check` asserts the ≥3× reduction on this row).
pub const GATE_SKEW: f64 = 2.0;

/// Minimum `none/agent` stall ratio at skew ≥ 1.0 (the ISSUE gate).
pub const GATE_RATIO: f64 = 3.0;

/// One measured arm of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// Wire backend the measurement ran over.
    pub transport: &'static str,
    /// `"ccsd-skewed"` or `"fig3-mix"`.
    pub workload: &'static str,
    /// Resolved progress discipline: `"none"` (host CPU) or `"agent"`.
    pub progress: &'static str,
    /// Compute-skew factor (zero for the fig3 mix).
    pub skew: f64,
    pub ranks: u32,
    /// Node layout (one rank per node; see `crate::internode`).
    pub ranks_per_node: u32,
    /// Virtual seconds ranks spent stalled waiting for a busy target's
    /// host CPU to service passive-target rounds (`progress.stall_s`) —
    /// the component a progress agent collapses.
    pub stall_s: f64,
    /// Virtual seconds blocked behind slower peers at synchronisation
    /// points (`progress.straggler_s`) — load imbalance proper, which no
    /// agent can fix; reported so the split is visible in the artifact.
    pub straggler_s: f64,
    /// Virtual seconds of agent service time (`agent_drain_s`): what the
    /// collapsed stalls were *replaced by*. The headline ratio divides by
    /// `stall_s + agent_s`, so the agent pays for its own service cost.
    pub agent_s: f64,
    /// Passive-target rounds the agent drained (zero under `"none"`).
    pub agent_ops: u64,
    /// Stall seconds the agent avoided (`progress.offloaded_s`).
    pub offloaded_s: f64,
    /// Rank 0's virtual seconds for the measured phase.
    pub virtual_s: f64,
    /// CCSD synthetic energy (zero for the fig3 mix).
    pub energy: f64,
    /// Energy (or payload image) bit-identical to the `"none"` arm.
    pub payload_ok: bool,
}

/// CCSD shape for the A/B (shared with the `obs critpath ccsd-skewed`
/// capture): big enough tiles that one DGEMM span dwarfs the agent's
/// µs-scale service cost, and enough iterations that the warm-up
/// iteration (no published phase profile yet → no coupling) does not
/// dilute the measured collapse.
pub fn ccsd_cfg() -> CcsdConfig {
    CcsdConfig {
        no: 8,
        nv: 16,
        tile_o: 4,
        tile_v: 8,
        iterations: 4,
    }
}

fn mode_of(arm: &str) -> ProgressMode {
    match arm {
        "agent" => ProgressMode::Agent,
        _ => ProgressMode::None,
    }
}

/// Runs the skewed CCSD ladder under one progress arm with the recorder
/// on; folds the trace into the stall/agent metrics.
fn run_skewed(platform: PlatformId, skew: f64, arm: &'static str) -> Row {
    let _g = obs::test_guard();
    obs::enable();
    obs::clear();
    let cfg = crate::internode(platform);
    let mut out = Runtime::run_with(RANKS, cfg, move |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                progress: mode_of(arm),
                ..Default::default()
            },
        );
        let r = run_ccsd_skewed(p, &rt, &ccsd_cfg(), skew);
        let row = (r, rt.progress_mode_name(), rt.transport_name());
        obs::flush_thread();
        row
    });
    let events = obs::take();
    obs::disable();
    let reg = obs::metrics::Registry::from_events(&events);
    let (r, progress, transport) = out.swap_remove(0);
    Row {
        platform,
        transport,
        workload: "ccsd-skewed",
        progress,
        skew,
        ranks: RANKS as u32,
        ranks_per_node: 1,
        stall_s: reg.time("progress.stall_s"),
        straggler_s: reg.time("progress.straggler_s"),
        agent_s: reg.time("agent_drain_s"),
        agent_ops: reg.counter("progress.agent_ops"),
        offloaded_s: reg.time("progress.offloaded_s"),
        virtual_s: r.elapsed,
        energy: r.energy,
        payload_ok: false,
    }
}

/// Contiguous put/get/acc rounds with no modelled compute: the control
/// arm — nothing for an agent to drain, so both disciplines must price
/// identically and move identical bytes.
fn run_mix(platform: PlatformId, arm: &'static str) -> (Row, Vec<u8>) {
    use armci::{AccKind, Armci};
    const BYTES: usize = 1 << 16;
    let _g = obs::test_guard();
    obs::enable();
    obs::clear();
    let cfg = crate::internode(platform);
    let mut out = Runtime::run_with(2, cfg, move |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                progress: mode_of(arm),
                ..Default::default()
            },
        );
        let bases = rt.malloc(BYTES).expect("malloc");
        rt.barrier();
        let mut row = None;
        let mut image = Vec::new();
        if p.rank() == 0 {
            let t0 = p.clock().now();
            let src: Vec<u8> = (0..BYTES).map(|b| (b as u8).wrapping_mul(13)).collect();
            // Small i32 payload: 4 rounds of `dst += 3·src` stay far from
            // i32 overflow (debug builds check accumulate arithmetic).
            let acc_src: Vec<u8> = (0..128i32).flat_map(|i| (i % 7).to_le_bytes()).collect();
            let mut dst = vec![0u8; 1 << 12];
            for round in 0..4usize {
                for &size in &[256usize, 1 << 10, 1 << 12] {
                    rt.put(&src[..size], bases[1].offset(round * (1 << 12)))
                        .unwrap();
                    rt.get(bases[1].offset(round * (1 << 12)), &mut dst[..size])
                        .unwrap();
                }
                // Disjoint from every put region ([0, 16 KiB)).
                rt.acc(AccKind::Int(3), &acc_src, bases[1].offset(1 << 15))
                    .unwrap();
            }
            let t1 = p.clock().now();
            let mut img = vec![0u8; BYTES];
            rt.get(bases[1], &mut img).unwrap();
            image = img;
            row = Some((t1 - t0, rt.progress_mode_name(), rt.transport_name()));
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        obs::flush_thread();
        (row, image)
    });
    let events = obs::take();
    obs::disable();
    let reg = obs::metrics::Registry::from_events(&events);
    let (row, image) = out.swap_remove(0);
    let (virtual_s, progress, transport) = row.expect("rank 0 row");
    (
        Row {
            platform,
            transport,
            workload: "fig3-mix",
            progress,
            skew: 0.0,
            ranks: 2,
            ranks_per_node: 1,
            stall_s: reg.time("progress.stall_s"),
            straggler_s: reg.time("progress.straggler_s"),
            agent_s: reg.time("agent_drain_s"),
            agent_ops: reg.counter("progress.agent_ops"),
            offloaded_s: reg.time("progress.offloaded_s"),
            virtual_s,
            energy: 0.0,
            payload_ok: false,
        },
        image,
    )
}

/// Measures both arms of both workloads on one platform.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let mut rows = Vec::new();
    for &skew in &SKEWS {
        let mut baseline: Option<f64> = None;
        for arm in ["none", "agent"] {
            let mut row = run_skewed(platform, skew, arm);
            row.payload_ok = match baseline {
                None => {
                    baseline = Some(row.energy);
                    true
                }
                Some(e) => e.to_bits() == row.energy.to_bits(),
            };
            rows.push(row);
        }
    }
    let mut ref_image: Option<Vec<u8>> = None;
    for arm in ["none", "agent"] {
        let (mut row, image) = run_mix(platform, arm);
        row.payload_ok = match &ref_image {
            None => {
                ref_image = Some(image);
                true
            }
            Some(r) => r == &image,
        };
        rows.push(row);
    }
    rows
}

/// The `none/agent` stall-collapse ratio for one workload/skew pair, if
/// both arms are present: host-arm service stalls over what the agent arm
/// pays instead (any residual stall *plus* the agent's own service time),
/// so the agent is never credited for stalls it merely re-priced.
pub fn collapse_ratio(rows: &[Row], workload: &str, skew: f64) -> Option<f64> {
    let get = |arm: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.progress == arm && r.skew == skew)
    };
    let (none, agent) = (get("none")?, get("agent")?);
    Some(none.stall_s / (agent.stall_s + agent.agent_s).max(f64::MIN_POSITIVE))
}

/// Renders the A/B as aligned text with the headline collapse ratios.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Async-progress A/B — progress.stall_s per arm\n");
    s.push_str(&format!(
        "{:<24} {:>5} {:>10} {:>10} {:>9} {:>10} {:>10} {:>11} {:>3}\n",
        "workload/progress",
        "skew",
        "stall_ms",
        "stragl_ms",
        "agent_ms",
        "agent_ops",
        "offl_ms",
        "virtual_ms",
        "ok"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<24} {:>5.1} {:>10.3} {:>10.3} {:>9.3} {:>10} {:>10.3} {:>11.3} {:>3}\n",
            format!("{}/{}", r.workload, r.progress),
            r.skew,
            r.stall_s * 1e3,
            r.straggler_s * 1e3,
            r.agent_s * 1e3,
            r.agent_ops,
            r.offloaded_s * 1e3,
            r.virtual_s * 1e3,
            if r.payload_ok { "y" } else { "N" },
        ));
    }
    for &skew in &SKEWS {
        if let Some(ratio) = collapse_ratio(rows, "ccsd-skewed", skew) {
            s.push_str(&format!(
                "ccsd-skewed skew={skew}: {ratio:.1}x stall reduction with the agent\n"
            ));
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_collapses_progress_stalls_with_identical_energies() {
        if !obs::COMPILED_IN {
            return; // stall metrics ride the recorder
        }
        let rows = generate(PlatformId::InfiniBandCluster);
        print!("{}", render(&rows)); // shown by libtest on failure
        assert_eq!(rows.len(), 2 * SKEWS.len() + 2);
        for r in &rows {
            assert!(
                r.payload_ok,
                "{}/{} skew {}: payload/energy drifted",
                r.workload, r.progress, r.skew
            );
        }
        // The ISSUE gate: ≥3× stall collapse wherever the imbalance is
        // real (skew ≥ 1.0) — both the raw metric across arms and the
        // service-inclusive ratio (agent charged for its own service
        // time) — and the agent never slows the run down.
        for &skew in &SKEWS {
            let get = |arm: &str| {
                rows.iter()
                    .find(|r| r.workload == "ccsd-skewed" && r.progress == arm && r.skew == skew)
                    .unwrap()
            };
            let (none, agent) = (get("none"), get("agent"));
            if skew >= 1.0 {
                assert!(
                    none.stall_s > 0.0,
                    "skew {skew}: host arm recorded no progress stalls to collapse"
                );
                assert!(
                    agent.stall_s * GATE_RATIO <= none.stall_s,
                    "skew {skew}: progress.stall_s {:.6} -> {:.6} below the {GATE_RATIO}x gate",
                    none.stall_s,
                    agent.stall_s,
                );
                let ratio = collapse_ratio(&rows, "ccsd-skewed", skew).unwrap();
                assert!(
                    ratio >= GATE_RATIO,
                    "skew {skew}: service-inclusive ratio {ratio:.2} below the {GATE_RATIO}x gate"
                );
            }
            assert!(
                agent.virtual_s <= none.virtual_s,
                "skew {skew}: agent arm slower than host arm"
            );
        }
        // Agent provenance: drains happen exactly on the agent arms of
        // the compute-skewed runs, never on the host arms.
        for r in &rows {
            match (r.workload, r.progress) {
                ("ccsd-skewed", "agent") if r.skew > 0.0 => {
                    assert!(r.agent_ops > 0, "skew {}: agent drained nothing", r.skew)
                }
                ("fig3-mix", _) => assert_eq!(
                    r.agent_ops, 0,
                    "no-compute control must have nothing to drain"
                ),
                (_, "none") => assert_eq!(r.agent_ops, 0, "host arm recorded agent drains"),
                _ => {}
            }
        }
        // The no-compute control prices identically under both arms.
        let mix = |arm: &str| {
            rows.iter()
                .find(|r| r.workload == "fig3-mix" && r.progress == arm)
                .unwrap()
        };
        assert_eq!(
            mix("none").virtual_s.to_bits(),
            mix("agent").virtual_s.to_bits(),
            "agent changed the price of an idle-target workload"
        );
    }
}
