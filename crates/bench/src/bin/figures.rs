//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [table2|fig3|fig4|fig5|fig6|pipeline|all] [--json DIR]
//! ```
//!
//! Text goes to stdout; with `--json DIR`, machine-readable data is also
//! written to `DIR/<artifact>.json`.

use bench::{fig3, fig4, fig5, fig6r, pipeline, table2};
use simnet::PlatformId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut json_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = Some(it.next().expect("--json needs a directory").clone());
            }
            other => what = other.to_string(),
        }
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    let dump = |name: &str, data: &str| {
        if let Some(dir) = &json_dir {
            std::fs::write(format!("{dir}/{name}.json"), data).expect("write json");
        }
    };

    let all = what == "all";
    if all || what == "table2" {
        println!("{}", table2::render());
    }
    if all || what == "fig3" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig3: {}", id.name());
            let series = fig3::generate(id);
            print!("{}", fig3::render(&series));
            everything.extend(series);
        }
        dump("fig3", &serde_json::to_string_pretty(&everything).unwrap());
    }
    if all || what == "fig4" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig4: {}", id.name());
            let series = fig4::generate(id);
            print!("{}", fig4::render(&series));
            everything.extend(series);
        }
        dump("fig4", &serde_json::to_string_pretty(&everything).unwrap());
    }
    if all || what == "fig5" {
        eprintln!("[figures] fig5");
        let series = fig5::generate();
        print!("{}", fig5::render(&series));
        dump("fig5", &serde_json::to_string_pretty(&series).unwrap());
    }
    if all || what == "ds" {
        eprintln!("[figures] ds comparison");
        let rows = bench::ds_compare::generate(PlatformId::InfiniBandCluster);
        let nx = bench::ds_compare::nxtval_latency(PlatformId::InfiniBandCluster, 4);
        print!("{}", bench::ds_compare::render(&rows, nx));
        dump("ds_compare", &serde_json::to_string_pretty(&rows).unwrap());
    }
    if all || what == "fig6-ablation" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] fig6-ablation: {}", id.name());
            let series = fig6r::generate_ablation(id);
            print!("{}", fig6r::render(&series));
            everything.extend(series);
        }
        dump(
            "fig6_ablation",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "pipeline" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] pipeline: {}", id.name());
            let rows = pipeline::generate(id);
            print!("{}", pipeline::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_pipeline",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "fig6" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig6: {}", id.name());
            let series = fig6r::generate(id);
            print!("{}", fig6r::render(&series));
            everything.extend(series);
        }
        dump("fig6", &serde_json::to_string_pretty(&everything).unwrap());
    }
}
