//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [table2|fig3|fig4|fig5|fig6|pipeline|pool|coalesce|shm|transport|rmw|
//!          progress|harness|workloads|trace|critpath|all] [--json DIR]
//! figures check DIR
//! ```
//!
//! Text goes to stdout; with `--json DIR`, machine-readable data is also
//! written to `DIR/<artifact>.json`. `check` validates the schema of the
//! JSON artifacts in `DIR` (keys present, value kinds unchanged) and
//! exits nonzero on drift — CI regenerates the cheap artifacts and runs
//! it to catch accidental serializer or struct-shape changes.

use bench::{
    coalesce, fig3, fig4, fig5, fig6r, pipeline, pool, rmw, shm, table2, trace, transport,
};
use serde::Value;
use simnet::PlatformId;

/// Expected value kind for one field of an artifact row.
#[derive(Clone, Copy)]
enum Kind {
    Str,
    Bool,
    UInt,
    Num,
    /// Array of `(bytes, bandwidth)` pairs.
    Points,
}

fn kind_ok(v: &Value, k: Kind) -> bool {
    match k {
        Kind::Str => matches!(v, Value::Str(_)),
        Kind::Bool => matches!(v, Value::Bool(_)),
        Kind::UInt => matches!(v, Value::UInt(_)),
        Kind::Num => matches!(v, Value::UInt(_) | Value::Int(_) | Value::Float(_)),
        Kind::Points => match v {
            Value::Array(items) => items.iter().all(|p| match p {
                Value::Array(pair) => {
                    pair.len() == 2 && kind_ok(&pair[0], Kind::UInt) && kind_ok(&pair[1], Kind::Num)
                }
                _ => false,
            }),
            _ => false,
        },
    }
}

/// Schemas of the artifacts CI regenerates: every row must be an object
/// carrying exactly these fields with these kinds.
fn schemas() -> Vec<(&'static str, Vec<(&'static str, Kind)>)> {
    vec![
        (
            "fig5",
            vec![
                ("combo", Kind::Str),
                ("warm", Kind::Bool),
                ("points", Kind::Points),
            ],
        ),
        (
            "BENCH_pipeline",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("workload", Kind::Str),
                ("bytes", Kind::UInt),
                ("segments", Kind::UInt),
                ("ranks_per_node", Kind::UInt),
                ("nonblocking", Kind::Bool),
                ("plans", Kind::UInt),
                ("planned_ops", Kind::UInt),
                ("acquires", Kind::UInt),
                ("executed_ops", Kind::UInt),
                ("completes", Kind::UInt),
                ("nb_aggregated", Kind::UInt),
                ("plan_s", Kind::Num),
                ("acquire_s", Kind::Num),
                ("execute_s", Kind::Num),
                ("complete_s", Kind::Num),
                ("pool_hits", Kind::UInt),
                ("pool_misses", Kind::UInt),
                ("pool_reg_s", Kind::Num),
                ("pool_hit_rate", Kind::Num),
                ("epoch_held_s", Kind::Num),
                ("pack_s", Kind::Num),
                ("rma_ops", Kind::UInt),
            ],
        ),
        (
            "BENCH_coalesce",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("workload", Kind::Str),
                ("arm", Kind::Str),
                ("ranks_per_node", Kind::UInt),
                ("epochs", Kind::UInt),
                ("flushes", Kind::UInt),
                ("wire_ops", Kind::UInt),
                ("queued_ops", Kind::UInt),
                ("runs", Kind::UInt),
                ("segs_in", Kind::UInt),
                ("segs_out", Kind::UInt),
                ("dtype_hits", Kind::UInt),
                ("dtype_misses", Kind::UInt),
                ("dtype_hit_rate", Kind::Num),
                ("virtual_s", Kind::Num),
                ("payload_ok", Kind::Bool),
                ("energy", Kind::Num),
            ],
        ),
        (
            "BENCH_shm",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("workload", Kind::Str),
                ("arm", Kind::Str),
                ("ranks_per_node", Kind::UInt),
                ("shm_hits", Kind::UInt),
                ("shm_bypass_bytes", Kind::UInt),
                ("executed_ops", Kind::UInt),
                ("shm_hit_rate", Kind::Num),
                ("virtual_s", Kind::Num),
                ("payload_ok", Kind::Bool),
                ("energy", Kind::Num),
            ],
        ),
        (
            "BENCH_transport",
            vec![
                ("platform", Kind::Str),
                ("workload", Kind::Str),
                ("transport", Kind::Str),
                ("congested", Kind::Bool),
                ("ranks_per_node", Kind::UInt),
                ("epochs", Kind::UInt),
                ("flushes", Kind::UInt),
                ("offloaded_ops", Kind::UInt),
                ("fallback_ops", Kind::UInt),
                ("virtual_s", Kind::Num),
                ("payload_ok", Kind::Bool),
                ("energy", Kind::Num),
            ],
        ),
        (
            "BENCH_pool",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("backend", Kind::Str),
                ("workload", Kind::Str),
                ("phase", Kind::Str),
                ("ranks_per_node", Kind::UInt),
                ("hits", Kind::UInt),
                ("misses", Kind::UInt),
                ("hit_rate", Kind::Num),
                ("reg_cost_s", Kind::Num),
                ("high_water_bytes", Kind::UInt),
            ],
        ),
        (
            "OBS_critpath",
            vec![
                ("workload", Kind::Str),
                ("ranks", Kind::UInt),
                ("makespan_s", Kind::Num),
                ("critpath_s", Kind::Num),
                ("rank_switches", Kind::UInt),
                ("attributed_frac", Kind::Num),
                ("imbalance", Kind::Num),
                ("top_wait_category", Kind::Str),
                ("wait_progress_s", Kind::Num),
                ("wait_lock_s", Kind::Num),
                ("wait_congestion_s", Kind::Num),
                ("wait_cas_retry_s", Kind::Num),
                ("wait_win_sync_s", Kind::Num),
                ("compute_s", Kind::Num),
                ("tracked_s", Kind::Num),
                ("untracked_s", Kind::Num),
            ],
        ),
        (
            "BENCH_rmw",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("atomics_mode", Kind::Str),
                ("source", Kind::Str),
                ("ranks", Kind::UInt),
                ("ranks_per_node", Kind::UInt),
                ("block", Kind::UInt),
                ("service_us", Kind::Num),
                ("ticket_us", Kind::Num),
                ("makespan_s", Kind::Num),
                ("counter_utilisation", Kind::Num),
                ("cas_retries", Kind::UInt),
            ],
        ),
        (
            "BENCH_progress",
            vec![
                ("platform", Kind::Str),
                ("transport", Kind::Str),
                ("workload", Kind::Str),
                ("progress", Kind::Str),
                ("skew", Kind::Num),
                ("ranks", Kind::UInt),
                ("ranks_per_node", Kind::UInt),
                ("stall_s", Kind::Num),
                ("straggler_s", Kind::Num),
                ("agent_s", Kind::Num),
                ("agent_ops", Kind::UInt),
                ("offloaded_s", Kind::Num),
                ("virtual_s", Kind::Num),
                ("energy", Kind::Num),
                ("payload_ok", Kind::Bool),
            ],
        ),
        (
            "BENCH_harness",
            vec![
                ("bench", Kind::Str),
                ("stage", Kind::Str),
                ("ops", Kind::UInt),
                ("ns_per_op", Kind::Num),
            ],
        ),
        (
            "BENCH_workloads",
            vec![
                ("platform", Kind::Str),
                ("workload", Kind::Str),
                ("source", Kind::Str),
                ("axis", Kind::Str),
                ("transport", Kind::Str),
                ("atomics", Kind::Str),
                ("progress", Kind::Str),
                ("coalesce", Kind::Str),
                ("ranks", Kind::UInt),
                ("ranks_per_node", Kind::UInt),
                ("ops", Kind::UInt),
                ("virtual_s", Kind::Num),
                ("throughput_per_s", Kind::Num),
                ("verified", Kind::Bool),
            ],
        ),
    ]
}

/// Validates the artifacts in `dir` against the schemas; returns the
/// number of problems found (each reported on stderr).
fn check(dir: &str) -> usize {
    let mut problems = 0;
    let mut complain = |msg: String| {
        eprintln!("[figures check] {msg}");
        problems += 1;
    };
    for (name, fields) in schemas() {
        let path = format!("{dir}/{name}.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                complain(format!("{path}: unreadable: {e}"));
                continue;
            }
        };
        let rows = match serde_json::from_str(&text) {
            Ok(Value::Array(rows)) if !rows.is_empty() => rows,
            Ok(Value::Array(_)) => {
                complain(format!("{path}: empty artifact"));
                continue;
            }
            Ok(_) => {
                complain(format!("{path}: top level is not an array"));
                continue;
            }
            Err(e) => {
                complain(format!("{path}: {e}"));
                continue;
            }
        };
        for (i, row) in rows.iter().enumerate() {
            let Value::Object(entries) = row else {
                complain(format!("{path}[{i}]: row is not an object"));
                continue;
            };
            for &(key, kind) in &fields {
                match entries.iter().find(|(k, _)| k == key) {
                    None => complain(format!("{path}[{i}]: missing field `{key}`")),
                    Some((_, v)) if !kind_ok(v, kind) => {
                        complain(format!("{path}[{i}]: field `{key}` has wrong kind"))
                    }
                    _ => {}
                }
            }
            for (k, _) in entries {
                if !fields.iter().any(|(key, _)| key == k) {
                    complain(format!("{path}[{i}]: unexpected field `{k}`"));
                }
            }
            // Every BENCH_* row must say what node layout produced it
            // (the intra-node shared-memory tier makes numbers
            // meaningless without the ranks-per-node context) and which
            // wire backend carried the traffic.
            if name.starts_with("BENCH_") {
                match entries.iter().find(|(k, _)| k == "ranks_per_node") {
                    Some((_, Value::UInt(n))) if *n >= 1 => {}
                    Some((_, Value::UInt(_))) => {
                        complain(format!("{path}[{i}]: `ranks_per_node` must be >= 1"))
                    }
                    _ => {} // missing/mistyped already reported above
                }
                match entries.iter().find(|(k, _)| k == "transport") {
                    Some((_, Value::Str(t))) if !t.is_empty() => {}
                    Some((_, Value::Str(_))) => {
                        complain(format!("{path}[{i}]: `transport` must be nonempty"))
                    }
                    _ => {} // missing/mistyped already reported above
                }
            }
            // The profiler's acceptance gates ride the schema check: the
            // backward walk must cover the whole makespan, and the
            // skewed-CCSD run must attribute at least 90% of its
            // non-compute time to named wait/communication categories.
            if name == "OBS_critpath" {
                let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                if let (Some(Value::Float(m)), Some(Value::Float(c))) =
                    (get("makespan_s"), get("critpath_s"))
                {
                    if (m - c).abs() > 1e-9 * m.abs().max(1.0) {
                        complain(format!(
                            "{path}[{i}]: critpath_s {c} does not cover makespan_s {m}"
                        ));
                    }
                }
                if let Some(Value::Str(w)) = get("workload") {
                    // The skewed workloads — CCSD and the graph kernel —
                    // must attribute ≥90% of their non-compute time.
                    if w == "ccsd-skewed" || w == "graph" {
                        match get("attributed_frac") {
                            Some(Value::Float(f)) if *f >= 0.9 => {}
                            Some(Value::Float(f)) => complain(format!(
                                "{path}[{i}]: {w} attribution {f:.3} below the 0.9 gate"
                            )),
                            _ => {} // missing/mistyped already reported above
                        }
                    }
                }
            }
            // Atomic measurements are meaningless without knowing which
            // synchronization discipline produced them: every BENCH_rmw
            // row must carry its `atomics_mode` provenance.
            if name == "BENCH_rmw" {
                match entries.iter().find(|(k, _)| k == "atomics_mode") {
                    Some((_, Value::Str(m)))
                        if matches!(m.as_str(), "native" | "mutex" | "sharded") => {}
                    Some((_, Value::Str(m))) => complain(format!(
                        "{path}[{i}]: unknown `atomics_mode` `{m}` \
                         (want native|mutex|sharded)"
                    )),
                    _ => {} // missing/mistyped already reported above
                }
            }
            // Workload-suite rows carry the resolved provenance of all
            // three config axes, and every runtime row must have passed
            // its driver's bit-exact oracle (plus the cross-arm
            // identity check) — an unverified measurement is a bug, not
            // a data point.
            if name == "BENCH_workloads" {
                let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                match get("transport") {
                    Some(Value::Str(t)) if matches!(t.as_str(), "mpi-rma" | "channel") => {}
                    Some(Value::Str(t)) => complain(format!(
                        "{path}[{i}]: unknown `transport` `{t}` (want mpi-rma|channel)"
                    )),
                    _ => {} // missing/mistyped already reported above
                }
                match get("atomics") {
                    Some(Value::Str(m)) if matches!(m.as_str(), "native" | "mutex" | "sharded") => {
                    }
                    Some(Value::Str(m)) => complain(format!(
                        "{path}[{i}]: unknown `atomics` `{m}` (want native|mutex|sharded)"
                    )),
                    _ => {} // missing/mistyped already reported above
                }
                match get("progress") {
                    Some(Value::Str(m)) if matches!(m.as_str(), "none" | "agent") => {}
                    Some(Value::Str(m)) => complain(format!(
                        "{path}[{i}]: unknown `progress` `{m}` (want none|agent)"
                    )),
                    _ => {} // missing/mistyped already reported above
                }
                if matches!(get("source"), Some(Value::Str(s)) if s == "runtime") {
                    if let Some(Value::Bool(false)) = get("verified") {
                        complain(format!(
                            "{path}[{i}]: runtime arm failed its bit-exact oracle"
                        ));
                    }
                }
            }
            // Stall measurements are meaningless without knowing which
            // progress discipline produced them: every BENCH_progress
            // row carries its resolved `progress` provenance, and the
            // agent must never have broken payload determinism.
            if name == "BENCH_progress" {
                match entries.iter().find(|(k, _)| k == "progress") {
                    Some((_, Value::Str(m))) if matches!(m.as_str(), "none" | "agent") => {}
                    Some((_, Value::Str(m))) => complain(format!(
                        "{path}[{i}]: unknown `progress` `{m}` (want none|agent)"
                    )),
                    _ => {} // missing/mistyped already reported above
                }
                if let Some((_, Value::Bool(false))) =
                    entries.iter().find(|(k, _)| k == "payload_ok")
                {
                    complain(format!(
                        "{path}[{i}]: agent arm drifted payload/energy from the host arm"
                    ));
                }
            }
        }
        // The async-progress acceptance gate rides the schema check: at
        // the headline skew the agent must collapse progress-wait
        // seconds by at least the ISSUE's factor.
        if name == "BENCH_progress" {
            check_stall_collapse(&path, &rows, &mut complain);
        }
        // The workload-suite gates: each driver must show a measurable
        // spread on at least one config axis and carry a DES scaling
        // series.
        if name == "BENCH_workloads" {
            check_workload_spread(&path, &rows, &mut complain);
        }
        // The harness seed must cover both recorder arms with sane
        // measurements, or the overhead A/B has nothing to diff against.
        if name == "BENCH_harness" {
            check_harness(&path, &rows, &mut complain);
        }
        eprintln!("[figures check] {path}: {} rows", rows.len());
    }
    for (name, want_cats) in [
        ("TRACE_fig3", &["epoch", "stage", "pack", "op"][..]),
        ("TRACE_ccsd", &["epoch", "stage", "op"][..]),
    ] {
        check_trace(dir, name, want_cats, &mut complain);
    }
    check_report(dir, &mut complain);
    problems
}

/// The BENCH_progress stall-collapse gate: on the `ccsd-skewed` pair at
/// the gate skew, the host arm's `stall_s` must be at least
/// [`bench::progress::GATE_RATIO`]× what the agent arm pays instead —
/// residual stall plus the agent's own service time (`agent_s`), the
/// same service-inclusive ratio [`bench::progress::collapse_ratio`]
/// reports.
fn check_stall_collapse(path: &str, rows: &[Value], complain: &mut impl FnMut(String)) {
    let field = |row: &Value, key: &str| -> Option<Value> {
        let Value::Object(entries) = row else {
            return None;
        };
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    };
    let mut gated = 0usize;
    let skewed: Vec<&Value> = rows
        .iter()
        .filter(|r| {
            matches!(field(r, "workload"), Some(Value::Str(w)) if w == "ccsd-skewed")
                && field(r, "skew").as_ref().and_then(&num) == Some(bench::progress::GATE_SKEW)
        })
        .collect();
    let arm = |name: &str| {
        skewed
            .iter()
            .find(|r| matches!(field(r, "progress"), Some(Value::Str(p)) if p == name))
            .copied()
    };
    if let (Some(none), Some(agent)) = (arm("none"), arm("agent")) {
        if let (Some(n), Some(a), Some(svc)) = (
            field(none, "stall_s").as_ref().and_then(&num),
            field(agent, "stall_s").as_ref().and_then(&num),
            field(agent, "agent_s").as_ref().and_then(&num),
        ) {
            gated += 1;
            if n < bench::progress::GATE_RATIO * (a + svc) {
                complain(format!(
                    "{path}: skew {} stall_s {n:.6} vs agent {:.6} (stall+service) — \
                     below the {}x collapse gate",
                    bench::progress::GATE_SKEW,
                    a + svc,
                    bench::progress::GATE_RATIO,
                ));
            }
        }
    }
    if gated == 0 {
        complain(format!(
            "{path}: no ccsd-skewed none/agent pair at skew {} to gate",
            bench::progress::GATE_SKEW
        ));
    }
}

/// The BENCH_workloads gates: per driver, the virtual-time spread
/// (slowest/fastest of an axis arm vs baseline) must reach
/// [`bench::workloads::GATE_SPREAD`] on at least one config axis —
/// otherwise the A/B proves nothing — and the scalesim series must be
/// present (≥1 `des` row) so the 10⁵–10⁶-client scaling story ships
/// with the measured rows.
fn check_workload_spread(path: &str, rows: &[Value], complain: &mut impl FnMut(String)) {
    let field = |row: &Value, key: &str| -> Option<Value> {
        let Value::Object(entries) = row else {
            return None;
        };
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let sfield = |row: &Value, key: &str| -> Option<String> {
        match field(row, key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    };
    for workload in ["graph", "stencil", "kv"] {
        let virtual_of = |axis: &str| -> Option<f64> {
            rows.iter()
                .find(|r| {
                    sfield(r, "source").as_deref() == Some("runtime")
                        && sfield(r, "workload").as_deref() == Some(workload)
                        && sfield(r, "axis").as_deref() == Some(axis)
                })
                .and_then(|r| match field(r, "virtual_s") {
                    Some(Value::Float(f)) => Some(f),
                    _ => None,
                })
        };
        let Some(base) = virtual_of("baseline") else {
            complain(format!("{path}: no runtime baseline row for `{workload}`"));
            continue;
        };
        let best = ["transport", "atomics", "progress", "coalesce"]
            .into_iter()
            .filter_map(|a| {
                let v = virtual_of(a)?;
                Some(v.max(base) / v.min(base).max(f64::MIN_POSITIVE))
            })
            .fold(0.0f64, f64::max);
        if best < bench::workloads::GATE_SPREAD {
            complain(format!(
                "{path}: `{workload}` widest axis spread {best:.2}x below the {}x gate",
                bench::workloads::GATE_SPREAD
            ));
        }
        if !rows.iter().any(|r| {
            sfield(r, "source").as_deref() == Some("des")
                && sfield(r, "workload").as_deref() == Some(workload)
        }) {
            complain(format!("{path}: no DES scaling rows for `{workload}`"));
        }
    }
}

/// The BENCH_harness gate: both recorder arms of the engine hot loop
/// must be present with nonzero op counts and positive per-op times —
/// the seed rows are what future engine changes get diffed against.
fn check_harness(path: &str, rows: &[Value], complain: &mut impl FnMut(String)) {
    let field = |row: &Value, key: &str| -> Option<Value> {
        let Value::Object(entries) = row else {
            return None;
        };
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    for stage in ["record-on", "record-off"] {
        let Some(row) = rows
            .iter()
            .find(|r| matches!(field(r, "stage"), Some(Value::Str(s)) if s == stage))
        else {
            complain(format!("{path}: missing `{stage}` arm"));
            continue;
        };
        match field(row, "ops") {
            Some(Value::UInt(n)) if n > 0 => {}
            Some(Value::UInt(_)) => complain(format!("{path}: `{stage}` measured zero ops")),
            _ => {} // missing/mistyped already reported above
        }
        match field(row, "ns_per_op") {
            Some(Value::Float(f)) if f > 0.0 => {}
            Some(Value::Float(_)) => complain(format!("{path}: `{stage}` ns_per_op not positive")),
            _ => {} // missing/mistyped already reported above
        }
    }
}

/// Validates a Chrome-trace artifact: a top-level object whose nonempty
/// `traceEvents` array holds events with `name`/`cat`/`ph`/`ts` fields
/// and covers at least `want_cats` categories.
fn check_trace(dir: &str, name: &str, want_cats: &[&str], complain: &mut impl FnMut(String)) {
    let path = format!("{dir}/{name}.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return complain(format!("{path}: unreadable: {e}")),
    };
    let top = match serde_json::from_str(&text) {
        Ok(Value::Object(top)) => top,
        Ok(_) => return complain(format!("{path}: top level is not an object")),
        Err(e) => return complain(format!("{path}: {e}")),
    };
    let Some((_, Value::Array(events))) = top.iter().find(|(k, _)| k == "traceEvents") else {
        return complain(format!("{path}: missing `traceEvents` array"));
    };
    if events.is_empty() {
        return complain(format!("{path}: empty trace"));
    }
    let mut cats = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let Value::Object(fields) = e else {
            return complain(format!("{path}: traceEvents[{i}] is not an object"));
        };
        for key in ["name", "cat", "ph", "ts"] {
            if !fields.iter().any(|(k, _)| k == key) {
                return complain(format!("{path}: traceEvents[{i}] missing `{key}`"));
            }
        }
        if let Some((_, Value::Str(c))) = fields.iter().find(|(k, _)| k == "cat") {
            cats.insert(c.clone());
        }
    }
    for want in want_cats {
        if !cats.contains(*want) {
            complain(format!("{path}: no `{want}` spans in trace"));
        }
    }
    eprintln!("[figures check] {path}: {} events", events.len());
}

/// Validates the OBS_report artifact: `counters` / `times` /
/// `histograms` maps with the kinds the registry serialises.
fn check_report(dir: &str, complain: &mut impl FnMut(String)) {
    let path = format!("{dir}/OBS_report.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return complain(format!("{path}: unreadable: {e}")),
    };
    let top = match serde_json::from_str(&text) {
        Ok(Value::Object(top)) => top,
        Ok(_) => return complain(format!("{path}: top level is not an object")),
        Err(e) => return complain(format!("{path}: {e}")),
    };
    for (section, kind) in [
        ("counters", Kind::UInt),
        ("times", Kind::Num),
        ("histograms", Kind::Num),
    ] {
        let Some((_, Value::Object(entries))) = top.iter().find(|(k, _)| k == section) else {
            complain(format!("{path}: missing `{section}` object"));
            continue;
        };
        if section == "histograms" {
            for (k, v) in entries {
                let ok = matches!(v, Value::Object(h)
                    if h.iter().any(|(hk, _)| hk == "count")
                        && h.iter().any(|(hk, _)| hk == "buckets_log2us"));
                if !ok {
                    complain(format!("{path}: histogram `{k}` malformed"));
                }
            }
        } else {
            for (k, v) in entries {
                if !kind_ok(v, kind) {
                    complain(format!("{path}: `{section}.{k}` has wrong kind"));
                }
            }
        }
    }
    if !top
        .iter()
        .any(|(k, v)| k == "counters" && matches!(v, Value::Object(o) if !o.is_empty()))
    {
        complain(format!("{path}: report has no counters"));
    }
    eprintln!("[figures check] {path}: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        let dir = args.get(1).cloned().unwrap_or_else(|| "results".into());
        let problems = check(&dir);
        if problems > 0 {
            eprintln!("[figures check] FAILED: {problems} problem(s)");
            std::process::exit(1);
        }
        eprintln!("[figures check] OK");
        return;
    }
    let mut what = "all".to_string();
    let mut json_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = Some(it.next().expect("--json needs a directory").clone());
            }
            other => what = other.to_string(),
        }
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    let dump = |name: &str, data: &str| {
        if let Some(dir) = &json_dir {
            std::fs::write(format!("{dir}/{name}.json"), data).expect("write json");
        }
    };

    let all = what == "all";
    if all || what == "table2" {
        println!("{}", table2::render());
    }
    if all || what == "fig3" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig3: {}", id.name());
            let series = fig3::generate(id);
            print!("{}", fig3::render(&series));
            everything.extend(series);
        }
        dump("fig3", &serde_json::to_string_pretty(&everything).unwrap());
    }
    if all || what == "fig4" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig4: {}", id.name());
            let series = fig4::generate(id);
            print!("{}", fig4::render(&series));
            everything.extend(series);
        }
        dump("fig4", &serde_json::to_string_pretty(&everything).unwrap());
    }
    if all || what == "fig5" {
        eprintln!("[figures] fig5");
        let mut series = fig5::generate();
        series.extend(fig5::generate_warm());
        print!("{}", fig5::render(&series));
        dump("fig5", &serde_json::to_string_pretty(&series).unwrap());
    }
    if all || what == "ds" {
        eprintln!("[figures] ds comparison");
        let rows = bench::ds_compare::generate(PlatformId::InfiniBandCluster);
        let nx = bench::ds_compare::nxtval_latency(PlatformId::InfiniBandCluster, 4);
        print!("{}", bench::ds_compare::render(&rows, nx));
        dump("ds_compare", &serde_json::to_string_pretty(&rows).unwrap());
    }
    if all || what == "fig6-ablation" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] fig6-ablation: {}", id.name());
            let series = fig6r::generate_ablation(id);
            print!("{}", fig6r::render(&series));
            everything.extend(series);
        }
        dump(
            "fig6_ablation",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "pipeline" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] pipeline: {}", id.name());
            let rows = pipeline::generate(id);
            print!("{}", pipeline::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_pipeline",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "coalesce" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] coalesce: {}", id.name());
            let rows = coalesce::generate(id);
            print!("{}", coalesce::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_coalesce",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "shm" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] shm: {}", id.name());
            let rows = shm::generate(id);
            print!("{}", shm::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_shm",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "transport" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] transport: {}", id.name());
            let rows = transport::generate(id);
            print!("{}", transport::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_transport",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "rmw" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] rmw: {}", id.name());
            let rows = rmw::generate(id);
            print!("{}", rmw::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_rmw",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "pool" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] pool: {}", id.name());
            let rows = pool::generate(id);
            print!("{}", pool::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_pool",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "progress" {
        let mut everything = Vec::new();
        for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
            eprintln!("[figures] progress: {}", id.name());
            let rows = bench::progress::generate(id);
            print!("{}", bench::progress::render(&rows));
            everything.extend(rows);
        }
        dump(
            "BENCH_progress",
            &serde_json::to_string_pretty(&everything).unwrap(),
        );
    }
    if all || what == "workloads" {
        eprintln!("[figures] workloads: InfiniBand cluster");
        let rows = bench::workloads::generate(PlatformId::InfiniBandCluster);
        print!("{}", bench::workloads::render(&rows));
        dump(
            "BENCH_workloads",
            &serde_json::to_string_pretty(&rows).unwrap(),
        );
    }
    if all || what == "harness" {
        eprintln!("[figures] harness");
        let rows = bench::harness::generate();
        print!("{}", bench::harness::render(&rows));
        dump(
            "BENCH_harness",
            &serde_json::to_string_pretty(&rows).unwrap(),
        );
    }
    if all || what == "fig6" {
        let mut everything = Vec::new();
        for id in PlatformId::ALL {
            eprintln!("[figures] fig6: {}", id.name());
            let series = fig6r::generate(id);
            print!("{}", fig6r::render(&series));
            everything.extend(series);
        }
        dump("fig6", &serde_json::to_string_pretty(&everything).unwrap());
    }
    if all || what == "trace" {
        let mut violations = 0usize;
        let mut combined = Vec::new();
        for (name, cap) in [
            ("TRACE_fig3", trace::fig3_capture()),
            ("TRACE_ccsd", trace::ccsd_capture()),
        ] {
            eprintln!("[figures] {name}: {} events", cap.events.len());
            for v in cap.audit() {
                eprintln!("[figures] {name} AUDIT {v}");
                violations += 1;
            }
            dump(name, &cap.chrome_json());
            combined.extend(cap.events);
        }
        let reg = obs::metrics::Registry::from_events(&combined);
        print!("{}", reg.render());
        dump("OBS_report", &reg.to_json());
        if violations > 0 {
            eprintln!("[figures] FAILED: {violations} epoch-invariant violation(s)");
            std::process::exit(1);
        }
    }
    if all || what == "critpath" {
        let mut rows = Vec::new();
        for (workload, ranks, cap) in [
            ("fig3", 2usize, trace::fig3_capture()),
            (
                "ccsd-skewed",
                trace::CCSD_SKEWED_RANKS,
                trace::ccsd_skewed_capture(4.0),
            ),
            (
                "ccsd-skewed-agent",
                trace::CCSD_SKEWED_RANKS,
                trace::ccsd_skewed_capture_with(4.0, armci_mpi::ProgressMode::Agent),
            ),
            ("graph", trace::WORKLOAD_RANKS, trace::graph_capture()),
            ("stencil", trace::WORKLOAD_RANKS, trace::stencil_capture()),
            ("kv", trace::WORKLOAD_RANKS, trace::kv_capture()),
        ] {
            eprintln!("[figures] critpath {workload}: {} events", cap.events.len());
            println!("== {workload} ==");
            print!("{}", cap.waitstate().render());
            print!("{}", cap.critpath().render());
            rows.push(trace::critpath_row(workload, ranks, &cap));
        }
        dump(
            "OBS_critpath",
            &serde_json::to_string_pretty(&serde::Value::Array(rows)).unwrap(),
        );
    }
}
