//! Observability CLI over the instrumented runtime.
//!
//! ```text
//! obs trace [fig3|ccsd|ccsd-coalesced] [--out PATH] [--jsonl]
//! obs report [fig3|ccsd|ccsd-coalesced|all]
//! obs audit [fig3|ccsd|ccsd-coalesced]
//! obs overhead [REPS]
//! ```
//!
//! `trace` captures the named workload with the recorder enabled and
//! writes Chrome-trace JSON (open in `chrome://tracing` or Perfetto) —
//! or one event per line with `--jsonl` — to `--out` (default stdout).
//! `report` prints the one-screen folded metrics summary. `audit`
//! replays the trace through the epoch-invariant auditor and exits
//! nonzero if any illegal interleaving is found. `overhead` times a
//! contiguous put/get loop for A/B against a `--features obs/off` build
//! of this same binary (the <5% recorder-overhead acceptance check).

use bench::trace::{self, Capture};

fn capture_named(name: &str) -> Capture {
    match name {
        "fig3" => trace::fig3_capture(),
        "ccsd" => trace::ccsd_capture(),
        "ccsd-coalesced" => trace::ccsd_coalesced_capture(),
        other => {
            eprintln!("[obs] unknown workload `{other}` (want fig3, ccsd or ccsd-coalesced)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("report");
    let mut workload = "fig3".to_string();
    let mut out: Option<String> = None;
    let mut jsonl = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            "--jsonl" => jsonl = true,
            other => workload = other.to_string(),
        }
    }
    match cmd {
        "trace" => {
            let cap = capture_named(&workload);
            let text = if jsonl {
                obs::chrome::to_jsonl(&cap.events)
            } else {
                cap.chrome_json()
            };
            match &out {
                Some(path) => {
                    if let Some(dir) = std::path::Path::new(path).parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    std::fs::write(path, &text).expect("write trace");
                    eprintln!("[obs] {} events -> {path}", cap.events.len());
                }
                None => print!("{text}"),
            }
        }
        "report" => {
            let caps = if workload == "all" {
                vec![trace::fig3_capture(), trace::ccsd_capture()]
            } else {
                vec![capture_named(&workload)]
            };
            let events: Vec<obs::Event> = caps.into_iter().flat_map(|c| c.events).collect();
            print!("{}", obs::metrics::Registry::from_events(&events).render());
        }
        "audit" => {
            let cap = capture_named(&workload);
            let violations = cap.audit();
            for v in &violations {
                eprintln!("[obs audit] {v}");
            }
            if violations.is_empty() {
                eprintln!(
                    "[obs audit] {workload}: clean ({} events)",
                    cap.events.len()
                );
            } else {
                eprintln!("[obs audit] FAILED: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        "overhead" => {
            let reps: usize = workload.parse().unwrap_or(200);
            let dt = trace::contig_overhead(reps);
            println!(
                "contig put/get x{reps}: {:.1} ms (recorder {})",
                dt.as_secs_f64() * 1e3,
                if obs::COMPILED_IN {
                    "recording"
                } else {
                    "compiled out"
                }
            );
        }
        other => {
            eprintln!("[obs] unknown command `{other}` (want trace, report, audit or overhead)");
            std::process::exit(2);
        }
    }
}
