//! Observability CLI over the instrumented runtime.
//!
//! ```text
//! obs trace [WORKLOAD] [--out PATH] [--jsonl] [--skew X]
//! obs report [WORKLOAD|all] [--progress none|agent]
//! obs audit [WORKLOAD]
//! obs critpath [WORKLOAD] [--skew X] [--progress none|agent] [--out PATH]
//! obs overhead [REPS] [--assert-ns N]
//! ```
//!
//! `WORKLOAD` is one of `fig3`, `ccsd`, `ccsd-coalesced`, `ccsd-skewed`,
//! or the workload-suite drivers `graph`, `stencil` and `kv`
//! (`obs critpath graph` answers "where does the skewed BFS wait?").
//!
//! `trace` captures the named workload with the recorder enabled and
//! writes Chrome-trace JSON (open in `chrome://tracing` or Perfetto) —
//! or one event per line with `--jsonl` — to `--out` (default stdout).
//! `report` prints the one-screen folded metrics summary. `audit`
//! replays the trace through the epoch-invariant auditor and exits
//! nonzero if any illegal interleaving is found. `critpath` runs the
//! wait-state attributor and critical-path walker over the capture,
//! prints both summaries, and with `--out` writes the flat JSON row the
//! `OBS_critpath` artifact carries; with the recorder compiled out
//! (`--features obs/off`) it reports "no events" and exits zero.
//! `overhead` times a contiguous put/get loop for A/B against a
//! `--features obs/off` build of this same binary; `--assert-ns N`
//! instead times recorder-on vs recorder-off in this binary and fails
//! if the per-op delta exceeds `N` nanoseconds.
//!
//! `--progress` selects the async-progress discipline for the
//! `ccsd-skewed` workload (default `none`): run `critpath ccsd-skewed`
//! once per arm to see the straggler's share of the attributed waits
//! collapse when the per-node agent drains passive-target rounds.

use armci_mpi::ProgressMode;
use bench::trace::{self, Capture};

fn capture_named(name: &str, skew: f64, progress: ProgressMode) -> Capture {
    match name {
        "fig3" => trace::fig3_capture(),
        "ccsd" => trace::ccsd_capture(),
        "ccsd-coalesced" => trace::ccsd_coalesced_capture(),
        "ccsd-skewed" => trace::ccsd_skewed_capture_with(skew, progress),
        "graph" => trace::graph_capture(),
        "stencil" => trace::stencil_capture(),
        "kv" => trace::kv_capture(),
        other => {
            eprintln!(
                "[obs] unknown workload `{other}` \
                 (want fig3, ccsd, ccsd-coalesced, ccsd-skewed, graph, stencil or kv)"
            );
            std::process::exit(2);
        }
    }
}

fn ranks_of(name: &str) -> usize {
    match name {
        "ccsd-skewed" => trace::CCSD_SKEWED_RANKS,
        "graph" | "stencil" | "kv" => trace::WORKLOAD_RANKS,
        _ => 2,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("report");
    let mut workload = "fig3".to_string();
    let mut out: Option<String> = None;
    let mut jsonl = false;
    let mut skew = 4.0f64;
    let mut progress = ProgressMode::None;
    let mut assert_ns: Option<f64> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            "--jsonl" => jsonl = true,
            "--progress" => {
                progress = match it.next().expect("--progress needs a mode").as_str() {
                    "none" => ProgressMode::None,
                    "agent" => ProgressMode::Agent,
                    "auto" => ProgressMode::Auto,
                    other => {
                        eprintln!(
                            "[obs] unknown progress mode `{other}` (want none, agent or auto)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--skew" => {
                skew = it
                    .next()
                    .expect("--skew needs a factor")
                    .parse()
                    .expect("--skew wants a number")
            }
            "--assert-ns" => {
                assert_ns = Some(
                    it.next()
                        .expect("--assert-ns needs a bound")
                        .parse()
                        .expect("--assert-ns wants a number"),
                )
            }
            other => workload = other.to_string(),
        }
    }
    match cmd {
        "trace" => {
            let cap = capture_named(&workload, skew, progress);
            let text = if jsonl {
                obs::chrome::to_jsonl(&cap.events)
            } else {
                cap.chrome_json()
            };
            match &out {
                Some(path) => {
                    if let Some(dir) = std::path::Path::new(path).parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    std::fs::write(path, &text).expect("write trace");
                    eprintln!("[obs] {} events -> {path}", cap.events.len());
                }
                None => print!("{text}"),
            }
        }
        "report" => {
            let caps = if workload == "all" {
                vec![trace::fig3_capture(), trace::ccsd_capture()]
            } else {
                vec![capture_named(&workload, skew, progress)]
            };
            let events: Vec<obs::Event> = caps.into_iter().flat_map(|c| c.events).collect();
            print!("{}", obs::metrics::Registry::from_events(&events).render());
        }
        "critpath" => {
            let cap = capture_named(&workload, skew, progress);
            if cap.events.is_empty() {
                // The obs/off build records nothing; the analyzers have
                // nothing to say, which is not an error.
                println!("[obs critpath] {workload}: no events (recorder off)");
                return;
            }
            print!("{}", cap.waitstate().render());
            print!("{}", cap.critpath().render());
            if let Some(path) = &out {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let row = trace::critpath_row(&workload, ranks_of(&workload), &cap);
                let text = serde_json::to_string_pretty(&serde::Value::Array(vec![row])).unwrap();
                std::fs::write(path, text).expect("write critpath row");
                eprintln!("[obs critpath] row -> {path}");
            }
        }
        "audit" => {
            let cap = capture_named(&workload, skew, progress);
            let violations = cap.audit();
            for v in &violations {
                eprintln!("[obs audit] {v}");
            }
            if violations.is_empty() {
                eprintln!(
                    "[obs audit] {workload}: clean ({} events)",
                    cap.events.len()
                );
            } else {
                eprintln!("[obs audit] FAILED: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        "overhead" => {
            let reps: usize = workload.parse().unwrap_or(200);
            match assert_ns {
                None => {
                    let dt = trace::contig_overhead(reps);
                    println!(
                        "contig put/get x{reps}: {:.1} ms (recorder {})",
                        dt.as_secs_f64() * 1e3,
                        if obs::COMPILED_IN {
                            "recording"
                        } else {
                            "compiled out"
                        }
                    );
                }
                Some(bound) => {
                    // On/off A/B inside one binary: take the best of a few
                    // rounds of each arm so scheduler noise doesn't fail
                    // the gate, then normalise to per-op nanoseconds.
                    let best = |f: &dyn Fn(usize) -> std::time::Duration| {
                        (0..3).map(|_| f(reps)).min().unwrap()
                    };
                    let off = best(&trace::contig_overhead_off);
                    let on = best(&trace::contig_overhead);
                    let ops = reps as f64 * trace::OVERHEAD_OPS_PER_REP as f64;
                    let per_op_ns = ((on.as_secs_f64() - off.as_secs_f64()) * 1e9 / ops).max(0.0);
                    println!(
                        "recorder overhead: {per_op_ns:.1} ns/op \
                         (on {:.1} ms, off {:.1} ms, {ops:.0} ops, bound {bound} ns)",
                        on.as_secs_f64() * 1e3,
                        off.as_secs_f64() * 1e3,
                    );
                    if per_op_ns > bound {
                        eprintln!("[obs overhead] FAILED: {per_op_ns:.1} ns/op > {bound} ns/op");
                        std::process::exit(1);
                    }
                }
            }
        }
        other => {
            eprintln!(
                "[obs] unknown command `{other}` \
                 (want trace, report, audit, critpath or overhead)"
            );
            std::process::exit(2);
        }
    }
}
