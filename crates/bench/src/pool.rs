//! Buffer-pool behaviour over the paper's workloads
//! (`BENCH_pool.json`): hit/miss/registration-cost counters for the
//! registration-aware staging pool, measured on the Figure 3 contiguous
//! accumulate/copy and Figure 4 strided accumulate workloads.
//!
//! Every ARMCI-MPI temporary — accumulate pre-scale staging, the
//! global↔global bounce buffer, IOV gather scratch, strided pack
//! scratch — draws from one size-classed pool with on-demand
//! registration: the first take of a size class pays the pin cost, every
//! later take reuses pinned memory for free. The rows here show the
//! cold/steady split the paper's Figure 5 attributes to registration:
//! after one warm-up pass the steady-state hit rate exceeds 90%, which
//! is precisely why native ports bother with prepinned slabs (the
//! `armci-native` rows, whose pool registers its slab once at init).

use armci::{AccKind, Armci};
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use mpisim::{Proc, Runtime};
use serde::Serialize;
use simnet::{PlatformId, PoolStats};

/// One measured phase of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct PoolRow {
    pub platform: PlatformId,
    /// Wire backend the measurement ran over: `"mpi-rma"` for the
    /// ARMCI-MPI rows, `"native"` for the prepinned native runtime
    /// (which bypasses the transport layer entirely).
    pub transport: &'static str,
    /// `"armci-mpi"` (on-demand registration) or `"armci-native"`
    /// (prepinned slab).
    pub backend: &'static str,
    /// `"fig3-contig"` (accumulate + copy) or `"fig4-strided"`
    /// (strided accumulate).
    pub workload: &'static str,
    /// `"cold"` = first pass from an empty pool, `"steady"` = the same
    /// pass repeated after warm-up.
    pub phase: &'static str,
    /// Node layout of the measurement (one rank per node; see
    /// `crate::internode`).
    pub ranks_per_node: u32,
    pub hits: u64,
    pub misses: u64,
    pub hit_rate: f64,
    /// Virtual seconds spent registering (pinning) pool buffers.
    pub reg_cost_s: f64,
    pub high_water_bytes: u64,
}

/// Steady-state passes per workload (the cold row is always one pass).
pub const STEADY_PASSES: usize = 8;

/// Figure 3 contiguous accumulate/copy sizes.
pub fn contig_sizes() -> Vec<usize> {
    (10..=20).step_by(2).map(|k| 1usize << k).collect()
}

/// Figure 4 strided shapes `(segment bytes, segment count)`.
pub fn strided_shapes() -> Vec<(usize, usize)> {
    vec![(16, 64), (1024, 64)]
}

/// Runs every workload on `platform` for both backends.
pub fn generate(platform: PlatformId) -> Vec<PoolRow> {
    let cfg = crate::internode(platform);
    Runtime::run_with(2, cfg, move |p| measure(p, platform)).swap_remove(0)
}

fn row(
    platform: PlatformId,
    backend: &'static str,
    workload: &'static str,
    phase: &'static str,
    s: &PoolStats,
) -> PoolRow {
    PoolRow {
        platform,
        transport: if backend == "armci-mpi" {
            "mpi-rma"
        } else {
            "native"
        },
        backend,
        workload,
        phase,
        ranks_per_node: 1,
        hits: s.hits,
        misses: s.misses,
        hit_rate: s.hit_rate(),
        reg_cost_s: s.reg_cost_s,
        high_water_bytes: s.high_water_bytes as u64,
    }
}

fn measure(p: &Proc, platform: PlatformId) -> Vec<PoolRow> {
    let mut rows = Vec::new();

    // --- ARMCI-MPI: on-demand registration -----------------------------
    {
        let rt = ArmciMpi::new(p);
        let max = *contig_sizes().last().unwrap();
        let bases = rt.malloc(2 * max).expect("malloc");
        rt.barrier();
        let src = vec![1u8; 2 * max];
        let contig = |rt: &ArmciMpi| {
            if p.rank() == 0 {
                for &size in &contig_sizes() {
                    rt.acc(AccKind::Int(2), &src[..size], bases[1]).unwrap();
                    rt.copy(bases[1], bases[1].offset(max), size).unwrap();
                }
            }
        };
        let strided = |rt: &ArmciMpi| {
            if p.rank() == 0 {
                for &(seg, n) in &strided_shapes() {
                    let count = [seg, n];
                    rt.acc_strided(
                        AccKind::Int(1),
                        &src[..n * seg],
                        &[seg],
                        bases[1],
                        &[2 * seg],
                        &count,
                    )
                    .unwrap();
                }
            }
        };
        for (workload, run) in [
            ("fig3-contig", &contig as &dyn Fn(&ArmciMpi)),
            ("fig4-strided", &strided as &dyn Fn(&ArmciMpi)),
        ] {
            rt.reset_pool_stats();
            run(&rt);
            rows.push(row(
                platform,
                "armci-mpi",
                workload,
                "cold",
                &rt.pool_stats(),
            ));
            rt.reset_pool_stats();
            for _ in 0..STEADY_PASSES {
                run(&rt);
            }
            rows.push(row(
                platform,
                "armci-mpi",
                workload,
                "steady",
                &rt.pool_stats(),
            ));
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    }

    // --- ARMCI-Native: prepinned slab ----------------------------------
    {
        let rt = ArmciNative::new(p);
        // Drop the init-time prepin from the counters: the rows report
        // per-operation behaviour.
        rt.reset_pool_stats();
        let max = *contig_sizes().last().unwrap();
        let bases = rt.malloc(2 * max).expect("malloc");
        rt.barrier();
        let run = |rt: &ArmciNative| {
            if p.rank() == 0 {
                for &size in &contig_sizes() {
                    // copy() is the native pool user (bounce staging).
                    rt.copy(bases[1], bases[1].offset(max), size).unwrap();
                }
            }
        };
        run(&rt);
        rows.push(row(
            platform,
            "armci-native",
            "fig3-contig",
            "cold",
            &rt.pool_stats(),
        ));
        rt.reset_pool_stats();
        for _ in 0..STEADY_PASSES {
            run(&rt);
        }
        rows.push(row(
            platform,
            "armci-native",
            "fig3-contig",
            "steady",
            &rt.pool_stats(),
        ));
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    }

    rows
}

/// Renders the table as aligned text.
pub fn render(rows: &[PoolRow]) -> String {
    let mut s = String::from("# Buffer pool behaviour — registration-aware staging\n");
    s.push_str(&format!(
        "{:<30} {:<14} {:>7} {:>7} {:>7} {:>8} {:>12} {:>11}\n",
        "backend/workload", "phase", "hits", "misses", "hit%", "reg µs", "high water", "platform"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<30} {:<14} {:>7} {:>7} {:>6.1}% {:>8.2} {:>12} {:>11}\n",
            format!("{}/{}", r.backend, r.workload),
            r.phase,
            r.hits,
            r.misses,
            r.hit_rate * 100.0,
            r.reg_cost_s * 1e6,
            r.high_water_bytes,
            r.platform.name(),
        ));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [PoolRow], backend: &str, workload: &str, phase: &str) -> &'a PoolRow {
        rows.iter()
            .find(|r| r.backend == backend && r.workload == workload && r.phase == phase)
            .expect("row")
    }

    #[test]
    fn steady_state_hit_rate_exceeds_90_percent() {
        let rows = generate(PlatformId::InfiniBandCluster);
        for workload in ["fig3-contig", "fig4-strided"] {
            let steady = find(&rows, "armci-mpi", workload, "steady");
            assert!(
                steady.hit_rate > 0.9,
                "{workload}: steady hit rate {} (hits {}, misses {})",
                steady.hit_rate,
                steady.hits,
                steady.misses
            );
            // Warm classes pay no further registration.
            assert_eq!(steady.reg_cost_s, 0.0, "{workload}: steady reg cost");
        }
    }

    #[test]
    fn cold_pass_pays_registration_once_per_class() {
        let rows = generate(PlatformId::InfiniBandCluster);
        let cold = find(&rows, "armci-mpi", "fig3-contig", "cold");
        assert!(cold.misses > 0, "cold pass must miss");
        assert!(cold.reg_cost_s > 0.0, "on-demand misses must pin");
        let steady = find(&rows, "armci-mpi", "fig3-contig", "steady");
        assert!(steady.hits > cold.hits);
    }

    #[test]
    fn native_prepinned_pool_never_pays_per_op_registration() {
        let rows = generate(PlatformId::InfiniBandCluster);
        for phase in ["cold", "steady"] {
            let r = find(&rows, "armci-native", "fig3-contig", phase);
            assert_eq!(
                r.reg_cost_s, 0.0,
                "{phase}: native slab is registered at init, not per take"
            );
        }
    }
}
