//! Shared-memory tier A/B (`BENCH_shm.json`): the same traffic replayed
//! with the intra-node load/store fast path on (`shm` arm) and forced
//! onto the wire path (`wire` arm), swept over ranks-per-node layouts.
//!
//! Two workloads run at 1, 8 and 32 ranks per node: a Figure 3-style
//! contiguous put/get/accumulate mix fanned out from rank 0, and the
//! CCSD ladder proxy (§VII). Payloads and synthetic energies must be
//! bit-identical across arms — the route may only change where bytes
//! travel and what the movement costs, never what arrives. At one rank
//! per node only rank-local traffic (the proxy's own tiles) can bypass;
//! once the ranks share a node the `shm` arm must be strictly cheaper
//! in virtual time.

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, AtomicsMode, Config, StageStats};
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, CcsdConfig};
use serde::Serialize;
use simnet::{Platform, PlatformId};

/// Ranks-per-node sweep points (the paper's Table II systems span 4–24
/// cores per node; 32 covers the fat end of modern nodes).
pub const RANKS_PER_NODE: [u32; 3] = [1, 8, 32];

/// Simulated processes per run: at 1 rank/node this is 8 nodes, at 8+
/// ranks/node a single node.
const RANKS: usize = 8;

/// One measured arm of one workload at one layout.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub platform: PlatformId,
    /// Wire backend the measurement ran over (see `armci_mpi::transport`).
    pub transport: &'static str,
    /// `"fig3-mix"` or `"ccsd-proxy"`.
    pub workload: &'static str,
    /// `"shm"` (fast path on) or `"wire"` (forced wire baseline).
    pub arm: &'static str,
    pub ranks_per_node: u32,
    /// Operations routed through the shared slab, summed over ranks.
    pub shm_hits: u64,
    /// Payload bytes that never touched the NIC model.
    pub shm_bypass_bytes: u64,
    /// Operations that went to the wire engine, summed over ranks.
    pub executed_ops: u64,
    pub shm_hit_rate: f64,
    /// Virtual makespan (max over ranks) of the measured phase.
    pub virtual_s: f64,
    /// Payload (or energy) bit-identical to this layout's wire arm.
    pub payload_ok: bool,
    /// CCSD synthetic energy (zero for the mix).
    pub energy: f64,
}

/// Runtime for `platform` re-shaped to `ranks_per_node` cores per node.
fn topo(platform: PlatformId, ranks_per_node: u32) -> RuntimeConfig {
    let mut p = Platform::get(platform).customized("shm-bench");
    p.sockets_per_node = 1;
    p.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform: p,
        ..Default::default()
    }
}

fn arm_cfg(arm: &str) -> Config {
    Config {
        shm: arm == "shm",
        // This A/B measures the data-path tier, in the paper's MPI-2
        // configuration; pin its mutex RMW so the arms stay comparable
        // to the seeded artifact now that native atomics are the default.
        atomics: AtomicsMode::MutexFallback,
        ..Default::default()
    }
}

fn fold(platform: PlatformId, workload: &'static str, arm: &'static str, rpn: u32) -> Row {
    Row {
        platform,
        transport: "mpi-rma",
        workload,
        arm,
        ranks_per_node: rpn,
        shm_hits: 0,
        shm_bypass_bytes: 0,
        executed_ops: 0,
        shm_hit_rate: 0.0,
        virtual_s: 0.0,
        payload_ok: false,
        energy: 0.0,
    }
}

fn add_stats(row: &mut Row, g: &StageStats, elapsed: f64) {
    row.shm_hits += g.shm_hits;
    row.shm_bypass_bytes += g.shm_bypass_bytes;
    row.executed_ops += g.executed_ops;
    row.virtual_s = row.virtual_s.max(elapsed);
}

fn finish(row: &mut Row) {
    let routed = row.shm_hits + row.executed_ops;
    row.shm_hit_rate = if routed == 0 {
        0.0
    } else {
        row.shm_hits as f64 / routed as f64
    };
}

/// Figure 3-style mix: rank 0 fans contiguous put/get/acc at three sizes
/// out to every peer. Returns the row and the concatenated final images
/// of all targets (the cross-arm bit-compare payload).
fn run_mix(platform: PlatformId, rpn: u32, arm: &'static str) -> (Row, Vec<u8>) {
    const SIZES: [usize; 3] = [1 << 10, 1 << 14, 1 << 18];
    let max = *SIZES.iter().max().unwrap();
    let per_rank = Runtime::run_with(RANKS, topo(platform, rpn), move |p| {
        let rt = ArmciMpi::with_config(p, arm_cfg(arm));
        let bases = rt.malloc(max).expect("malloc");
        rt.barrier();
        let mut out = (StageStats::default(), 0.0f64, Vec::new());
        if p.rank() == 0 {
            let src: Vec<u8> = (0..max).map(|i| (i % 251) as u8).collect();
            let mut dst = vec![0u8; max];
            let g0 = rt.stage_stats();
            let t0 = p.clock().now();
            for &base in &bases[1..] {
                for &size in &SIZES {
                    rt.put(&src[..size], base).unwrap();
                    rt.get(base, &mut dst[..size]).unwrap();
                    rt.acc(AccKind::Double(1.0), &src[..size], base).unwrap();
                }
            }
            let elapsed = p.clock().now() - t0;
            let g1 = rt.stage_stats().delta(&g0);
            let mut images = Vec::new();
            for &base in &bases[1..] {
                let mut image = vec![0u8; max];
                rt.get(base, &mut image).unwrap();
                images.extend(image);
            }
            out = (g1, elapsed, images);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    });
    let mut row = fold(platform, "fig3-mix", arm, rpn);
    let mut payload = Vec::new();
    for (g, elapsed, images) in per_rank {
        add_stats(&mut row, &g, elapsed);
        if !images.is_empty() {
            payload = images;
        }
    }
    finish(&mut row);
    (row, payload)
}

/// The CCSD ladder proxy (§VII): every rank claims tasks, gets tiles,
/// accumulates results. Returns the row; the bit-compare payload is the
/// synthetic energy.
fn run_ccsd_arm(platform: PlatformId, rpn: u32, arm: &'static str) -> Row {
    let per_rank = Runtime::run_with(RANKS, topo(platform, rpn), move |p| {
        let rt = ArmciMpi::with_config(p, arm_cfg(arm));
        let ccsd = CcsdConfig {
            iterations: 2,
            ..CcsdConfig::tiny()
        };
        let g0 = rt.stage_stats();
        let r = run_ccsd(p, &rt, &ccsd);
        let g1 = rt.stage_stats().delta(&g0);
        (g1, r.elapsed, r.energy)
    });
    let mut row = fold(platform, "ccsd-proxy", arm, rpn);
    row.energy = per_rank[0].2;
    for (g, elapsed, _) in per_rank {
        add_stats(&mut row, &g, elapsed);
    }
    finish(&mut row);
    row
}

/// Measures both arms of both workloads across the ranks-per-node sweep.
pub fn generate(platform: PlatformId) -> Vec<Row> {
    let mut rows = Vec::new();
    for rpn in RANKS_PER_NODE {
        let (mut wire, wire_image) = run_mix(platform, rpn, "wire");
        let (mut shm, shm_image) = run_mix(platform, rpn, "shm");
        wire.payload_ok = true;
        shm.payload_ok = shm_image == wire_image;
        rows.push(wire);
        rows.push(shm);

        let mut wire = run_ccsd_arm(platform, rpn, "wire");
        let mut shm = run_ccsd_arm(platform, rpn, "shm");
        wire.payload_ok = true;
        shm.payload_ok = shm.energy.to_bits() == wire.energy.to_bits();
        rows.push(wire);
        rows.push(shm);
    }
    rows
}

/// Renders the A/B as aligned text with the headline intra-node saving.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("# Shared-memory tier A/B — intra-node fast path vs forced wire\n");
    s.push_str(&format!(
        "{:<22} {:>5} {:>9} {:>12} {:>9} {:>6} {:>11} {:>3}\n",
        "workload/arm", "rpn", "shm_hits", "bypass_B", "wire_ops", "hit%", "virtual_µs", "ok"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<22} {:>5} {:>9} {:>12} {:>9} {:>5.1}% {:>11.1} {:>3}\n",
            format!("{}/{}", r.workload, r.arm),
            r.ranks_per_node,
            r.shm_hits,
            r.shm_bypass_bytes,
            r.executed_ops,
            r.shm_hit_rate * 100.0,
            r.virtual_s * 1e6,
            if r.payload_ok { "y" } else { "N" },
        ));
    }
    for workload in ["fig3-mix", "ccsd-proxy"] {
        for rpn in RANKS_PER_NODE {
            let get = |arm: &str| {
                rows.iter()
                    .find(|r| r.workload == workload && r.arm == arm && r.ranks_per_node == rpn)
            };
            if let (Some(wire), Some(shm)) = (get("wire"), get("shm")) {
                if shm.shm_hits > 0 {
                    s.push_str(&format!(
                        "{workload} @ {rpn} ranks/node: {:.1}x cheaper with the shm tier \
                         ({:.0} B bypassed the NIC)\n",
                        wire.virtual_s / shm.virtual_s,
                        shm.shm_bypass_bytes as f64,
                    ));
                }
            }
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_tier_strictly_cheaper_on_shared_nodes_with_identical_payloads() {
        let rows = generate(PlatformId::InfiniBandCluster);
        assert_eq!(rows.len(), RANKS_PER_NODE.len() * 4);
        for r in &rows {
            assert!(
                r.payload_ok,
                "{}/{} @ {} ranks/node: payload drifted",
                r.workload, r.arm, r.ranks_per_node
            );
        }
        let get = |workload: &str, arm: &str, rpn: u32| {
            rows.iter()
                .find(|r| r.workload == workload && r.arm == arm && r.ranks_per_node == rpn)
                .unwrap()
        };
        // Spread layout, peer-only traffic: no peers share a node, so the
        // mix rides the wire entirely even with the fast path armed.
        assert_eq!(get("fig3-mix", "shm", 1).shm_hits, 0);
        // The proxy also touches its own tiles — those (and only those)
        // may bypass at 1 rank/node; the remote traffic stays on the wire.
        let spread = get("ccsd-proxy", "shm", 1);
        assert!(spread.executed_ops > 0, "remote tiles must ride the wire");
        for workload in ["fig3-mix", "ccsd-proxy"] {
            // Packed layouts: the fast path engages and wins outright.
            for rpn in [8, 32] {
                let wire = get(workload, "wire", rpn);
                let shm = get(workload, "shm", rpn);
                assert!(shm.shm_hits > 0, "{workload} @ {rpn}: fast path idle");
                assert!(shm.shm_bypass_bytes > 0);
                assert_eq!(wire.shm_hits, 0, "{workload} @ {rpn}: forced-wire leak");
                assert!(
                    shm.virtual_s < wire.virtual_s,
                    "{workload} @ {rpn} ranks/node: shm {} s not cheaper than wire {} s",
                    shm.virtual_s,
                    wire.virtual_s
                );
            }
        }
        // The mix is rank-0-driven onto one node at 8+ ranks/node: every
        // transfer bypasses, so the hit rate saturates.
        let mix = get("fig3-mix", "shm", 8);
        assert!(mix.shm_hit_rate > 0.99, "hit rate {}", mix.shm_hit_rate);
    }
}
