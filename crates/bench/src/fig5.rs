//! Figure 5: interoperability — contiguous get bandwidth for ARMCI and
//! MPI movers against ARMCI-allocated and MPI-touched local buffers on
//! the InfiniBand cluster (the buffer-registration study of §VII-B).

use serde::Serialize;
use simnet::{
    registration::Mover, BufferKind, BufferPool, Platform, PlatformId, RegistrationPolicy,
    RegistrationTracker,
};

/// The four plotted combinations, in the paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Combo {
    /// `ARMCI-IB, ARMCI Alloc` — native mover, prepinned buffer.
    ArmciOnArmciAlloc,
    /// `MPI, MPI Touch` — MPI mover, buffer registered by MPI.
    MpiOnMpiTouch,
    /// `ARMCI-IB, MPI Touch` — native mover forced onto its non-pinned
    /// path.
    ArmciOnMpiTouch,
    /// `MPI, ARMCI Alloc` — MPI mover registering on demand.
    MpiOnArmciAlloc,
}

impl Combo {
    pub const ALL: [Combo; 4] = [
        Combo::ArmciOnArmciAlloc,
        Combo::MpiOnMpiTouch,
        Combo::ArmciOnMpiTouch,
        Combo::MpiOnArmciAlloc,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Combo::ArmciOnArmciAlloc => "ARMCI-IB, ARMCI Alloc",
            Combo::MpiOnMpiTouch => "MPI, MPI Touch",
            Combo::ArmciOnMpiTouch => "ARMCI-IB, MPI Touch",
            Combo::MpiOnArmciAlloc => "MPI, ARMCI Alloc",
        }
    }

    fn mover(self) -> Mover {
        match self {
            Combo::ArmciOnArmciAlloc | Combo::ArmciOnMpiTouch => Mover::NativeArmci,
            _ => Mover::Mpi,
        }
    }

    fn buffer(self) -> BufferKind {
        match self {
            Combo::ArmciOnArmciAlloc | Combo::MpiOnArmciAlloc => BufferKind::ArmciAlloc,
            _ => BufferKind::MpiTouch,
        }
    }
}

/// One curve of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub combo: Combo,
    /// `false` = first-touch buffers (the paper's measurement: every
    /// size is a fresh buffer, so on-demand registration is on the
    /// critical path). `true` = the same transfers through a warmed
    /// [`BufferPool`], where the size class is already pinned.
    pub warm: bool,
    /// `(transfer bytes, bandwidth bytes/sec)`
    pub points: Vec<(usize, f64)>,
}

/// Transfer sizes 2² … 2²² bytes, as plotted.
pub fn sizes() -> Vec<usize> {
    (2..=22).map(|k| 1usize << k).collect()
}

/// Generates the four curves using the registration model. Each size step
/// uses a fresh buffer id, exposing the on-demand registration cost the
/// paper highlights for the 8 KiB–256 KiB regime.
pub fn generate() -> Vec<Series> {
    let platform = Platform::get(PlatformId::InfiniBandCluster);
    Combo::ALL
        .iter()
        .map(|&combo| {
            let mut tracker = RegistrationTracker::new();
            let mover = combo.mover();
            let link = match mover {
                Mover::NativeArmci => &platform.native.get,
                Mover::Mpi => &platform.mpi.get,
            };
            let points = sizes()
                .iter()
                .enumerate()
                .map(|(i, &size)| {
                    let buf_id = i + 1;
                    tracker.allocate(buf_id, combo.buffer());
                    let t = tracker.get_cost(mover, &platform.reg, link, buf_id, size);
                    (size, size as f64 / t)
                })
                .collect();
            Series {
                combo,
                warm: false,
                points,
            }
        })
        .collect()
}

/// The warm-pool counterpart for the MPI-mover combinations: the
/// transfer buffer comes from a [`BufferPool`] size class that a prior
/// take already registered, so the pin cost the cold curves pay in the
/// 8 KiB–256 KiB regime vanishes and only the wire time remains. The
/// native-mover combinations are unchanged by pooling (their penalty is
/// the foreign-buffer fallback path, not registration), so no warm
/// curves are generated for them.
pub fn generate_warm() -> Vec<Series> {
    let platform = Platform::get(PlatformId::InfiniBandCluster);
    [Combo::MpiOnMpiTouch, Combo::MpiOnArmciAlloc]
        .iter()
        .map(|&combo| {
            let pool = BufferPool::new(RegistrationPolicy::OnDemand, platform.reg.clone());
            let link = &platform.mpi.get;
            let points = sizes()
                .iter()
                .map(|&size| {
                    // First take warms the size class (pays the pin)…
                    drop(pool.take(size));
                    // …the measured take hits pinned memory.
                    let buf = pool.take(size);
                    debug_assert!(buf.was_hit());
                    let t = buf.reg_cost() + link.xfer_time(size);
                    (size, size as f64 / t)
                })
                .collect();
            Series {
                combo,
                warm: true,
                points,
            }
        })
        .collect()
}

/// Renders the figure as aligned text.
pub fn render(all: &[Series]) -> String {
    let mut s = String::from("# Figure 5 — InfiniBand registration interoperability\n");
    for series in all {
        let warm = if series.warm { " (warm pool)" } else { "" };
        s.push_str(&format!(
            "# {}{warm}\n# bytes, GB/s\n",
            series.combo.label()
        ));
        for &(bytes, bw) in &series.points {
            s.push_str(&format!(
                "{:>10}  {:>8}\n",
                crate::fmt_bytes(bytes),
                crate::fmt_gbps(bw)
            ));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(all: &[Series], c: Combo, size: usize) -> f64 {
        all.iter()
            .find(|s| s.combo == c)
            .and_then(|s| s.points.iter().find(|&&(b, _)| b == size))
            .map(|&(_, v)| v)
            .expect("point")
    }

    #[test]
    fn native_with_own_buffer_is_best_everywhere() {
        let all = generate();
        for &size in &sizes() {
            let best = bw(&all, Combo::ArmciOnArmciAlloc, size);
            for c in [
                Combo::MpiOnMpiTouch,
                Combo::ArmciOnMpiTouch,
                Combo::MpiOnArmciAlloc,
            ] {
                assert!(
                    best >= bw(&all, c, size) * 0.999,
                    "{c:?} beats native-own at {size}"
                );
            }
        }
    }

    #[test]
    fn native_on_foreign_buffer_has_large_gap() {
        let all = generate();
        let size = 4 << 20;
        let own = bw(&all, Combo::ArmciOnArmciAlloc, size);
        let foreign = bw(&all, Combo::ArmciOnMpiTouch, size);
        assert!(own > 2.0 * foreign, "own {own} vs foreign {foreign}");
    }

    #[test]
    fn mpi_on_demand_registration_dips_above_threshold() {
        // Bounce path below 8 KiB, expensive pin right above it, recovery
        // at large sizes.
        let all = generate();
        let below = bw(&all, Combo::MpiOnArmciAlloc, 4 << 10);
        let above = bw(&all, Combo::MpiOnArmciAlloc, 16 << 10);
        let large = bw(&all, Combo::MpiOnArmciAlloc, 4 << 20);
        assert!(above < below, "no dip: below {below} above {above}");
        assert!(large > above, "no recovery: large {large}");
        // and at large sizes it converges toward the registered MPI curve
        let touched = bw(&all, Combo::MpiOnMpiTouch, 4 << 20);
        assert!(large > 0.5 * touched);
    }

    #[test]
    fn four_series_full_range() {
        let all = generate();
        assert_eq!(all.len(), 4);
        for s in &all {
            assert!(!s.warm);
            assert_eq!(s.points.len(), sizes().len());
        }
    }

    #[test]
    fn warm_pool_removes_the_registration_dip() {
        // Cold on-demand registration dips right above the bounce
        // threshold; a warmed pool class is already pinned, so the warm
        // curve is at least as fast everywhere and strictly faster in
        // the dip regime.
        let cold = generate();
        let warm = generate_warm();
        let warm_bw = |c: Combo, size: usize| {
            warm.iter()
                .find(|s| s.combo == c && s.warm)
                .and_then(|s| s.points.iter().find(|&&(b, _)| b == size))
                .map(|&(_, v)| v)
                .expect("warm point")
        };
        for &size in &sizes() {
            let c = bw(&cold, Combo::MpiOnArmciAlloc, size);
            let w = warm_bw(Combo::MpiOnArmciAlloc, size);
            assert!(w >= c * 0.999, "warm {w} slower than cold {c} at {size}");
        }
        // The dip itself (first size past the bounce threshold) is gone:
        // cold loses bandwidth from 4 KiB to 16 KiB, warm gains it.
        assert!(
            warm_bw(Combo::MpiOnArmciAlloc, 16 << 10) > warm_bw(Combo::MpiOnArmciAlloc, 4 << 10)
        );
        // And warm is strictly better than cold where the pin dominates.
        let c = bw(&cold, Combo::MpiOnArmciAlloc, 16 << 10);
        let w = warm_bw(Combo::MpiOnArmciAlloc, 16 << 10);
        assert!(w > 1.5 * c, "pin cost not removed: warm {w} vs cold {c}");
    }

    #[test]
    fn warm_series_cover_mpi_movers_only() {
        let warm = generate_warm();
        assert_eq!(warm.len(), 2);
        for s in &warm {
            assert!(s.warm);
            assert!(matches!(
                s.combo,
                Combo::MpiOnMpiTouch | Combo::MpiOnArmciAlloc
            ));
            assert_eq!(s.points.len(), sizes().len());
        }
    }
}
