//! Figure 6: NWChem CCSD and (T) execution time for ARMCI-Native and
//! ARMCI-MPI, regenerated through the `scalesim` discrete-event model.

use nwchem_proxy::{Backend, ProxyPhase};
use scalesim::fig6::{self, Fig6Point};
use serde::Serialize;
use simnet::PlatformId;

/// One plotted curve.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub platform: PlatformId,
    pub backend: &'static str,
    pub phase: &'static str,
    /// `(cores, minutes)`
    pub points: Vec<(usize, f64)>,
}

fn backend_label(b: Backend) -> &'static str {
    match b {
        Backend::ArmciMpi => "ARMCI-MPI",
        Backend::Native => "ARMCI-Native",
    }
}

fn phase_label(ph: ProxyPhase) -> &'static str {
    match ph {
        ProxyPhase::Ccsd => "CCSD",
        ProxyPhase::Triples => "(T)",
    }
}

/// Generates all curves for one platform.
pub fn generate(platform: PlatformId) -> Vec<Series> {
    let mut out = Vec::new();
    for phase in fig6::phases(platform) {
        for backend in [Backend::ArmciMpi, Backend::Native] {
            let pts: Vec<(usize, f64)> = fig6::series(platform, backend, phase)
                .into_iter()
                .map(|Fig6Point { cores, minutes }| (cores, minutes))
                .collect();
            out.push(Series {
                platform,
                backend: backend_label(backend),
                phase: phase_label(phase),
                points: pts,
            });
        }
    }
    out
}

/// §VIII ablation: ARMCI-MPI with access-mode hints and MPI-3 RMW,
/// versus the paper configuration, on one platform.
pub fn generate_ablation(platform: PlatformId) -> Vec<Series> {
    use scalesim::fig6::Fig6Opts;
    let mut out = Vec::new();
    for phase in fig6::phases(platform) {
        out.push(Series {
            platform,
            backend: "ARMCI-MPI (paper)",
            phase: phase_label(phase),
            points: fig6::series(platform, Backend::ArmciMpi, phase)
                .into_iter()
                .map(|q| (q.cores, q.minutes))
                .collect(),
        });
        out.push(Series {
            platform,
            backend: "ARMCI-MPI (+progress agent)",
            phase: phase_label(phase),
            points: fig6::series_with(
                platform,
                phase,
                Fig6Opts {
                    progress_agent: true,
                    ..Fig6Opts::default()
                },
            )
            .into_iter()
            .map(|q| (q.cores, q.minutes))
            .collect(),
        });
        out.push(Series {
            platform,
            backend: "ARMCI-MPI (+access modes)",
            phase: phase_label(phase),
            points: fig6::series_with(
                platform,
                phase,
                Fig6Opts {
                    access_modes: true,
                    mpi3_rmw: false,
                    nxtval_shard: None,
                    progress_agent: false,
                },
            )
            .into_iter()
            .map(|q| (q.cores, q.minutes))
            .collect(),
        });
        out.push(Series {
            platform,
            backend: "ARMCI-MPI (+modes, MPI-3 RMW)",
            phase: phase_label(phase),
            points: fig6::series_with(
                platform,
                phase,
                Fig6Opts {
                    access_modes: true,
                    mpi3_rmw: true,
                    nxtval_shard: None,
                    progress_agent: false,
                },
            )
            .into_iter()
            .map(|q| (q.cores, q.minutes))
            .collect(),
        });
        out.push(Series {
            platform,
            backend: "ARMCI-MPI (+modes, sharded NXTVAL)",
            phase: phase_label(phase),
            points: fig6::series_with(
                platform,
                phase,
                Fig6Opts {
                    access_modes: true,
                    mpi3_rmw: true,
                    nxtval_shard: Some(64),
                    progress_agent: false,
                },
            )
            .into_iter()
            .map(|q| (q.cores, q.minutes))
            .collect(),
        });
        out.push(Series {
            platform,
            backend: "ARMCI-Native",
            phase: phase_label(phase),
            points: fig6::series(platform, Backend::Native, phase)
                .into_iter()
                .map(|q| (q.cores, q.minutes))
                .collect(),
        });
    }
    out
}

/// Renders the figure as aligned text.
pub fn render(all: &[Series]) -> String {
    let mut s = String::new();
    for series in all {
        s.push_str(&format!(
            "# Figure 6 — {} — {} {}\n# cores, minutes\n",
            series.platform.name(),
            series.backend,
            series.phase
        ));
        for &(cores, min) in &series.points {
            s.push_str(&format!("{cores:>7}  {min:>8.2}\n"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_curve_counts_match_paper_panels() {
        // CCSD-only panels have 2 curves, CCSD+(T) panels have 4.
        assert_eq!(generate(PlatformId::BlueGeneP).len(), 2);
        assert_eq!(generate(PlatformId::InfiniBandCluster).len(), 4);
        assert_eq!(generate(PlatformId::CrayXT5).len(), 2);
        assert_eq!(generate(PlatformId::CrayXE6).len(), 4);
    }

    #[test]
    fn times_are_plausible_minutes() {
        for id in PlatformId::ALL {
            for s in generate(id) {
                for &(_, m) in &s.points {
                    assert!(m > 0.05 && m < 2000.0, "{id:?} {m} min");
                }
            }
        }
    }
}
