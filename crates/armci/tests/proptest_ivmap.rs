//! Property tests for the shared interval map: containment lookup and
//! removal against a brute-force linear-scan oracle over random
//! allocation layouts.

use armci::IntervalMap;
use proptest::prelude::*;

/// One registered interval: `(rank, base, size, value)`.
type Entry = (usize, usize, usize, u64);

/// Strategy: per-rank non-overlapping layouts built from cumulative
/// `(gap, size)` pairs, so intervals never intersect by construction.
fn arb_layout() -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec(
        (
            0usize..4,
            proptest::collection::vec((0usize..48, 1usize..64), 0..8),
        ),
        1..5,
    )
    .prop_map(|ranks| {
        let mut entries = Vec::new();
        let mut value = 1u64;
        // Per-rank cursors: the same rank may appear twice in the outer
        // vec, and its spans must stay non-overlapping across groups.
        let mut cursors = std::collections::HashMap::new();
        for (rank, spans) in ranks {
            // Base 1: interval maps treat 0 as NULL-adjacent; start above.
            let cursor = cursors.entry(rank).or_insert(1usize);
            for (gap, size) in spans {
                let base = *cursor + gap;
                entries.push((rank, base, size, value));
                value += 1;
                *cursor = base + size;
            }
        }
        entries
    })
}

/// Linear-scan oracle: first interval on `rank` containing
/// `[addr, addr + len.max(1))`.
fn oracle(entries: &[Entry], rank: usize, addr: usize, len: usize) -> Option<(usize, usize, u64)> {
    entries
        .iter()
        .find(|&&(r, base, size, _)| r == rank && addr >= base && addr + len.max(1) <= base + size)
        .map(|&(_, base, size, v)| (base, size, v))
}

fn build(entries: &[Entry]) -> IntervalMap<u64> {
    let mut m = IntervalMap::new();
    for &(rank, base, size, v) in entries {
        m.insert(rank, base, size, v);
    }
    m
}

proptest! {
    /// Random probes agree with the linear scan — both probes that land
    /// inside intervals and probes into gaps / past ends.
    #[test]
    fn lookup_matches_linear_scan(
        entries in arb_layout(),
        probes in proptest::collection::vec((0usize..5, 0usize..512, 0usize..96), 1..64),
    ) {
        let m = build(&entries);
        prop_assert_eq!(m.len(), entries.len());
        for (rank, addr, len) in probes {
            let got = m.lookup(rank, addr, len).map(|f| (f.base, f.size, f.value));
            prop_assert_eq!(got, oracle(&entries, rank, addr, len));
        }
    }

    /// Probes aimed at interval interiors and boundaries (the hard
    /// cases: exact base, last byte, one-past-the-end).
    #[test]
    fn boundary_probes_match_linear_scan(entries in arb_layout()) {
        let m = build(&entries);
        for &(rank, base, size, _) in &entries {
            for addr in [base, base + size - 1, base + size] {
                for len in [0usize, 1, size, size + 1] {
                    let got = m.lookup(rank, addr, len).map(|f| (f.base, f.size, f.value));
                    prop_assert_eq!(got, oracle(&entries, rank, addr, len));
                }
            }
        }
    }

    /// Removing a random subset unregisters exactly those intervals and
    /// leaves the rest findable.
    #[test]
    fn remove_matches_linear_scan(
        entries in arb_layout(),
        mask in proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 16),
    ) {
        let mut m = build(&entries);
        let (gone, kept): (Vec<_>, Vec<_>) = entries
            .iter()
            .enumerate()
            .partition(|(i, _)| mask[i % mask.len()]);
        for (_, &(rank, base, _, v)) in &gone {
            prop_assert_eq!(m.remove(rank, base), Some(v));
        }
        let kept: Vec<Entry> = kept.into_iter().map(|(_, &e)| e).collect();
        prop_assert_eq!(m.len(), kept.len());
        for &(rank, base, size, _) in &entries {
            let got = m.lookup(rank, base, size).map(|f| (f.base, f.size, f.value));
            prop_assert_eq!(got, oracle(&kept, rank, base, size));
        }
        // Double-remove is a clean miss.
        for (_, &(rank, base, _, _)) in &gone {
            prop_assert_eq!(m.remove(rank, base), None);
        }
    }
}
