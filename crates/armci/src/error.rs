//! ARMCI error type.

use std::fmt;

/// Errors surfaced by ARMCI implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmciError {
    /// A global address does not fall inside any live allocation on its
    /// process.
    BadAddress { rank: usize, addr: usize },
    /// Access extends past the end of the allocation.
    OutOfBounds {
        rank: usize,
        addr: usize,
        len: usize,
        limit: usize,
    },
    /// The calling process is not a member of the group for a collective.
    NotInGroup,
    /// A descriptor is malformed (mismatched lengths, zero segment size…).
    BadDescriptor(String),
    /// Mutex API misuse (unlock without lock, unknown handle…).
    MutexMisuse(String),
    /// An allocation was freed while an operation still referencing it
    /// (a translation, a nonblocking handle) was in flight.
    GmrVanished { gmr: u64 },
    /// The shared-memory slab backing an allocation was torn down while a
    /// section handle or a slab-routed operation still referenced it. The
    /// distinction from [`GmrVanished`](ArmciError::GmrVanished) matters
    /// for teardown: a detached slab means a *node peer* may still hold a
    /// base pointer, so the error must surface instead of the stale
    /// pointer dereferencing.
    ShmDetached { gmr: u64 },
    /// The underlying MPI runtime reported an error.
    Mpi(mpisim::MpiError),
    /// Operation not supported by this implementation/configuration.
    Unsupported(&'static str),
    /// A backend was asked for an atomic of a width it cannot price.
    /// Surfaced explicitly instead of silently falling back to a
    /// software emulation whose cost and atomicity domain would differ
    /// from what the caller asked for.
    AtomicUnsupported { backend: &'static str, width: usize },
    /// Asynchronous progress agents were requested on a backend that
    /// cannot route passive-target traffic through one. Surfaced
    /// explicitly instead of silently running without progress help, so
    /// A/B measurements never compare agentless runs labelled "agent".
    ProgressUnsupported { backend: &'static str },
    /// An operation contradicts the allocation's access-mode hint
    /// (§VIII-A): e.g. a Put into a ReadOnly-hinted GMR. The hint is a
    /// promise about application behaviour during the phase; breaking it
    /// is erroneous access, not merely a missed optimisation.
    AccessModeViolation {
        gmr: u64,
        mode: &'static str,
        op: &'static str,
    },
}

impl fmt::Display for ArmciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmciError::BadAddress { rank, addr } => {
                write!(
                    f,
                    "address {addr:#x} on process {rank} is not globally accessible"
                )
            }
            ArmciError::OutOfBounds {
                rank,
                addr,
                len,
                limit,
            } => write!(
                f,
                "access [{addr:#x}..{:#x}) exceeds allocation end {limit:#x} on process {rank}",
                addr + len
            ),
            ArmciError::NotInGroup => write!(f, "caller is not a member of the group"),
            ArmciError::BadDescriptor(msg) => write!(f, "bad descriptor: {msg}"),
            ArmciError::MutexMisuse(msg) => write!(f, "mutex misuse: {msg}"),
            ArmciError::GmrVanished { gmr } => {
                write!(f, "allocation {gmr} freed with operations in flight")
            }
            ArmciError::ShmDetached { gmr } => write!(
                f,
                "shared-memory slab of allocation {gmr} detached with sections live"
            ),
            ArmciError::Mpi(e) => write!(f, "MPI error: {e}"),
            ArmciError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            ArmciError::AtomicUnsupported { backend, width } => write!(
                f,
                "backend `{backend}` cannot price a {width}-byte atomic operation"
            ),
            ArmciError::ProgressUnsupported { backend } => write!(
                f,
                "backend `{backend}` cannot route traffic through a progress agent"
            ),
            ArmciError::AccessModeViolation { gmr, mode, op } => write!(
                f,
                "{op} violates the {mode} access-mode hint on allocation {gmr}"
            ),
        }
    }
}

impl std::error::Error for ArmciError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArmciError::Mpi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mpisim::MpiError> for ArmciError {
    fn from(e: mpisim::MpiError) -> Self {
        ArmciError::Mpi(e)
    }
}

impl ArmciError {
    /// The single conversion point for "the allocation's backing memory is
    /// gone". Two ways an operation can lose its footing both funnel here:
    /// the GMR disappeared from the translation table (`cause` = `None` →
    /// [`GmrVanished`](ArmciError::GmrVanished)), or the shared-memory
    /// fast path hit a freed window — the slab was torn down under a live
    /// section — which becomes [`ShmDetached`](ArmciError::ShmDetached)
    /// rather than a panic on a stale base pointer. Any other MPI cause
    /// wraps as [`Mpi`](ArmciError::Mpi) unchanged.
    pub fn backing_lost(gmr: u64, cause: Option<mpisim::MpiError>) -> ArmciError {
        match cause {
            None => ArmciError::GmrVanished { gmr },
            Some(mpisim::MpiError::WinFreed) => ArmciError::ShmDetached { gmr },
            Some(e) => ArmciError::Mpi(e),
        }
    }
}

/// Convenience alias.
pub type ArmciResult<T> = Result<T, ArmciError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fields() {
        let e = ArmciError::OutOfBounds {
            rank: 2,
            addr: 0x10,
            len: 0x20,
            limit: 0x18,
        };
        let s = e.to_string();
        assert!(s.contains("process 2"));
        assert!(s.contains("0x30"));
    }

    #[test]
    fn mpi_error_wraps_with_source() {
        use std::error::Error;
        let e: ArmciError = mpisim::MpiError::WinFreed.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn backing_lost_classifies_causes() {
        assert_eq!(
            ArmciError::backing_lost(3, None),
            ArmciError::GmrVanished { gmr: 3 }
        );
        assert_eq!(
            ArmciError::backing_lost(3, Some(mpisim::MpiError::WinFreed)),
            ArmciError::ShmDetached { gmr: 3 }
        );
        assert_eq!(
            ArmciError::backing_lost(3, Some(mpisim::MpiError::NoEpoch { target: 1 })),
            ArmciError::Mpi(mpisim::MpiError::NoEpoch { target: 1 })
        );
        assert!(ArmciError::ShmDetached { gmr: 3 }.to_string().contains("3"));
    }

    #[test]
    fn atomic_unsupported_names_backend_and_width() {
        let e = ArmciError::AtomicUnsupported {
            backend: "channel",
            width: 4,
        };
        let s = e.to_string();
        assert!(s.contains("channel"));
        assert!(s.contains("4-byte"));
    }
}
