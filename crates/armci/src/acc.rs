//! Scaled accumulate kinds and their element-wise combine.
//!
//! ARMCI accumulates compute `dst[i] += scale * src[i]` for a typed view of
//! the byte buffers (the C API's `ARMCI_ACC_INT/LNG/FLT/DBL` with a scale
//! argument). Both backends share this combine; `armci-mpi` additionally
//! uses [`AccKind::prescale`] to reduce a scaled accumulate to MPI's
//! unscaled `MPI_SUM` accumulate, as the paper's implementation does.

use crate::error::{ArmciError, ArmciResult};

/// Accumulate element kind with embedded scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccKind {
    /// 32-bit signed integers (`ARMCI_ACC_INT`).
    Int(i32),
    /// 64-bit signed integers (`ARMCI_ACC_LNG`).
    Long(i64),
    /// 32-bit floats (`ARMCI_ACC_FLT`).
    Float(f32),
    /// 64-bit doubles (`ARMCI_ACC_DBL`).
    Double(f64),
}

impl AccKind {
    /// Element width in bytes.
    pub fn elem_size(&self) -> usize {
        match self {
            AccKind::Int(_) | AccKind::Float(_) => 4,
            AccKind::Long(_) | AccKind::Double(_) => 8,
        }
    }

    /// Is the scale the multiplicative identity?
    pub fn is_unit_scale(&self) -> bool {
        match self {
            AccKind::Int(s) => *s == 1,
            AccKind::Long(s) => *s == 1,
            AccKind::Float(s) => *s == 1.0,
            AccKind::Double(s) => *s == 1.0,
        }
    }

    /// Validates that a buffer length is element-aligned.
    pub fn check_len(&self, len: usize) -> ArmciResult<()> {
        if !len.is_multiple_of(self.elem_size()) {
            return Err(ArmciError::BadDescriptor(format!(
                "accumulate length {len} not a multiple of element size {}",
                self.elem_size()
            )));
        }
        Ok(())
    }

    /// Returns `scale * src` as a fresh byte vector (used by ARMCI-MPI to
    /// stage scaled operands before an unscaled MPI accumulate).
    pub fn prescale(&self, src: &[u8]) -> ArmciResult<Vec<u8>> {
        let mut out = src.to_vec();
        self.scale_in_place(&mut out)?;
        Ok(out)
    }

    /// Writes `scale * src` into `dst` (same length); the pooled-staging
    /// variant of [`AccKind::prescale`] — no allocation.
    pub fn prescale_into(&self, src: &[u8], dst: &mut [u8]) -> ArmciResult<()> {
        if dst.len() != src.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "prescale length mismatch: dst {} vs src {}",
                dst.len(),
                src.len()
            )));
        }
        dst.copy_from_slice(src);
        self.scale_in_place(dst)
    }

    /// Multiplies every element of `buf` by the scale, in place.
    pub fn scale_in_place(&self, buf: &mut [u8]) -> ArmciResult<()> {
        self.check_len(buf.len())?;
        if self.is_unit_scale() {
            return Ok(());
        }
        macro_rules! scale {
            ($ty:ty, $w:expr, $s:expr) => {
                for chunk in buf.chunks_exact_mut($w) {
                    let v = <$ty>::from_le_bytes(chunk[..$w].try_into().unwrap());
                    let r = v * $s;
                    chunk.copy_from_slice(&r.to_le_bytes());
                }
            };
        }
        match *self {
            AccKind::Int(s) => scale!(i32, 4, s),
            AccKind::Long(s) => scale!(i64, 8, s),
            AccKind::Float(s) => scale!(f32, 4, s),
            AccKind::Double(s) => scale!(f64, 8, s),
        }
        Ok(())
    }

    /// In-place combine: `dst[i] += scale * src[i]`.
    pub fn apply(&self, dst: &mut [u8], src: &[u8]) -> ArmciResult<()> {
        if dst.len() != src.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "accumulate length mismatch: dst {} vs src {}",
                dst.len(),
                src.len()
            )));
        }
        self.check_len(dst.len())?;
        macro_rules! combine {
            ($ty:ty, $w:expr, $s:expr) => {
                for (d, s_) in dst.chunks_exact_mut($w).zip(src.chunks_exact($w)) {
                    let a = <$ty>::from_le_bytes(d[..$w].try_into().unwrap());
                    let b = <$ty>::from_le_bytes(s_[..$w].try_into().unwrap());
                    let r = a + b * $s;
                    d.copy_from_slice(&r.to_le_bytes());
                }
            };
        }
        match *self {
            AccKind::Int(s) => combine!(i32, 4, s),
            AccKind::Long(s) => combine!(i64, 8, s),
            AccKind::Float(s) => combine!(f32, 4, s),
            AccKind::Double(s) => combine!(f64, 8, s),
        }
        Ok(())
    }

    /// The matching `mpisim` element type (scale handled by prescaling).
    pub fn mpi_elem(&self) -> mpisim::ElemType {
        match self {
            AccKind::Int(_) => mpisim::ElemType::I32,
            AccKind::Long(_) => mpisim::ElemType::I64,
            AccKind::Float(_) => mpisim::ElemType::F32,
            AccKind::Double(_) => mpisim::ElemType::F64,
        }
    }
}

/// Encodes a slice of f64 as little-endian bytes (test & example helper).
pub fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes as f64s (test & example helper).
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(AccKind::Int(1).elem_size(), 4);
        assert_eq!(AccKind::Long(1).elem_size(), 8);
        assert_eq!(AccKind::Float(1.0).elem_size(), 4);
        assert_eq!(AccKind::Double(1.0).elem_size(), 8);
    }

    #[test]
    fn prescale_doubles() {
        let src = f64s_to_bytes(&[1.0, -2.0, 0.5]);
        let out = AccKind::Double(2.0).prescale(&src).unwrap();
        assert_eq!(bytes_to_f64s(&out), vec![2.0, -4.0, 1.0]);
    }

    #[test]
    fn prescale_unit_is_identity() {
        let src = f64s_to_bytes(&[3.25]);
        assert_eq!(AccKind::Double(1.0).prescale(&src).unwrap(), src);
    }

    #[test]
    fn apply_scaled_sum_f64() {
        let mut dst = f64s_to_bytes(&[10.0, 20.0]);
        let src = f64s_to_bytes(&[1.0, 2.0]);
        AccKind::Double(3.0).apply(&mut dst, &src).unwrap();
        assert_eq!(bytes_to_f64s(&dst), vec![13.0, 26.0]);
    }

    #[test]
    fn apply_int_kinds() {
        let mut dst = 5i32.to_le_bytes().to_vec();
        AccKind::Int(2)
            .apply(&mut dst, &7i32.to_le_bytes())
            .unwrap();
        assert_eq!(i32::from_le_bytes(dst[..4].try_into().unwrap()), 19);

        let mut dst = 5i64.to_le_bytes().to_vec();
        AccKind::Long(-1)
            .apply(&mut dst, &7i64.to_le_bytes())
            .unwrap();
        assert_eq!(i64::from_le_bytes(dst[..8].try_into().unwrap()), -2);
    }

    #[test]
    fn apply_float_kind() {
        let mut dst = 1.5f32.to_le_bytes().to_vec();
        AccKind::Float(2.0)
            .apply(&mut dst, &0.25f32.to_le_bytes())
            .unwrap();
        assert_eq!(f32::from_le_bytes(dst[..4].try_into().unwrap()), 2.0);
    }

    #[test]
    fn misaligned_length_rejected() {
        assert!(AccKind::Double(1.0).check_len(12).is_err());
        assert!(AccKind::Int(1).check_len(12).is_ok());
        let mut dst = vec![0u8; 6];
        let src = vec![0u8; 6];
        assert!(AccKind::Double(1.0).apply(&mut dst, &src).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut dst = vec![0u8; 8];
        let src = vec![0u8; 16];
        assert!(AccKind::Double(1.0).apply(&mut dst, &src).is_err());
    }

    #[test]
    fn prescale_into_matches_prescale() {
        let src = f64s_to_bytes(&[1.0, -2.0, 0.5]);
        let mut dst = vec![0u8; src.len()];
        AccKind::Double(2.0).prescale_into(&src, &mut dst).unwrap();
        assert_eq!(dst, AccKind::Double(2.0).prescale(&src).unwrap());
        let mut short = vec![0u8; 8];
        assert!(AccKind::Double(2.0)
            .prescale_into(&src, &mut short)
            .is_err());
    }

    #[test]
    fn prescale_then_unit_apply_equals_scaled_apply() {
        let a0 = f64s_to_bytes(&[1.0, 2.0, 3.0]);
        let src = f64s_to_bytes(&[0.5, 1.5, -2.5]);
        // path 1: scaled apply
        let mut d1 = a0.clone();
        AccKind::Double(4.0).apply(&mut d1, &src).unwrap();
        // path 2: prescale + unit apply (the ARMCI-MPI route)
        let staged = AccKind::Double(4.0).prescale(&src).unwrap();
        let mut d2 = a0;
        AccKind::Double(1.0).apply(&mut d2, &staged).unwrap();
        assert_eq!(d1, d2);
    }
}
