//! The ARMCI programming interface (paper §IV).
//!
//! ARMCI — the Aggregate Remote Memory Copy Interface — is the low-level
//! one-sided runtime under Global Arrays. This crate defines the Rust shape
//! of that interface as the [`Armci`] trait plus the shared machinery every
//! implementation needs:
//!
//! * [`GlobalAddr`] — the PGAS address `⟨process id, address⟩`;
//! * [`IovDesc`] — the generalized I/O vector descriptor (`armci_giov_t`);
//! * [`stride`] — Table I strided notation, the Algorithm 1 strided→IOV
//!   iterator, and the backwards translation from strided notation to an
//!   MPI subarray type (§VI-C);
//! * [`acc`] — scaled accumulate kinds (`ARMCI_ACC_DBL` etc.) and their
//!   element-wise combine;
//! * [`ArmciGroup`] — processor groups over [`mpisim::Comm`].
//!
//! Two implementations exist in this workspace: `armci-mpi` (the paper's
//! contribution, over MPI passive-target RMA) and `armci-native` (the
//! baseline, over direct shared memory with a tuned cost model). Global
//! Arrays (`ga`) is generic over this trait, exactly as NWChem can be
//! relinked against either runtime.

pub mod acc;
pub mod error;
pub mod group;
pub mod ivmap;
pub mod stride;
pub mod traits;
pub mod types;

pub use acc::AccKind;
pub use error::{ArmciError, ArmciResult};
pub use group::ArmciGroup;
pub use ivmap::IntervalMap;
pub use stride::{strided_to_subarray, StridedIter};
pub use traits::{AccessMode, Armci, ArmciExt, NbHandle, RmwOp, StridedMethod};
pub use types::{GlobalAddr, IovDesc};
