//! Core ARMCI data types.

use crate::error::{ArmciError, ArmciResult};

/// A PGAS global address: `⟨process id, address⟩` (§IV).
///
/// Addresses are opaque byte offsets in the owning process's global
/// allocation space, handed out by `ARMCI_Malloc`; pointer arithmetic via
/// [`GlobalAddr::offset`] mirrors the C idiom `base + n`. The all-zero
/// address plays the role of `NULL` (used for zero-size allocation slices,
/// §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr {
    /// Absolute process id (rank in the ARMCI world group).
    pub rank: usize,
    /// Byte address in that process's global space; `0` = NULL.
    pub addr: usize,
}

impl GlobalAddr {
    /// The NULL global address (zero-size allocation slices).
    pub const NULL: GlobalAddr = GlobalAddr { rank: 0, addr: 0 };

    /// New address.
    pub fn new(rank: usize, addr: usize) -> GlobalAddr {
        GlobalAddr { rank, addr }
    }

    /// Is this the NULL address?
    pub fn is_null(&self) -> bool {
        self.addr == 0
    }

    /// Pointer arithmetic: `self + bytes`.
    #[must_use]
    pub fn offset(&self, bytes: usize) -> GlobalAddr {
        debug_assert!(!self.is_null(), "offsetting NULL global address");
        GlobalAddr {
            rank: self.rank,
            addr: self.addr + bytes,
        }
    }

    /// Byte distance to `other` (must be on the same rank and not before
    /// `self`).
    pub fn distance_to(&self, other: GlobalAddr) -> ArmciResult<usize> {
        if self.rank != other.rank || other.addr < self.addr {
            return Err(ArmciError::BadDescriptor(format!(
                "distance from {self:?} to {other:?} undefined"
            )));
        }
        Ok(other.addr - self.addr)
    }
}

/// Generalized I/O vector descriptor (`armci_giov_t`, §VI-A): a series of
/// equal-size transfers between one local buffer and one remote process.
///
/// The C struct carries raw pointer arrays for both sides; the Rust shape
/// keeps the local side as offsets into a caller-provided slice and the
/// remote side as addresses on a single target process (matching
/// `ARMCI_PutV(desc, len, proc)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IovDesc {
    /// Target process (absolute id).
    pub rank: usize,
    /// Byte length of every segment (`bytes`).
    pub bytes: usize,
    /// Local offset of each segment within the user buffer
    /// (`src_ptr_array` / `dst_ptr_array`, local side).
    pub local_offsets: Vec<usize>,
    /// Remote global address of each segment (remote side).
    pub remote_addrs: Vec<usize>,
}

impl IovDesc {
    /// Validates shape: equal-length arrays and non-zero segment size.
    pub fn validate(&self) -> ArmciResult<()> {
        if self.local_offsets.len() != self.remote_addrs.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "IOV: {} local vs {} remote segments",
                self.local_offsets.len(),
                self.remote_addrs.len()
            )));
        }
        if self.bytes == 0 && !self.local_offsets.is_empty() {
            return Err(ArmciError::BadDescriptor("IOV: zero-byte segments".into()));
        }
        Ok(())
    }

    /// Number of segments (`ptr_array_len`).
    pub fn len(&self) -> usize {
        self.remote_addrs.len()
    }

    /// Is the descriptor empty?
    pub fn is_empty(&self) -> bool {
        self.remote_addrs.is_empty()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes * self.len()
    }

    /// Remote segments as `(offset, len)` pairs for overlap scanning.
    pub fn remote_segments(&self) -> Vec<(usize, usize)> {
        self.remote_addrs.iter().map(|&a| (a, self.bytes)).collect()
    }

    /// The minimal remote address touched, if any.
    pub fn remote_min(&self) -> Option<usize> {
        self.remote_addrs.iter().copied().min()
    }

    /// One past the maximal remote byte touched, if any.
    pub fn remote_end(&self) -> Option<usize> {
        self.remote_addrs.iter().map(|&a| a + self.bytes).max()
    }

    /// Required length of the local buffer.
    pub fn local_end(&self) -> usize {
        self.local_offsets
            .iter()
            .map(|&o| o + self.bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_address() {
        assert!(GlobalAddr::NULL.is_null());
        assert!(!GlobalAddr::new(0, 64).is_null());
    }

    #[test]
    fn offset_arithmetic() {
        let a = GlobalAddr::new(3, 0x1000);
        let b = a.offset(0x40);
        assert_eq!(b, GlobalAddr::new(3, 0x1040));
        assert_eq!(a.distance_to(b).unwrap(), 0x40);
    }

    #[test]
    fn distance_rejects_cross_rank_and_backwards() {
        let a = GlobalAddr::new(1, 100);
        assert!(a.distance_to(GlobalAddr::new(2, 200)).is_err());
        assert!(a.distance_to(GlobalAddr::new(1, 50)).is_err());
    }

    #[test]
    fn iov_validation() {
        let good = IovDesc {
            rank: 1,
            bytes: 8,
            local_offsets: vec![0, 16],
            remote_addrs: vec![100, 200],
        };
        good.validate().unwrap();
        assert_eq!(good.len(), 2);
        assert_eq!(good.total_bytes(), 16);
        assert_eq!(good.remote_min(), Some(100));
        assert_eq!(good.remote_end(), Some(208));
        assert_eq!(good.local_end(), 24);

        let bad = IovDesc {
            rank: 1,
            bytes: 8,
            local_offsets: vec![0],
            remote_addrs: vec![100, 200],
        };
        assert!(bad.validate().is_err());

        let zero = IovDesc {
            rank: 0,
            bytes: 0,
            local_offsets: vec![0],
            remote_addrs: vec![4],
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn empty_iov_is_valid() {
        let e = IovDesc {
            rank: 0,
            bytes: 0,
            local_offsets: vec![],
            remote_addrs: vec![],
        };
        e.validate().unwrap();
        assert!(e.is_empty());
        assert_eq!(e.remote_min(), None);
        assert_eq!(e.local_end(), 0);
    }

    #[test]
    fn remote_segments_for_scanning() {
        let d = IovDesc {
            rank: 0,
            bytes: 4,
            local_offsets: vec![0, 4],
            remote_addrs: vec![32, 64],
        };
        assert_eq!(d.remote_segments(), vec![(32, 4), (64, 4)]);
    }
}
