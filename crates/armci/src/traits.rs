//! The `Armci` trait: the contract both runtimes implement.

use crate::acc::AccKind;
use crate::error::ArmciResult;
use crate::group::ArmciGroup;
use crate::types::{GlobalAddr, IovDesc};

/// Strided transfer methods implemented by ARMCI-MPI (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StridedMethod {
    /// One RMA operation per segment, each in its own epoch. Always safe
    /// (segments may overlap or span GMRs).
    IovConservative,
    /// Up to `batch` operations per epoch (`0` = unlimited). Requires
    /// non-overlapping segments within one GMR.
    IovBatched { batch: usize },
    /// Two MPI indexed datatypes, one RMA operation. Requires
    /// non-overlapping segments within one GMR.
    IovDatatype,
    /// Strided notation translated directly to MPI subarray datatypes,
    /// one RMA operation (§VI-C).
    Direct,
    /// Scan the descriptor with the conflict tree (§VI-B) and pick
    /// `IovDatatype` when clean, `IovConservative` otherwise.
    Auto,
}

/// Access-mode hints (paper §VIII-A extension). Not required for
/// correctness; they unlock shared-lock fast paths in ARMCI-MPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Conflicts possible: exclusive epochs (the default).
    Standard,
    /// The region is only read in this phase: shared locks suffice.
    ReadOnly,
    /// The region is only target of accumulates: shared locks suffice
    /// (accumulates with the same op commute).
    AccumulateOnly,
}

/// Read-modify-write operations (`ARMCI_Rmw`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `ARMCI_FETCH_AND_ADD_LONG`: returns the old value, adds the operand.
    FetchAdd(i64),
    /// `ARMCI_SWAP_LONG`: returns the old value, stores the operand.
    Swap(i64),
}

/// Handle for a nonblocking operation.
///
/// Implementations either defer the operation for real (the handle then
/// carries the runtime-assigned id that [`Armci::wait`] resolves) or
/// complete it at issue time and *say so* via `completed_eagerly` — a
/// handle is never silently synchronous.
#[derive(Debug)]
#[must_use = "nonblocking operations must be waited on"]
pub struct NbHandle {
    /// Runtime-assigned id of the deferred operation (`None` when the
    /// operation completed eagerly).
    pub id: Option<u64>,
    /// True when the implementation completed the operation at issue time
    /// (the honest answer for backends without deferred operations).
    pub completed_eagerly: bool,
}

impl NbHandle {
    /// Handle for an operation that completed at issue time.
    pub fn eager() -> NbHandle {
        NbHandle {
            id: None,
            completed_eagerly: true,
        }
    }

    /// Handle for a genuinely deferred operation.
    pub fn deferred(id: u64) -> NbHandle {
        NbHandle {
            id: Some(id),
            completed_eagerly: false,
        }
    }
}

/// The ARMCI runtime interface.
///
/// All addresses are absolute `⟨process, address⟩` pairs; group-rank
/// translation happens through [`ArmciGroup::absolute_id`] before any
/// communication call, exactly as in the C API.
pub trait Armci {
    // ---------------- identity -----------------------------------------

    /// Absolute process id of the caller.
    fn rank(&self) -> usize;

    /// Number of processes in the world group.
    fn nprocs(&self) -> usize;

    /// The world group.
    fn world_group(&self) -> ArmciGroup;

    /// The caller's current virtual time in seconds, for trace event
    /// stamps. Backends without a clock report 0.0 (events then fall back
    /// to the recording thread's last known time).
    fn vtime(&self) -> f64 {
        0.0
    }

    // ---------------- memory management ---------------------------------

    /// `ARMCI_Malloc`: collectively allocates `bytes` of globally
    /// accessible memory on every member of `group`; returns the base
    /// address vector indexed by **group rank** (NULL for zero-size
    /// slices).
    fn malloc_group(&self, bytes: usize, group: &ArmciGroup) -> ArmciResult<Vec<GlobalAddr>>;

    /// `ARMCI_Malloc` on the world group.
    fn malloc(&self, bytes: usize) -> ArmciResult<Vec<GlobalAddr>> {
        self.malloc_group(bytes, &self.world_group())
    }

    /// `ARMCI_Free` on a group allocation: collectively frees the
    /// allocation whose base on this process is `addr` (NULL if this
    /// process's slice was empty). The §V-B leader-election protocol
    /// resolves which allocation is meant when some callers hold NULL.
    fn free_group(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<()>;

    /// `ARMCI_Free` on the world group.
    fn free(&self, addr: GlobalAddr) -> ArmciResult<()> {
        self.free_group(addr, &self.world_group())
    }

    /// Applies an access-mode hint to the allocation whose base on this
    /// process is `addr` (§VIII-A). Collective over the allocation's
    /// group.
    fn set_access_mode(
        &self,
        addr: GlobalAddr,
        group: &ArmciGroup,
        mode: AccessMode,
    ) -> ArmciResult<()>;

    // ---------------- contiguous one-sided ------------------------------

    /// `ARMCI_Get`: contiguous read from global memory into `dst`.
    fn get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()>;

    /// `ARMCI_Put`: contiguous write of `src` into global memory.
    fn put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()>;

    /// `ARMCI_Acc`: contiguous scaled accumulate into global memory.
    fn acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()>;

    /// Global-to-global contiguous copy (the §V-E1 "communicating with
    /// global buffers" case). Implementations must stage through a local
    /// buffer when required to avoid double locking or deadlock.
    fn copy(&self, src: GlobalAddr, dst: GlobalAddr, bytes: usize) -> ArmciResult<()>;

    // ---------------- strided one-sided ----------------------------------

    /// `ARMCI_GetS`: strided read. `count[0]` is the contiguous byte run;
    /// `src_strides`/`dst_strides` have length `count.len() - 1`.
    fn get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()>;

    /// `ARMCI_PutS`: strided write.
    fn put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()>;

    /// `ARMCI_AccS`: strided scaled accumulate.
    fn acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()>;

    // ---------------- vector one-sided -----------------------------------

    /// `ARMCI_GetV`.
    fn get_iov(&self, desc: &IovDesc, local: &mut [u8]) -> ArmciResult<()>;

    /// `ARMCI_PutV`.
    fn put_iov(&self, desc: &IovDesc, local: &[u8]) -> ArmciResult<()>;

    /// `ARMCI_AccV`.
    fn acc_iov(&self, kind: AccKind, desc: &IovDesc, local: &[u8]) -> ArmciResult<()>;

    // ---------------- nonblocking ----------------------------------------
    //
    // The defaults return `Unsupported` rather than silently falling back
    // to the blocking operation: a caller overlapping communication with
    // computation must find out that no overlap is happening. Backends
    // either implement deferred operations for real, or complete eagerly
    // and return [`NbHandle::eager`] to record that fact.

    /// `ARMCI_NbGet`.
    fn nb_get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<NbHandle> {
        let _ = (src, dst);
        Err(crate::ArmciError::Unsupported("nonblocking get"))
    }

    /// `ARMCI_NbPut`.
    fn nb_put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        let _ = (src, dst);
        Err(crate::ArmciError::Unsupported("nonblocking put"))
    }

    /// `ARMCI_NbAcc`.
    fn nb_acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        let _ = (kind, src, dst);
        Err(crate::ArmciError::Unsupported("nonblocking accumulate"))
    }

    /// `ARMCI_NbGetS`: nonblocking strided read.
    fn nb_get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        let _ = (src, src_strides, dst, dst_strides, count);
        Err(crate::ArmciError::Unsupported("nonblocking strided get"))
    }

    /// `ARMCI_NbPutS`: nonblocking strided write.
    fn nb_put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        let _ = (src, src_strides, dst, dst_strides, count);
        Err(crate::ArmciError::Unsupported("nonblocking strided put"))
    }

    /// `ARMCI_NbAccS`: nonblocking strided accumulate.
    fn nb_acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        let _ = (kind, src, src_strides, dst, dst_strides, count);
        Err(crate::ArmciError::Unsupported("nonblocking strided acc"))
    }

    /// `ARMCI_Wait`: completes the operation behind `handle`. The default
    /// only understands eagerly-completed handles; backends with real
    /// deferred operations must override it.
    fn wait(&self, handle: NbHandle) -> ArmciResult<()> {
        if handle.completed_eagerly {
            Ok(())
        } else {
            Err(crate::ArmciError::Unsupported(
                "deferred nonblocking handles",
            ))
        }
    }

    /// `ARMCI_WaitAll` over an explicit handle list.
    fn wait_all(&self, handles: Vec<NbHandle>) -> ArmciResult<()> {
        for h in handles {
            self.wait(h)?;
        }
        Ok(())
    }

    // ---------------- ordering & synchronisation -------------------------

    /// `ARMCI_Fence`: ensures remote completion of this process's prior
    /// operations targeting `proc`.
    fn fence(&self, proc: usize) -> ArmciResult<()>;

    /// `ARMCI_AllFence`.
    fn fence_all(&self) -> ArmciResult<()>;

    /// `ARMCI_Barrier`: fence-all plus a world barrier.
    fn barrier(&self);

    // ---------------- RMW & mutexes --------------------------------------

    /// `ARMCI_Rmw` on an 8-byte integer in global memory. Atomic with
    /// respect to other ARMCI RMW operations (only — §V-D).
    fn rmw(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64>;

    /// `ARMCI_Create_mutexes`: collectively creates `count` mutexes on
    /// *each* process; returns a handle for the set. Only one set may be
    /// live at a time (as in ARMCI).
    fn create_mutexes(&self, count: usize) -> ArmciResult<usize>;

    /// `ARMCI_Lock(mutex, proc)`: locks mutex number `mutex` hosted on
    /// process `proc`. Blocks without network polling (§V-D).
    fn lock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()>;

    /// `ARMCI_Unlock(mutex, proc)`.
    fn unlock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()>;

    /// `ARMCI_Destroy_mutexes`: collective.
    fn destroy_mutexes(&self, handle: usize) -> ArmciResult<()>;

    // ---------------- direct local access (paper extension, §V-E) --------

    /// `ARMCI_Access_begin/end` pair as a closure: grants direct load/store
    /// access to `len` bytes of *this process's own* slice at `addr`.
    fn access_mut(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()>;

    /// Read-only direct access.
    fn access(&self, addr: GlobalAddr, len: usize, f: &mut dyn FnMut(&[u8])) -> ArmciResult<()>;
}

/// Typed convenience helpers shared by all implementations.
pub trait ArmciExt: Armci {
    /// Reads `n` f64 values from global memory.
    fn get_f64s(&self, src: GlobalAddr, n: usize) -> ArmciResult<Vec<f64>> {
        let mut buf = vec![0u8; n * 8];
        self.get(src, &mut buf)?;
        Ok(crate::acc::bytes_to_f64s(&buf))
    }

    /// Writes f64 values to global memory.
    fn put_f64s(&self, src: &[f64], dst: GlobalAddr) -> ArmciResult<()> {
        self.put(&crate::acc::f64s_to_bytes(src), dst)
    }

    /// Scaled f64 accumulate.
    fn acc_f64s(&self, scale: f64, src: &[f64], dst: GlobalAddr) -> ArmciResult<()> {
        self.acc(AccKind::Double(scale), &crate::acc::f64s_to_bytes(src), dst)
    }

    /// Fetch-and-add convenience (the GA `NXTVAL` primitive).
    fn fetch_add(&self, target: GlobalAddr, inc: i64) -> ArmciResult<i64> {
        self.rmw(RmwOp::FetchAdd(inc), target)
    }
}

impl<T: Armci + ?Sized> ArmciExt for T {}
