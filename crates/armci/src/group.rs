//! ARMCI processor groups (§IV).
//!
//! ARMCI groups are thin wrappers over communicators. Communication
//! operations always address **absolute** process ids (world ranks), so a
//! group's main job is the `ARMCI_Absolute_id` translation between group
//! ranks and absolute ids.

use crate::error::{ArmciError, ArmciResult};
use mpisim::Comm;

/// A processor group backed by a communicator.
#[derive(Clone, Debug)]
pub struct ArmciGroup {
    comm: Comm,
}

impl ArmciGroup {
    /// Wraps a communicator.
    pub fn from_comm(comm: Comm) -> ArmciGroup {
        ArmciGroup { comm }
    }

    /// The backing communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This process's rank within the group.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of group members.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// `ARMCI_Absolute_id`: translates a group rank to the absolute
    /// process id used by communication operations.
    pub fn absolute_id(&self, group_rank: usize) -> ArmciResult<usize> {
        if group_rank >= self.size() {
            return Err(ArmciError::BadDescriptor(format!(
                "group rank {group_rank} out of range (size {})",
                self.size()
            )));
        }
        Ok(self.comm.world_rank_of(group_rank))
    }

    /// Reverse translation: absolute id to group rank, if a member.
    pub fn group_rank_of(&self, absolute: usize) -> Option<usize> {
        self.comm.comm_rank_of_world(absolute)
    }

    /// Group barrier.
    pub fn barrier(&self) {
        self.comm.barrier();
    }

    /// Collective subgroup creation by split (colour/key semantics).
    pub fn split(&self, color: i64, key: i64) -> Option<ArmciGroup> {
        self.comm.split(color, key).map(ArmciGroup::from_comm)
    }

    /// Noncollective subgroup creation: only the listed members (group
    /// ranks, strictly sorted) call this.
    pub fn create_noncollective(&self, members: &[usize]) -> ArmciGroup {
        ArmciGroup::from_comm(self.comm.create_noncollective(members))
    }
}
