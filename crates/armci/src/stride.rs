//! Strided notation (paper Table I) and its translations (§VI-C).
//!
//! A strided transfer is described by:
//!
//! | field        | meaning                                             |
//! |--------------|-----------------------------------------------------|
//! | `src`, `dst` | base pointers                                       |
//! | `sl`         | stride levels = dimensionality − 1                  |
//! | `count[]`    | units per dimension, length `sl+1`; `count[0]` is the contiguous byte run |
//! | `src_strd[]` | source stride array, length `sl` (bytes)            |
//! | `dst_strd[]` | destination stride array, length `sl` (bytes)       |
//!
//! Two translations are provided:
//!
//! * [`StridedIter`] — **Algorithm 1** from the paper, as an iterator (the
//!   paper notes ARMCI-MPI uses the algorithm "to construct an iterator and
//!   reduce space overheads"): yields the `(src_disp, dst_disp)` pair of
//!   every contiguous segment.
//! * [`strided_to_subarray`] — the *backwards* translation from strided
//!   notation to an MPI subarray datatype: array dimensions are regenerated
//!   from the stride and count arrays (possible only when consecutive
//!   strides divide evenly, which GA-generated patches always satisfy).

use crate::error::{ArmciError, ArmciResult};
use mpisim::Datatype;

/// Validates a (strides, count) pair; returns the stride level `sl`.
pub fn validate(strides: &[usize], count: &[usize]) -> ArmciResult<usize> {
    let sl = strides.len();
    if count.len() != sl + 1 {
        return Err(ArmciError::BadDescriptor(format!(
            "count length {} != stride levels {} + 1",
            count.len(),
            sl
        )));
    }
    if count.contains(&0) {
        return Err(ArmciError::BadDescriptor("zero count".into()));
    }
    // Each stride must cover at least the extent of the level below it,
    // otherwise segments self-overlap.
    let mut inner_extent = count[0];
    for i in 0..sl {
        if strides[i] < inner_extent {
            return Err(ArmciError::BadDescriptor(format!(
                "stride[{i}] = {} smaller than inner extent {inner_extent}",
                strides[i]
            )));
        }
        inner_extent = strides[i] * count[i + 1];
    }
    Ok(sl)
}

/// Total bytes moved by a strided transfer.
pub fn total_bytes(count: &[usize]) -> usize {
    count.iter().product()
}

/// Number of contiguous segments.
pub fn num_segments(count: &[usize]) -> usize {
    count[1..].iter().product()
}

/// Extent in bytes from the base pointer to one past the last byte.
pub fn extent(strides: &[usize], count: &[usize]) -> usize {
    let mut last = count[0];
    for i in 0..strides.len() {
        last += (count[i + 1] - 1) * strides[i];
    }
    last
}

/// Algorithm 1 as an iterator: yields `(src_disp, dst_disp)` for each
/// contiguous segment of `count[0]` bytes, in row-major order.
///
/// ```
/// use armci::StridedIter;
///
/// // 4 rows of 16 bytes: source rows every 64 bytes, destination dense
/// let segs: Vec<_> = StridedIter::new(&[64], &[16], &[16, 4]).unwrap().collect();
/// assert_eq!(segs, vec![(0, 0), (64, 16), (128, 32), (192, 48)]);
/// ```
pub struct StridedIter<'a> {
    src_strides: &'a [usize],
    dst_strides: &'a [usize],
    count: &'a [usize],
    idx: Vec<usize>,
    src_disp: usize,
    dst_disp: usize,
    done: bool,
}

impl<'a> StridedIter<'a> {
    /// Builds the iterator; both stride arrays must have length
    /// `count.len() - 1`.
    pub fn new(
        src_strides: &'a [usize],
        dst_strides: &'a [usize],
        count: &'a [usize],
    ) -> ArmciResult<StridedIter<'a>> {
        let sl = validate(src_strides, count)?;
        if dst_strides.len() != sl {
            return Err(ArmciError::BadDescriptor(format!(
                "dst stride levels {} != src {}",
                dst_strides.len(),
                sl
            )));
        }
        validate(dst_strides, count)?;
        Ok(StridedIter {
            src_strides,
            dst_strides,
            count,
            idx: vec![0; sl],
            src_disp: 0,
            dst_disp: 0,
            done: false,
        })
    }

    /// Remaining segment count is exact.
    fn remaining(&self) -> usize {
        if self.done {
            return 0;
        }
        // Number of index tuples not yet yielded (current included).
        let mut left = 0usize;
        let mut scale = 1usize;
        for (i, &ix) in self.idx.iter().enumerate() {
            left += ix * scale;
            scale *= self.count[i + 1];
        }
        scale - left
    }
}

impl Iterator for StridedIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        let out = (self.src_disp, self.dst_disp);
        // Increment innermost index and propagate the carry, maintaining
        // the displacements incrementally (Algorithm 1's inner loops).
        let sl = self.idx.len();
        if sl == 0 {
            self.done = true;
            return Some(out);
        }
        let mut i = 0;
        loop {
            self.idx[i] += 1;
            self.src_disp += self.src_strides[i];
            self.dst_disp += self.dst_strides[i];
            if self.idx[i] < self.count[i + 1] {
                break;
            }
            // carry: reset this level
            self.src_disp -= self.idx[i] * self.src_strides[i];
            self.dst_disp -= self.idx[i] * self.dst_strides[i];
            self.idx[i] = 0;
            i += 1;
            if i == sl {
                self.done = true;
                break;
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for StridedIter<'_> {}

/// Backwards translation from strided notation to an MPI subarray datatype
/// (§VI-C). Returns `None` when the strides do not correspond to a dense
/// row-major array (non-divisible strides), in which case the caller falls
/// back to the IOV path.
///
/// With C dimension ordering, the reconstructed parent array has
/// `dim[sl] = count[0]` innermost bytes and `dim[i] = stride[i]/stride[i-1]`
/// for the interior dimensions; the subarray starts at index 0 in each
/// dimension with sizes `count[sl], …, count[0]`.
pub fn strided_to_subarray(strides: &[usize], count: &[usize]) -> Option<Datatype> {
    validate(strides, count).ok()?;
    let sl = strides.len();
    let n = sl + 1;
    // sizes[d] for d = 0 (outermost) .. n-1 (innermost, bytes)
    let mut sizes = vec![0usize; n];
    let mut subsizes = vec![0usize; n];
    sizes[n - 1] = if sl == 0 { count[0] } else { strides[0] };
    subsizes[n - 1] = count[0];
    for d in 1..sl {
        // dimension counting from the inside: sizes = ratio of strides
        if !strides[d].is_multiple_of(strides[d - 1]) {
            return None;
        }
        sizes[n - 1 - d] = strides[d] / strides[d - 1];
        subsizes[n - 1 - d] = count[d];
    }
    if sl >= 1 {
        sizes[0] = count[sl];
        subsizes[0] = count[sl];
    }
    if subsizes.iter().zip(&sizes).any(|(&s, &z)| s > z) {
        return None;
    }
    let starts = vec![0usize; n];
    Datatype::subarray(&sizes, &subsizes, &starts, 1).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_checks_lengths_and_zero_counts() {
        assert!(validate(&[64], &[16, 4]).is_ok());
        assert!(validate(&[64], &[16]).is_err());
        assert!(validate(&[64], &[16, 0]).is_err());
        assert!(validate(&[8], &[16, 2]).is_err()); // stride < contiguous run
    }

    #[test]
    fn totals_and_extent() {
        // 4 rows of 16 bytes, row stride 64
        let strides = [64usize];
        let count = [16usize, 4];
        assert_eq!(total_bytes(&count), 64);
        assert_eq!(num_segments(&count), 4);
        assert_eq!(extent(&strides, &count), 3 * 64 + 16);
    }

    #[test]
    fn contiguous_transfer_single_segment() {
        let it = StridedIter::new(&[], &[], &[128]).unwrap();
        let v: Vec<_> = it.collect();
        assert_eq!(v, vec![(0, 0)]);
    }

    #[test]
    fn one_level_strided_displacements() {
        // src rows every 64 bytes, dst packs rows densely every 16 bytes
        let it = StridedIter::new(&[64], &[16], &[16, 4]).unwrap();
        let v: Vec<_> = it.collect();
        assert_eq!(v, vec![(0, 0), (64, 16), (128, 32), (192, 48)]);
    }

    #[test]
    fn two_level_strided_matches_reference_algorithm() {
        let src_strides = [32usize, 256];
        let dst_strides = [8usize, 24];
        let count = [8usize, 3, 5];
        let fast: Vec<_> = StridedIter::new(&src_strides, &dst_strides, &count)
            .unwrap()
            .collect();
        // Literal transcription of Algorithm 1 (non-incremental).
        let mut reference = Vec::new();
        let sl = 2;
        let mut idx = [0usize; 2];
        while idx[sl - 1] < count[sl] {
            let mut ds = 0;
            let mut dd = 0;
            for i in 0..sl {
                ds += src_strides[i] * idx[i];
                dd += dst_strides[i] * idx[i];
            }
            reference.push((ds, dd));
            idx[0] += 1;
            for i in 0..sl - 1 {
                if idx[i] >= count[i + 1] {
                    idx[i] = 0;
                    idx[i + 1] += 1;
                }
            }
        }
        assert_eq!(fast, reference);
        assert_eq!(fast.len(), 15);
    }

    #[test]
    fn exact_size_iterator_contract() {
        let mut it = StridedIter::new(&[64, 1024], &[64, 1024], &[16, 4, 3]).unwrap();
        assert_eq!(it.len(), 12);
        it.next();
        assert_eq!(it.len(), 11);
        let rest: Vec<_> = it.collect();
        assert_eq!(rest.len(), 11);
    }

    #[test]
    fn subarray_roundtrip_matches_iterator_segments() {
        // 2-D patch: rows of 24 bytes, 5 rows, row stride 100
        let strides = [100usize];
        let count = [24usize, 5];
        let dt = strided_to_subarray(&strides, &count).expect("dense");
        let from_dtype = dt.segments();
        let from_iter: Vec<(usize, usize)> = StridedIter::new(&strides, &strides, &count)
            .unwrap()
            .map(|(s, _)| (s, count[0]))
            .collect();
        assert_eq!(from_dtype, from_iter);
    }

    #[test]
    fn subarray_3d_roundtrip() {
        let strides = [32usize, 320];
        let count = [8usize, 4, 3];
        let dt = strided_to_subarray(&strides, &count).expect("dense");
        assert_eq!(dt.size(), 96);
        let from_dtype = dt.segments();
        let from_iter: Vec<(usize, usize)> = StridedIter::new(&strides, &strides, &count)
            .unwrap()
            .map(|(s, _)| (s, count[0]))
            .collect();
        assert_eq!(from_dtype, from_iter);
    }

    #[test]
    fn non_divisible_strides_fall_back() {
        // stride[1] not a multiple of stride[0]
        assert!(strided_to_subarray(&[32, 100], &[8, 2, 2]).is_none());
    }

    #[test]
    fn full_rows_coalesce_in_subarray() {
        // contiguous run equals the row stride: 1 segment
        let dt = strided_to_subarray(&[16], &[16, 4]).unwrap();
        assert_eq!(dt.segments(), vec![(0, 64)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_shape() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
        // up to 3 stride levels with dense, divisible strides
        (1usize..4).prop_flat_map(|sl| {
            let counts = proptest::collection::vec(1usize..6, sl + 1);
            counts.prop_flat_map(move |count| {
                // build strides: stride[0] >= count[0], stride[i] >= stride[i-1]*count[i]
                let pads = proptest::collection::vec(0usize..4, sl);
                (Just(count), pads).prop_map(|(count, pads)| {
                    let mut strides = Vec::with_capacity(count.len() - 1);
                    let mut inner = count[0];
                    for (i, pad) in pads.iter().enumerate() {
                        let s = inner + pad;
                        strides.push(s);
                        inner = s * count[i + 1];
                    }
                    (strides, count)
                })
            })
        })
    }

    proptest! {
        /// The incremental iterator matches brute-force displacement
        /// computation for arbitrary dense shapes.
        #[test]
        fn iterator_matches_bruteforce((strides, count) in arb_shape()) {
            let got: Vec<(usize, usize)> =
                StridedIter::new(&strides, &strides, &count).unwrap().collect();
            // brute force over all index tuples
            let sl = strides.len();
            let mut expect = Vec::new();
            let mut idx = vec![0usize; sl];
            'outer: loop {
                let disp: usize = idx.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
                expect.push((disp, disp));
                let mut d = 0;
                loop {
                    if d == sl {
                        break 'outer;
                    }
                    idx[d] += 1;
                    if idx[d] < count[d + 1] {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                }
            }
            prop_assert_eq!(got, expect);
        }

        /// Segments produced by a strided descriptor never overlap
        /// (validated strides guarantee disjointness).
        #[test]
        fn strided_segments_are_disjoint((strides, count) in arb_shape()) {
            let segs: Vec<(usize, usize)> =
                StridedIter::new(&strides, &strides, &count).unwrap()
                    .map(|(s, _)| (s, count[0]))
                    .collect();
            let mut sorted = segs.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0,
                    "segments {:?} and {:?} overlap", w[0], w[1]);
            }
        }

        /// When the subarray translation succeeds its segments equal the
        /// iterator's.
        #[test]
        fn subarray_equals_iterator((strides, count) in arb_shape()) {
            if let Some(dt) = strided_to_subarray(&strides, &count) {
                let mut from_iter: Vec<(usize, usize)> =
                    StridedIter::new(&strides, &strides, &count).unwrap()
                        .map(|(s, _)| (s, count[0]))
                        .collect();
                // the datatype coalesces adjacent runs; do the same
                from_iter.sort_unstable();
                let mut coalesced: Vec<(usize, usize)> = Vec::new();
                for (off, len) in from_iter {
                    match coalesced.last_mut() {
                        Some(last) if last.0 + last.1 == off => last.1 += len,
                        _ => coalesced.push((off, len)),
                    }
                }
                prop_assert_eq!(dt.segments(), coalesced);
                prop_assert_eq!(dt.size(), total_bytes(&count));
            }
        }
    }
}
