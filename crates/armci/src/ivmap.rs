//! Per-rank sorted interval map for address translation (§V-A).
//!
//! Both ARMCI backends keep the same index: for every process, the set of
//! allocation slices living in its address space, queried on every
//! communication call with "which allocation contains `[addr, addr+len)`
//! on rank r?". Intervals are non-overlapping, so a base-address ordered
//! map answers containment with one `O(log n)` predecessor probe: the
//! candidate is the greatest base `<= addr`, and the range matches iff it
//! ends beyond `addr + len`.
//!
//! `armci-mpi` stores `(gmr id, size)` per slice, the native baseline
//! stores `(allocation id, size)`; both wrap this one structure.

use std::collections::{BTreeMap, HashMap};

/// A located interval: the slice base/size plus the caller's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Found<T> {
    pub base: usize,
    pub size: usize,
    pub value: T,
}

/// Per-rank base-ordered interval index; `T` is the per-slice payload
/// (an allocation id in both backends).
#[derive(Debug, Clone, Default)]
pub struct IntervalMap<T> {
    by_rank: HashMap<usize, BTreeMap<usize, (usize, T)>>,
}

impl<T: Copy> IntervalMap<T> {
    pub fn new() -> IntervalMap<T> {
        IntervalMap {
            by_rank: HashMap::new(),
        }
    }

    /// Registers the slice `[base, base+size)` on `rank`. NULL bases and
    /// empty slices are never indexed.
    pub fn insert(&mut self, rank: usize, base: usize, size: usize, value: T) {
        debug_assert!(base != 0 && size > 0);
        self.by_rank
            .entry(rank)
            .or_default()
            .insert(base, (size, value));
    }

    /// Unregisters the slice at `base` on `rank`, returning its payload.
    /// Removing an unknown base is a no-op. Empties prune their rank
    /// entry so alloc/free cycles leave no residue.
    pub fn remove(&mut self, rank: usize, base: usize) -> Option<T> {
        let m = self.by_rank.get_mut(&rank)?;
        let out = m.remove(&base).map(|(_, v)| v);
        if m.is_empty() {
            self.by_rank.remove(&rank);
        }
        out
    }

    /// Finds the slice containing `[addr, addr+len)` on `rank`
    /// (`len == 0` is treated as 1: the address itself must be inside).
    pub fn lookup(&self, rank: usize, addr: usize, len: usize) -> Option<Found<T>> {
        let m = self.by_rank.get(&rank)?;
        let (&base, &(size, value)) = m.range(..=addr).next_back()?;
        if addr + len.max(1) <= base + size {
            Some(Found { base, size, value })
        } else {
            None
        }
    }

    /// Total registered slices across all ranks (diagnostics; the
    /// alloc/free-loop tests assert this stays bounded).
    pub fn len(&self) -> usize {
        self.by_rank.values().map(BTreeMap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of ranks with at least one registered slice.
    pub fn rank_count(&self) -> usize {
        self.by_rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_containing_interval() {
        let mut t = IntervalMap::new();
        t.insert(2, 0x1000, 256, 7u64);
        t.insert(2, 0x2000, 128, 8);
        assert_eq!(t.lookup(2, 0x10ff, 1).map(|f| f.value), Some(7));
        assert_eq!(t.lookup(2, 0x10f0, 32), None);
        assert_eq!(t.lookup(2, 0x2040, 64).map(|f| f.base), Some(0x2000));
        assert_eq!(t.lookup(2, 0x1a00, 1), None);
        assert_eq!(t.lookup(3, 0x1000, 1), None);
    }

    #[test]
    fn remove_prunes_empty_ranks() {
        let mut t = IntervalMap::new();
        t.insert(1, 0x100, 16, 1u64);
        assert_eq!(t.rank_count(), 1);
        assert_eq!(t.remove(1, 0x100), Some(1));
        assert_eq!(t.rank_count(), 0);
        assert!(t.is_empty());
        assert_eq!(t.remove(9, 0xdead), None);
    }
}
