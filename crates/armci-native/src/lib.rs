//! **ARMCI-Native** — the baseline the paper compares against: a "native"
//! ARMCI implementation using the platform's own communication machinery
//! rather than MPI RMA.
//!
//! Real native ports drive RDMA hardware directly, allocate from prepinned
//! segments, run a communication helper thread (CHT) for asynchronous
//! progress, and ship hand-tuned strided engines. In this workspace the
//! data path is direct shared memory (the [`mpisim`] shared-segment
//! registry standing in for XPMEM), and *performance* comes from the
//! platform's **native** cost model ([`simnet::Platform`]`::native`) —
//! calibrated per platform to the paper's measured native curves,
//! including the deliberately weak Cray XE6 development release.
//!
//! Semantics implemented to the same contract as `armci-mpi`
//! ([`armci::Armci`]):
//!
//! * eager one-sided get/put/accumulate with location consistency
//!   (per-target reader–writer locks; an origin observes its own
//!   operations in order);
//! * tuned strided/IOV engines (single lock acquisition, pipelined
//!   segments — the `Native` branch of
//!   [`simnet::BackendParams::strided_cost`]);
//! * hardware-latency RMW (the CHT services it without mutexes);
//! * host-side queueing mutexes with FIFO fairness;
//! * `ARMCI_Fence` charges a round trip (native puts complete remotely
//!   only at fence, unlike ARMCI-MPI where fence is a no-op).

use armci::stride::{extent, num_segments, validate, StridedIter};
use armci::{
    AccKind, AccessMode, Armci, ArmciError, ArmciGroup, ArmciResult, GlobalAddr, IntervalMap,
    IovDesc, NbHandle, RmwOp,
};
use mpisim::{Comm, Proc};
use parking_lot::{Condvar, Mutex, RwLock};
use simnet::{BufferPool, Op, PoolStats, RegistrationPolicy, StridedMethodCost};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Shared segments
// ---------------------------------------------------------------------

/// One rank's slice of a native allocation.
struct Slice {
    buf: std::cell::UnsafeCell<Box<[u8]>>,
    /// Location-consistency lock: reads shared, writes exclusive.
    lock: RwLock<()>,
}

// Safety: all byte access is guarded by `lock`.
unsafe impl Sync for Slice {}
unsafe impl Send for Slice {}

/// A native allocation shared by a group (XPMEM-style mapping).
struct Segment {
    slices: Vec<Slice>,
    /// Queueing mutexes for the user-level `ARMCI_Lock` API (mutex sets
    /// are hosted in dedicated segments).
    mutexes: Vec<QueueMutex>,
}

/// A host-side queueing mutex with FIFO fairness (what the CHT provides
/// in real native ports).
struct QueueMutex {
    m: Mutex<QmState>,
    cv: Condvar,
}

#[derive(Default)]
struct QmState {
    held: bool,
    next_ticket: u64,
    serving: u64,
}

impl QueueMutex {
    fn new() -> QueueMutex {
        QueueMutex {
            m: Mutex::new(QmState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) {
        let mut st = self.m.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.held || st.serving != ticket {
            self.cv.wait(&mut st);
        }
        st.held = true;
    }

    fn unlock(&self) {
        let mut st = self.m.lock();
        debug_assert!(st.held);
        st.held = false;
        st.serving += 1;
        self.cv.notify_all();
    }
}

struct Allocation {
    seg: Arc<Segment>,
    group: ArmciGroup,
    bases: Vec<usize>,
    #[allow(dead_code)]
    sizes: Vec<usize>,
    mode: Cell<AccessMode>,
}

// ---------------------------------------------------------------------
// Runtime handle
// ---------------------------------------------------------------------

/// Bytes of bounce-buffer space a native port registers with the NIC up
/// front (the prepinned segment real ports carve from `ARMCI_Init`).
const PREPIN_BYTES: usize = 4 << 20;

/// Per-process handle for the native ARMCI baseline.
pub struct ArmciNative {
    world: Comm,
    /// `(rank, base) → allocation id` translation over the shared
    /// [`IntervalMap`] (same index structure as ARMCI-MPI's GMR table).
    table: RefCell<IntervalMap<u64>>,
    allocs: RefCell<HashMap<u64, Allocation>>,
    next_addr: Cell<usize>,
    user_mutexes: RefCell<HashMap<usize, (Arc<Segment>, usize)>>,
    next_handle: Cell<usize>,
    /// Prepinned staging pool: registration is paid once at init, so
    /// bounce copies never pay first-touch pin cost (the native half of
    /// the paper's Fig-5 registration story).
    pool: BufferPool,
}

struct Located {
    alloc_id: u64,
    group_rank: usize,
    disp: usize,
}

impl ArmciNative {
    /// Bootstraps the native runtime for this process. Registration of
    /// the prepinned staging slab is charged here, once, so per-op bounce
    /// copies run at full rate afterwards.
    pub fn new(proc: &Proc) -> ArmciNative {
        let world = proc.world();
        let pool = BufferPool::new(RegistrationPolicy::Prepinned, world.platform().reg.clone());
        let prepin_cost = pool.prepin(PREPIN_BYTES);
        if prepin_cost > 0.0 {
            world.charge_time(prepin_cost);
        }
        ArmciNative {
            world,
            table: RefCell::new(IntervalMap::new()),
            allocs: RefCell::new(HashMap::new()),
            next_addr: Cell::new(0x1000),
            user_mutexes: RefCell::new(HashMap::new()),
            next_handle: Cell::new(1),
            pool,
        }
    }

    /// Buffer-pool statistics (hits, misses, registration cost). The
    /// init-time prepin of the slab is included in `reg_cost_s` until
    /// [`Self::reset_pool_stats`] is called.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Zeroes the pool counters (cached buffers stay pinned).
    pub fn reset_pool_stats(&self) {
        self.pool.reset_stats();
    }

    /// Pooled scratch: charges any registration cost the take incurred
    /// (only possible once the prepinned budget is exhausted).
    fn scratch(&self, len: usize) -> simnet::PoolBuf {
        let buf = self.pool.take(len);
        if buf.reg_cost() > 0.0 {
            self.charge(buf.reg_cost());
        }
        buf
    }

    fn params(&self) -> &simnet::BackendParams {
        &self.world.platform().native
    }

    fn charge(&self, dt: f64) {
        self.world.charge_time(dt);
    }

    fn locate(&self, addr: GlobalAddr, len: usize) -> ArmciResult<Located> {
        if addr.is_null() {
            return Err(ArmciError::BadAddress {
                rank: addr.rank,
                addr: addr.addr,
            });
        }
        let table = self.table.borrow();
        let found = table.lookup(addr.rank, addr.addr, len).ok_or_else(|| {
            match table.lookup(addr.rank, addr.addr, 1) {
                // base found but range too long → precise bounds error
                Some(f) => ArmciError::OutOfBounds {
                    rank: addr.rank,
                    addr: addr.addr,
                    len,
                    limit: f.base + f.size,
                },
                None => ArmciError::BadAddress {
                    rank: addr.rank,
                    addr: addr.addr,
                },
            }
        })?;
        let (id, base) = (found.value, found.base);
        let allocs = self.allocs.borrow();
        let alloc = allocs.get(&id).ok_or(ArmciError::BadAddress {
            rank: addr.rank,
            addr: addr.addr,
        })?;
        let group_rank = alloc
            .group
            .group_rank_of(addr.rank)
            .ok_or(ArmciError::NotInGroup)?;
        Ok(Located {
            alloc_id: id,
            group_rank,
            disp: addr.addr - base,
        })
    }

    /// Runs `f` with read access to the target slice bytes.
    fn with_read<R>(
        &self,
        loc: &Located,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> ArmciResult<R> {
        let allocs = self.allocs.borrow();
        let alloc = allocs
            .get(&loc.alloc_id)
            .ok_or(ArmciError::GmrVanished { gmr: loc.alloc_id })?;
        let slice = &alloc.seg.slices[loc.group_rank];
        let _g = slice.lock.read();
        // Safety: `lock` guards all access to `buf`.
        let buf = unsafe { &*slice.buf.get() };
        Ok(f(&buf[loc.disp..loc.disp + len]))
    }

    /// Runs `f` with write access to the target slice bytes.
    fn with_write<R>(
        &self,
        loc: &Located,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> ArmciResult<R> {
        let allocs = self.allocs.borrow();
        let alloc = allocs
            .get(&loc.alloc_id)
            .ok_or(ArmciError::GmrVanished { gmr: loc.alloc_id })?;
        let slice = &alloc.seg.slices[loc.group_rank];
        let _g = slice.lock.write();
        // Safety: `lock` guards all access to `buf`.
        let buf = unsafe { &mut *slice.buf.get() };
        Ok(f(&mut buf[loc.disp..loc.disp + len]))
    }

    fn strided_charge(&self, method: StridedMethodCost, op: Op, nsegs: usize, seg: usize) {
        self.charge(self.params().strided_cost(method, op, nsegs, seg));
    }

    /// Resolves an allocation id leader-election style for collectives
    /// where some callers hold NULL bases (§V-B).
    fn locate_collective(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<u64> {
        let comm = group.comm();
        let my_vote = if addr.is_null() {
            -1
        } else {
            group.rank() as i64
        };
        let (winner, leader) = comm.maxloc_i64(my_vote);
        if winner < 0 {
            return Err(ArmciError::BadDescriptor(
                "collective call with all-NULL addresses".into(),
            ));
        }
        let payload = if group.rank() == leader {
            Some(addr.addr as u64)
        } else {
            None
        };
        let leader_addr = comm.bcast_u64(leader, payload) as usize;
        let leader_abs = group.absolute_id(leader)?;
        Ok(self
            .locate(GlobalAddr::new(leader_abs, leader_addr), 1)?
            .alloc_id)
    }
}

impl Armci for ArmciNative {
    fn rank(&self) -> usize {
        self.world.rank()
    }

    fn nprocs(&self) -> usize {
        self.world.size()
    }

    fn world_group(&self) -> ArmciGroup {
        ArmciGroup::from_comm(self.world.clone())
    }

    fn malloc_group(&self, bytes: usize, group: &ArmciGroup) -> ArmciResult<Vec<GlobalAddr>> {
        let comm = group.comm();
        let base = if bytes > 0 {
            let b = self.next_addr.get();
            self.next_addr.set(b + bytes.div_ceil(64) * 64 + 64);
            b
        } else {
            0
        };
        // Agree on a segment id (leader allocates, broadcast).
        let id_payload = if comm.rank() == 0 {
            Some(comm.alloc_uid())
        } else {
            None
        };
        let id = comm.bcast_u64(0, id_payload);
        // Exchange bases and sizes.
        let all = comm.allgather_u64s(&[base as u64, bytes as u64]);
        let bases: Vec<usize> = all.iter().map(|b| b[0] as usize).collect();
        let sizes: Vec<usize> = all.iter().map(|b| b[1] as usize).collect();
        // First registrant constructs the shared segment.
        let seg = {
            let candidate: Arc<Segment> = Arc::new(Segment {
                slices: sizes
                    .iter()
                    .map(|&s| Slice {
                        buf: std::cell::UnsafeCell::new(vec![0u8; s].into_boxed_slice()),
                        lock: RwLock::new(()),
                    })
                    .collect(),
                mutexes: Vec::new(),
            });
            comm.shmem_register(id, candidate)
                .downcast::<Segment>()
                .expect("segment type")
        };
        // Everyone must observe the registration before first use.
        comm.barrier();
        {
            let mut table = self.table.borrow_mut();
            for (gr, (&b, &s)) in bases.iter().zip(&sizes).enumerate() {
                if b != 0 {
                    let abs = group.absolute_id(gr)?;
                    table.insert(abs, b, s, id);
                }
            }
        }
        self.allocs.borrow_mut().insert(
            id,
            Allocation {
                seg,
                group: group.clone(),
                bases: bases.clone(),
                sizes,
                mode: Cell::new(AccessMode::Standard),
            },
        );
        let mut out = Vec::with_capacity(bases.len());
        for (gr, &b) in bases.iter().enumerate() {
            out.push(if b == 0 {
                GlobalAddr::NULL
            } else {
                GlobalAddr::new(group.absolute_id(gr)?, b)
            });
        }
        Ok(out)
    }

    fn free_group(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<()> {
        let alloc_id = self.locate_collective(addr, group)?;
        let alloc = self
            .allocs
            .borrow_mut()
            .remove(&alloc_id)
            .ok_or(ArmciError::BadAddress {
                rank: addr.rank,
                addr: addr.addr,
            })?;
        {
            let mut table = self.table.borrow_mut();
            for (gr, &b) in alloc.bases.iter().enumerate() {
                if b != 0 {
                    let abs = alloc.group.absolute_id(gr)?;
                    table.remove(abs, b);
                }
            }
        }
        let comm = group.comm();
        comm.barrier();
        if comm.rank() == 0 {
            comm.shmem_remove(alloc_id);
        }
        comm.barrier();
        Ok(())
    }

    fn set_access_mode(
        &self,
        addr: GlobalAddr,
        group: &ArmciGroup,
        mode: AccessMode,
    ) -> ArmciResult<()> {
        // Native implementations can exploit these hints (§VIII-A, e.g.
        // enabling adaptive routing); here they quiesce and record.
        let alloc_id = self.locate_collective(addr, group)?;
        group.barrier();
        if let Some(a) = self.allocs.borrow().get(&alloc_id) {
            a.mode.set(mode);
        }
        group.barrier();
        Ok(())
    }

    fn get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()> {
        if dst.is_empty() {
            return Ok(());
        }
        let loc = self.locate(src, dst.len())?;
        self.with_read(&loc, dst.len(), |b| dst.copy_from_slice(b))?;
        self.charge(self.params().contig_epoch_cost(Op::Get, dst.len()));
        Ok(())
    }

    fn put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        let loc = self.locate(dst, src.len())?;
        self.with_write(&loc, src.len(), |b| b.copy_from_slice(src))?;
        self.charge(self.params().contig_epoch_cost(Op::Put, src.len()));
        Ok(())
    }

    fn acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        kind.check_len(src.len())?;
        let loc = self.locate(dst, src.len())?;
        self.with_write(&loc, src.len(), |b| kind.apply(b, src))??;
        self.charge(self.params().contig_epoch_cost(Op::Acc, src.len()));
        Ok(())
    }

    fn copy(&self, src: GlobalAddr, dst: GlobalAddr, bytes: usize) -> ArmciResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        // Bounce through the prepinned staging pool.
        let mut tmp = self.scratch(bytes);
        self.get(src, &mut tmp)?;
        self.put(&tmp, dst)
    }

    fn get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let loc = self.locate(src, extent(src_strides, count))?;
        let seg = count[0];
        self.with_read(&loc, extent(src_strides, count), |b| -> ArmciResult<()> {
            for (sdisp, ddisp) in StridedIter::new(src_strides, dst_strides, count)? {
                dst[ddisp..ddisp + seg].copy_from_slice(&b[sdisp..sdisp + seg]);
            }
            Ok(())
        })??;
        self.strided_charge(StridedMethodCost::Native, Op::Get, num_segments(count), seg);
        Ok(())
    }

    fn put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let loc = self.locate(dst, extent(dst_strides, count))?;
        let seg = count[0];
        self.with_write(&loc, extent(dst_strides, count), |b| -> ArmciResult<()> {
            for (sdisp, ddisp) in StridedIter::new(src_strides, dst_strides, count)? {
                b[ddisp..ddisp + seg].copy_from_slice(&src[sdisp..sdisp + seg]);
            }
            Ok(())
        })??;
        self.strided_charge(StridedMethodCost::Native, Op::Put, num_segments(count), seg);
        Ok(())
    }

    fn acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        kind.check_len(count[0])?;
        let loc = self.locate(dst, extent(dst_strides, count))?;
        let seg = count[0];
        self.with_write(&loc, extent(dst_strides, count), |b| -> ArmciResult<()> {
            for (sdisp, ddisp) in StridedIter::new(src_strides, dst_strides, count)? {
                kind.apply(&mut b[ddisp..ddisp + seg], &src[sdisp..sdisp + seg])?;
            }
            Ok(())
        })??;
        self.strided_charge(StridedMethodCost::Native, Op::Acc, num_segments(count), seg);
        Ok(())
    }

    fn get_iov(&self, desc: &IovDesc, local: &mut [u8]) -> ArmciResult<()> {
        desc.validate()?;
        if desc.is_empty() {
            return Ok(());
        }
        for (&loff, &raddr) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            let loc = self.locate(GlobalAddr::new(desc.rank, raddr), desc.bytes)?;
            self.with_read(&loc, desc.bytes, |b| {
                local[loff..loff + desc.bytes].copy_from_slice(b)
            })?;
        }
        self.strided_charge(StridedMethodCost::Native, Op::Get, desc.len(), desc.bytes);
        Ok(())
    }

    fn put_iov(&self, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        desc.validate()?;
        if desc.is_empty() {
            return Ok(());
        }
        for (&loff, &raddr) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            let loc = self.locate(GlobalAddr::new(desc.rank, raddr), desc.bytes)?;
            self.with_write(&loc, desc.bytes, |b| {
                b.copy_from_slice(&local[loff..loff + desc.bytes])
            })?;
        }
        self.strided_charge(StridedMethodCost::Native, Op::Put, desc.len(), desc.bytes);
        Ok(())
    }

    fn acc_iov(&self, kind: AccKind, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        desc.validate()?;
        kind.check_len(desc.bytes)?;
        if desc.is_empty() {
            return Ok(());
        }
        for (&loff, &raddr) in desc.local_offsets.iter().zip(&desc.remote_addrs) {
            let loc = self.locate(GlobalAddr::new(desc.rank, raddr), desc.bytes)?;
            self.with_write(&loc, desc.bytes, |b| {
                kind.apply(b, &local[loff..loff + desc.bytes])
            })??;
        }
        self.strided_charge(StridedMethodCost::Native, Op::Acc, desc.len(), desc.bytes);
        Ok(())
    }

    // Shared-memory transfers complete inside the call itself, so the
    // nonblocking entry points legitimately complete eagerly: the returned
    // handle says so (`completed_eagerly`), and `wait` on it is a no-op.
    // This is honest eager completion, not a blocking shim — there is no
    // deferred work a request could name.

    fn nb_get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<NbHandle> {
        self.get(src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.put(src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.acc(kind, src, dst)?;
        Ok(NbHandle::eager())
    }

    fn nb_get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.get_strided(src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn nb_put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.put_strided(src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn nb_acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.acc_strided(kind, src, src_strides, dst, dst_strides, count)?;
        Ok(NbHandle::eager())
    }

    fn fence(&self, _proc: usize) -> ArmciResult<()> {
        // Native puts are fire-and-forget; fence waits for remote
        // completion (one round trip).
        self.charge(2.0 * self.params().put.alpha);
        Ok(())
    }

    fn fence_all(&self) -> ArmciResult<()> {
        self.charge(2.0 * self.params().put.alpha);
        Ok(())
    }

    fn barrier(&self) {
        self.fence_all().expect("fence_all cannot fail");
        self.world.barrier();
    }

    fn rmw(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        let loc = self.locate(target, 8)?;
        let old = self.with_write(&loc, 8, |b| {
            let old = i64::from_le_bytes(b[..8].try_into().unwrap());
            let new = match op {
                RmwOp::FetchAdd(x) => old.wrapping_add(x),
                RmwOp::Swap(x) => x,
            };
            b.copy_from_slice(&new.to_le_bytes());
            old
        })?;
        // Hardware / CHT-serviced atomic: single network latency.
        self.charge(self.params().rmw_latency);
        Ok(old)
    }

    fn create_mutexes(&self, count: usize) -> ArmciResult<usize> {
        // Host the mutexes in a dedicated shared segment.
        let comm = &self.world;
        let id_payload = if comm.rank() == 0 {
            Some(comm.alloc_uid())
        } else {
            None
        };
        let id = comm.bcast_u64(0, id_payload);
        let candidate: Arc<Segment> = Arc::new(Segment {
            slices: Vec::new(),
            mutexes: (0..count * comm.size())
                .map(|_| QueueMutex::new())
                .collect(),
        });
        let seg = comm
            .shmem_register(id, candidate)
            .downcast::<Segment>()
            .expect("segment type");
        comm.barrier();
        let handle = self.next_handle.get();
        self.next_handle.set(handle + 1);
        self.user_mutexes.borrow_mut().insert(handle, (seg, count));
        Ok(handle)
    }

    fn lock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        let sets = self.user_mutexes.borrow();
        let (seg, count) = sets
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        if mutex >= *count || proc >= self.world.size() {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex}@{proc} out of range"
            )));
        }
        seg.mutexes[proc * count + mutex].lock();
        self.charge(self.params().rmw_latency);
        Ok(())
    }

    fn unlock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        let sets = self.user_mutexes.borrow();
        let (seg, count) = sets
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        if mutex >= *count || proc >= self.world.size() {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex}@{proc} out of range"
            )));
        }
        seg.mutexes[proc * count + mutex].unlock();
        self.charge(self.params().rmw_latency);
        Ok(())
    }

    fn destroy_mutexes(&self, handle: usize) -> ArmciResult<()> {
        self.user_mutexes
            .borrow_mut()
            .remove(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown handle {handle}")))?;
        self.world.barrier();
        Ok(())
    }

    fn access_mut(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            return Err(ArmciError::BadDescriptor(
                "direct access to a remote process".into(),
            ));
        }
        let loc = self.locate(addr, len)?;
        self.with_write(&loc, len, |b| f(b))
    }

    fn access(&self, addr: GlobalAddr, len: usize, f: &mut dyn FnMut(&[u8])) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            return Err(ArmciError::BadDescriptor(
                "direct access to a remote process".into(),
            ));
        }
        let loc = self.locate(addr, len)?;
        self.with_read(&loc, len, |b| f(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_mutex_counts_correctly_under_contention() {
        let m = Arc::new(QueueMutex::new());
        let counter = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.lock();
                        {
                            let mut g = c.lock();
                            *g += 1;
                        }
                        m.unlock();
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 800);
    }

    #[test]
    fn queue_mutex_grants_in_ticket_order() {
        // Single-threaded sanity of the ticket machinery.
        let m = QueueMutex::new();
        m.lock();
        m.unlock();
        m.lock();
        m.unlock();
    }
}
