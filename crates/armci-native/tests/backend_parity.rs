//! Backend parity: the same ARMCI program must produce identical results
//! on ARMCI-MPI and ARMCI-Native — the property that lets GA/NWChem be
//! relinked against either runtime (Figure 1).

use armci::{Armci, ArmciExt, IovDesc, RmwOp};
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use mpisim::{Proc, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

/// A deterministic mixed workload driven through the trait object;
/// returns a digest of everything rank 0 observed.
fn scenario(p: &Proc, rt: &dyn Armci, seed: u64) -> Vec<f64> {
    let n = rt.nprocs();
    let me = rt.rank();
    let words = 64usize;
    let bases = rt.malloc(words * 8).unwrap();
    rt.barrier();

    let mut rng = StdRng::seed_from_u64(seed + me as u64);
    // Phase 1: every rank puts a pattern into its right neighbour.
    let pattern: Vec<f64> = (0..words).map(|i| (me * 1000 + i) as f64).collect();
    rt.put_f64s(&pattern, bases[(me + 1) % n]).unwrap();
    rt.barrier();

    // Phase 2: random accumulates into rank 0 (deterministic per rank).
    for _ in 0..10 {
        let off = rng.gen_range(0..words - 8);
        rt.acc_f64s(2.0, &[1.0; 8], bases[0].offset(off * 8))
            .unwrap();
    }
    rt.barrier();

    // Phase 3: strided put of a 4x4 f64 block into rank 0's tail half,
    // only from rank n-1 (deterministic).
    if me == n - 1 {
        let block: Vec<u8> = armci::acc::f64s_to_bytes(&[7.5; 16]);
        rt.put_strided(&block, &[32], bases[0].offset(words * 4), &[64], &[32, 4])
            .unwrap();
    }
    rt.barrier();

    // Phase 4: fetch-add token ring.
    let counter = bases[0].offset((words - 1) * 8);
    let _ = rt.rmw(RmwOp::FetchAdd(1), counter).unwrap();
    rt.barrier();

    // Phase 5: IOV gather of four slots from rank 0 into rank 1.
    if me == 1 {
        let desc = IovDesc {
            rank: bases[0].rank,
            bytes: 8,
            local_offsets: vec![0, 8, 16, 24],
            remote_addrs: vec![
                bases[0].addr,
                bases[0].addr + 16,
                bases[0].addr + 32,
                bases[0].addr + 64,
            ],
        };
        let mut four = vec![0u8; 32];
        rt.get_iov(&desc, &mut four).unwrap();
        rt.put(&four, bases[2]).unwrap();
    }
    rt.barrier();

    // Digest: rank 0 reads everything relevant.
    let digest = if me == 0 {
        let mut d = rt.get_f64s(bases[0], words).unwrap();
        d.extend(rt.get_f64s(bases[1], words).unwrap());
        d.extend(rt.get_f64s(bases[2], 4).unwrap());
        d
    } else {
        Vec::new()
    };
    rt.barrier();
    rt.free(bases[me]).unwrap();
    let _ = p;
    digest
}

#[test]
fn mixed_workload_identical_across_backends() {
    let n = 4;
    let on_mpi = Runtime::run_with(n, quiet(), |p| {
        let rt = ArmciMpi::new(p);
        scenario(p, &rt, 42)
    });
    let on_native = Runtime::run_with(n, quiet(), |p| {
        let rt = ArmciNative::new(p);
        scenario(p, &rt, 42)
    });
    assert!(!on_mpi[0].is_empty());
    assert_eq!(on_mpi[0], on_native[0]);
}

#[test]
fn native_rmw_unique_under_contention() {
    let n = 6;
    let iters = 40;
    let results = Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let mut got = Vec::with_capacity(iters);
        for _ in 0..iters {
            got.push(rt.fetch_add(bases[0], 1).unwrap());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        got
    });
    let mut all: Vec<i64> = results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..(n * iters) as i64).collect::<Vec<_>>());
}

#[test]
fn native_mutex_protects_counter() {
    let n = 5;
    let iters = 20;
    Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        let bases = rt.malloc(8).unwrap();
        let h = rt.create_mutexes(1).unwrap();
        rt.barrier();
        for _ in 0..iters {
            rt.lock_mutex(h, 0, 2).unwrap();
            let v = rt.get_f64s(bases[0], 1).unwrap()[0];
            rt.put_f64s(&[v + 1.0], bases[0]).unwrap();
            rt.unlock_mutex(h, 0, 2).unwrap();
        }
        rt.barrier();
        assert_eq!(rt.get_f64s(bases[0], 1).unwrap()[0], (n * iters) as f64);
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn native_strided_roundtrip() {
    Runtime::run_with(2, quiet(), |p| {
        let rt = ArmciNative::new(p);
        let bases = rt.malloc(8 * 24).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let mut local = vec![0u8; 8 * 16];
            for (i, x) in local.iter_mut().enumerate() {
                *x = (i % 251) as u8;
            }
            rt.put_strided(&local, &[16], bases[1], &[24], &[16, 8])
                .unwrap();
            let mut back = vec![0u8; 8 * 16];
            rt.get_strided(bases[1], &[24], &mut back, &[16], &[16, 8])
                .unwrap();
            assert_eq!(back, local);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn native_faster_than_mpi_on_infiniband_contig() {
    // Figure 3b: the aggressively tuned IB native beats ARMCI-MPI.
    let time_one = |native: bool| -> f64 {
        Runtime::run(2, move |p| {
            let mut t = 0.0;
            let size = 1 << 20;
            macro_rules! drive {
                ($rt:expr) => {{
                    let rt = $rt;
                    let bases = rt.malloc(size).unwrap();
                    rt.barrier();
                    if p.rank() == 0 {
                        let buf = vec![1u8; size];
                        let t0 = p.clock().now();
                        rt.put(&buf, bases[1]).unwrap();
                        t = p.clock().now() - t0;
                    }
                    rt.barrier();
                    rt.free(bases[p.rank()]).unwrap();
                }};
            }
            if native {
                drive!(ArmciNative::new(p));
            } else {
                // Figure 3b compares *wire* protocol tuning; with both
                // ranks on one node ARMCI-MPI would otherwise take the
                // shared-memory tier and the comparison dissolves.
                drive!(ArmciMpi::with_config(
                    p,
                    armci_mpi::Config {
                        shm: false,
                        ..Default::default()
                    }
                ));
            }
            t
        })[0]
    };
    let t_native = time_one(true);
    let t_mpi = time_one(false);
    assert!(
        t_native < t_mpi,
        "native {t_native} should beat MPI {t_mpi} on InfiniBand"
    );
}
