//! Chrome-trace and JSONL exporters.
//!
//! [`to_chrome_trace`] renders the event stream as a Chrome trace-event
//! JSON object (load it in `chrome://tracing` or Perfetto): span events
//! become complete (`"X"`) slices, paired instants (lock/unlock, DLA and
//! fence begin/end) become `"B"`/`"E"` duration slices so epochs show as
//! nested bars, everything else becomes a thread-scoped instant. Ranks
//! map to tids; timestamps are virtual seconds scaled to microseconds.

use crate::{Event, EventKind};
use serde::Value;

enum Phase {
    Span,
    Begin,
    End,
    Instant,
}

fn uval(v: u64) -> Value {
    Value::UInt(v)
}

fn sval(v: &str) -> Value {
    Value::Str(v.to_owned())
}

/// Name, category, phase and argument object for one event.
fn describe(e: &Event) -> (String, &'static str, Phase, Vec<(String, Value)>) {
    use EventKind::*;
    match &e.kind {
        Op { name, gmr, bytes } => (
            format!("op:{name}"),
            "op",
            Phase::Span,
            vec![("gmr".into(), uval(*gmr)), ("bytes".into(), uval(*bytes))],
        ),
        GaOp { name, bytes } => (
            format!("ga:{name}"),
            "ga",
            Phase::Span,
            vec![("bytes".into(), uval(*bytes))],
        ),
        Stage { stage, gmr } => (
            format!("stage:{stage}"),
            "stage",
            Phase::Span,
            vec![("gmr".into(), uval(*gmr))],
        ),
        Pack { win, bytes } => (
            "pack".into(),
            "pack",
            Phase::Span,
            vec![("win".into(), uval(*win)), ("bytes".into(), uval(*bytes))],
        ),
        MutexWait {
            win,
            mutex,
            host,
            src,
        } => (
            format!("mutex_wait:m{mutex}@{host}"),
            "mutex",
            Phase::Span,
            vec![
                ("win".into(), uval(*win)),
                ("mutex".into(), uval(u64::from(*mutex))),
                ("host".into(), uval(u64::from(*host))),
                ("src".into(), uval(u64::from(*src))),
            ],
        ),
        Coll { comm, seq, src } => (
            format!("coll:c{comm}"),
            "coll",
            Phase::Span,
            vec![
                ("comm".into(), uval(*comm)),
                ("seq".into(), uval(*seq)),
                ("src".into(), uval(u64::from(*src))),
            ],
        ),
        Wait { cat, src, obj } => (
            format!("wait:{}", cat.name()),
            "wait",
            Phase::Span,
            vec![
                ("wait".into(), sval(cat.name())),
                ("src".into(), uval(u64::from(*src))),
                ("obj".into(), uval(*obj)),
            ],
        ),
        Compute => ("compute".into(), "compute", Phase::Span, Vec::new()),
        AgentDrain {
            win,
            target,
            ops,
            avoided_s,
        } => (
            format!("agent_drain:w{win}->{target}"),
            "agent",
            Phase::Span,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("ops".into(), uval(u64::from(*ops))),
                ("avoided_s".into(), Value::Float(*avoided_s)),
            ],
        ),
        LockAcquire {
            win,
            target,
            exclusive,
        } => (
            format!("epoch:w{win}->{target}"),
            "epoch",
            Phase::Begin,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("exclusive".into(), Value::Bool(*exclusive)),
            ],
        ),
        LockRelease { win, target } => (
            format!("epoch:w{win}->{target}"),
            "epoch",
            Phase::End,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
            ],
        ),
        LockAll { win } => (
            format!("epoch:w{win}:all"),
            "epoch",
            Phase::Begin,
            vec![("win".into(), uval(*win))],
        ),
        UnlockAll { win } => (
            format!("epoch:w{win}:all"),
            "epoch",
            Phase::End,
            vec![("win".into(), uval(*win))],
        ),
        Flush { win, target } => (
            format!("flush:w{win}->{target}"),
            "epoch",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
            ],
        ),
        FenceBegin { win } => (
            format!("fence:w{win}"),
            "epoch",
            Phase::Begin,
            vec![("win".into(), uval(*win))],
        ),
        FenceEnd { win } => (
            format!("fence:w{win}"),
            "epoch",
            Phase::End,
            vec![("win".into(), uval(*win))],
        ),
        NbEpochOpen { win, target } => (
            format!("nb_epoch:w{win}->{target}"),
            "epoch",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
            ],
        ),
        NbEpochClose { win, target } => (
            format!("nb_epoch_close:w{win}->{target}"),
            "epoch",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
            ],
        ),
        Rma {
            win,
            target,
            kind,
            bytes,
        } => (
            format!("rma:{}", kind.name()),
            "rma",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("bytes".into(), uval(*bytes)),
            ],
        ),
        Pool { bytes, hit } => (
            if *hit { "pool:hit" } else { "pool:miss" }.into(),
            "pool",
            Phase::Instant,
            vec![
                ("bytes".into(), uval(*bytes)),
                ("hit".into(), Value::Bool(*hit)),
            ],
        ),
        StageTouch { gmr, bytes } => (
            format!("stage_touch:g{gmr}"),
            "stage",
            Phase::Instant,
            vec![("gmr".into(), uval(*gmr)), ("bytes".into(), uval(*bytes))],
        ),
        DlaBegin { win, exclusive } => (
            format!("dla:w{win}"),
            "dla",
            Phase::Begin,
            vec![
                ("win".into(), uval(*win)),
                ("exclusive".into(), Value::Bool(*exclusive)),
            ],
        ),
        DlaEnd { win } => (
            format!("dla:w{win}"),
            "dla",
            Phase::End,
            vec![("win".into(), uval(*win))],
        ),
        LocalAccess { win, write } => (
            "local_access".into(),
            "dla",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("write".into(), Value::Bool(*write)),
            ],
        ),
        Method { name, fast } => (
            format!("method:{name}"),
            "method",
            Phase::Instant,
            vec![("fast".into(), Value::Bool(*fast))],
        ),
        GmrCreate { gmr, bytes } => (
            format!("gmr_create:g{gmr}"),
            "gmr",
            Phase::Instant,
            vec![("gmr".into(), uval(*gmr)), ("bytes".into(), uval(*bytes))],
        ),
        GmrFree { gmr } => (
            format!("gmr_free:g{gmr}"),
            "gmr",
            Phase::Instant,
            vec![("gmr".into(), uval(*gmr))],
        ),
        Error { what, gmr } => (
            format!("error:{what}"),
            "error",
            Phase::Instant,
            vec![("gmr".into(), uval(*gmr))],
        ),
        SchedFlush {
            win,
            target,
            ops,
            runs,
            segs_in,
            segs_out,
        } => (
            format!("sched_flush:w{win}->{target}"),
            "sched",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("ops".into(), uval(u64::from(*ops))),
                ("runs".into(), uval(u64::from(*runs))),
                ("segs_in".into(), uval(u64::from(*segs_in))),
                ("segs_out".into(), uval(u64::from(*segs_out))),
            ],
        ),
        DtypeCommit { win, hit } => (
            if *hit {
                "dtype:hit".into()
            } else {
                "dtype:miss".into()
            },
            "dtype",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("hit".into(), Value::Bool(*hit)),
            ],
        ),
        WinSync { win } => (
            format!("win_sync:w{win}"),
            "shm",
            Phase::Instant,
            vec![("win".into(), uval(*win))],
        ),
        ShmAccess {
            win,
            target,
            write,
            bytes,
        } => (
            if *write { "shm:store" } else { "shm:load" }.into(),
            "shm",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("write".into(), Value::Bool(*write)),
                ("bytes".into(), uval(*bytes)),
            ],
        ),
        AtomicOp {
            win,
            target,
            cas,
            native,
            success,
        } => (
            if *cas { "atomic:cas" } else { "atomic:rmw" }.into(),
            "atomic",
            Phase::Instant,
            vec![
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("native".into(), Value::Bool(*native)),
                ("success".into(), Value::Bool(*success)),
            ],
        ),
        TransportIssue {
            backend,
            win,
            target,
            kind,
            bytes,
            offloaded,
        } => (
            format!("{backend}:{}", kind.name()),
            "transport",
            Phase::Instant,
            vec![
                ("backend".into(), sval(backend)),
                ("win".into(), uval(*win)),
                ("target".into(), uval(u64::from(*target))),
                ("bytes".into(), uval(*bytes)),
                ("offloaded".into(), Value::Bool(*offloaded)),
            ],
        ),
    }
}

/// Microsecond value for the trace, rounded to 0.1 ns so the rendered
/// artifact carries no float-noise digits (`3.0000000000000004`-style
/// tails churned `results/TRACE_*.json` wholesale on unrelated edits).
fn us(seconds: f64) -> Value {
    Value::Float((seconds * 1e6 * 1e4).round() / 1e4)
}

fn trace_event(e: &Event) -> Value {
    let (name, cat, phase, args) = describe(e);
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(name)),
        ("cat".into(), sval(cat)),
        ("ts".into(), us(e.ts)),
        ("pid".into(), uval(0)),
        ("tid".into(), uval(u64::from(e.rank))),
    ];
    let ph = match phase {
        Phase::Span => {
            fields.push(("dur".into(), us(e.dur)));
            "X"
        }
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => {
            fields.push(("s".into(), sval("t")));
            "i"
        }
    };
    fields.insert(2, ("ph".into(), sval(ph)));
    fields.push(("args".into(), Value::Object(args)));
    Value::Object(fields)
}

/// One endpoint of a flow ("s" start on the releasing rank, "f" finish on
/// the waiting rank). `id` ties the pair; derived from event content so
/// re-renders of the same stream are bit-identical.
fn flow_event(name: &str, ph: &str, id: String, rank: u32, ts: f64) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), sval(name)),
        ("cat".into(), sval("flow")),
        ("ph".into(), sval(ph)),
        ("id".into(), Value::Str(id)),
        ("ts".into(), us(ts)),
        ("pid".into(), uval(0)),
        ("tid".into(), uval(u64::from(rank))),
    ];
    if ph == "f" {
        fields.push(("bp".into(), sval("e")));
    }
    Value::Object(fields)
}

/// Cross-rank causal edges as Chrome flow events: for every collective,
/// an arrow from the straggler's arrival to each waiter's departure; for
/// every mutex handoff, an arrow from the granting rank to the waiter's
/// wake-up. Events are consumed in sorted order, so the output is
/// deterministic.
fn flow_events(events: &[&Event]) -> Vec<Value> {
    use std::collections::BTreeMap;
    // Straggler world rank, its span start, and (rank, departure) waiters.
    type CollEdge = (u32, f64, Vec<(u32, f64)>);
    let mut colls: BTreeMap<(u64, u64), CollEdge> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::Coll { comm, seq, src } => {
                let entry = colls
                    .entry((*comm, *seq))
                    .or_insert((*src, 0.0, Vec::new()));
                if e.rank == *src {
                    entry.1 = e.ts;
                } else {
                    entry.2.push((e.rank, e.ts + e.dur));
                }
            }
            EventKind::MutexWait {
                win, mutex, src, ..
            } if e.dur > 0.0 => {
                let end = e.ts + e.dur;
                let id = format!("mutex:{win}:{mutex}:{}:{:x}", e.rank, end.to_bits());
                out.push(flow_event("handoff", "s", id.clone(), *src, end));
                out.push(flow_event("handoff", "f", id, e.rank, end));
            }
            _ => {}
        }
    }
    for ((comm, seq), (src, src_ts, mut waiters)) in colls {
        waiters.sort_by_key(|w| w.0);
        for (rank, end) in waiters {
            let id = format!("coll:{comm}:{seq}:{rank}");
            out.push(flow_event("straggler", "s", id.clone(), src, src_ts));
            out.push(flow_event("straggler", "f", id, rank, end));
        }
    }
    out
}

/// Events in a deterministic render order: sorted by rank, preserving
/// each rank's program order (per-rank buffers are contiguous and
/// program-ordered, but the order *between* ranks in the sink follows
/// thread-exit timing, which is wall-schedule noise).
fn sorted(events: &[Event]) -> Vec<&Event> {
    let mut refs: Vec<&Event> = events.iter().collect();
    refs.sort_by_key(|e| e.rank);
    refs
}

/// Render a full Chrome trace-event JSON document.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let ordered = sorted(events);
    let mut rows: Vec<Value> = ordered.iter().map(|e| trace_event(e)).collect();
    rows.extend(flow_events(&ordered));
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(rows)),
        ("displayTimeUnit".into(), sval("ms")),
    ]);
    serde_json::to_string_pretty(&doc).expect("chrome trace render")
}

/// Render one JSON object per line (grep-friendly event dump).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in sorted(events) {
        let (name, cat, _, args) = describe(e);
        let mut fields: Vec<(String, Value)> = vec![
            ("rank".into(), uval(u64::from(e.rank))),
            ("ts".into(), Value::Float(e.ts)),
            ("dur".into(), Value::Float(e.dur)),
            ("name".into(), Value::Str(name)),
            ("cat".into(), sval(cat)),
        ];
        fields.extend(args);
        out.push_str(&serde_json::to_string(&Value::Object(fields)).expect("jsonl render"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn ev(rank: u32, ts: f64, dur: f64, kind: EventKind) -> Event {
        Event {
            rank,
            ts,
            dur,
            kind,
        }
    }

    #[test]
    fn chrome_trace_parses_back_and_pairs_epochs() {
        let events = vec![
            ev(
                0,
                0.0,
                0.0,
                EventKind::LockAcquire {
                    win: 1,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                0.2,
                EventKind::Op {
                    name: "put",
                    gmr: 1,
                    bytes: 4096,
                },
            ),
            ev(
                0,
                0.15,
                0.0,
                EventKind::Rma {
                    win: 1,
                    target: 1,
                    kind: OpKind::Put,
                    bytes: 4096,
                },
            ),
            ev(0, 0.3, 0.0, EventKind::LockRelease { win: 1, target: 1 }),
        ];
        let doc = to_chrome_trace(&events);
        let val = serde_json::from_str(&doc).expect("valid json");
        let Value::Object(fields) = val else {
            panic!("not an object")
        };
        let rows = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let Value::Array(rows) = rows else {
            panic!("not an array")
        };
        assert_eq!(rows.len(), 4);
        let phs: Vec<&str> = rows
            .iter()
            .map(|r| {
                let Value::Object(f) = r else { panic!() };
                let (_, Value::Str(ph)) = f.iter().find(|(k, _)| k == "ph").unwrap() else {
                    panic!()
                };
                ph.as_str()
            })
            .collect();
        assert_eq!(phs, ["B", "X", "i", "E"]);
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let events = vec![
            ev(
                1,
                0.5,
                0.0,
                EventKind::Pool {
                    bytes: 64,
                    hit: true,
                },
            ),
            ev(1, 0.6, 0.0, EventKind::Flush { win: 2, target: 0 }),
        ];
        let dump = to_jsonl(&events);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::from_str(line).expect("each line is valid json");
        }
    }
}
