//! Critical-path extraction over the virtual-time DAG.
//!
//! The recorder's cross-rank edges — collective straggler identity on
//! [`crate::EventKind::Coll`] and mutex-handoff source on
//! [`crate::EventKind::MutexWait`] — make the merged trace a DAG in
//! virtual time. This walker starts at the run's makespan (the latest
//! span end anywhere) and walks **backwards**:
//!
//! * inside a rank it steps to the latest span ending at or before the
//!   cursor, charging any uncovered gap to `untracked`;
//! * at a collective where this rank was *not* the straggler it charges
//!   only the post-release cost `[t_max, leave]` locally, then jumps to
//!   the straggler's timeline at `t_max` (its arrival) via the shared
//!   `(comm, seq)` key — the wait segment is replaced by the straggler's
//!   own activity, which is what actually gated the run;
//! * at a mutex handoff it jumps to the granting rank at the handoff
//!   time.
//!
//! The walk terminates at virtual time zero, so the path length equals
//! the makespan **by construction** — the proptest oracle asserts this
//! bit-exactly. All candidate selection is deterministic given (rank,
//! program order), which `analyze` recovers with a stable sort.

use crate::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One segment of the critical path, in walk (reverse-time) order.
#[derive(Debug, Clone)]
pub struct Step {
    pub rank: u32,
    pub t0: f64,
    pub t1: f64,
    /// Segment class: `coll`, `lock`, `compute`, `wait:<cat>`,
    /// `stage:<stage>`, `pack`, or `untracked`.
    pub what: String,
}

/// Critical-path report.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    /// Latest span end across all ranks (the run's virtual makespan).
    pub makespan: f64,
    /// Sum of step durations; equals `makespan` when the walk reaches 0.
    pub length: f64,
    /// Seconds on the path per segment class.
    pub class_s: BTreeMap<String, f64>,
    /// Times the path moved between ranks through a causal edge.
    pub rank_switches: u32,
    /// Path segments, most recent first.
    pub steps: Vec<Step>,
}

impl CritPath {
    /// One-screen text rendering (steps elided beyond the head).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.6} s over {} segments, {} rank switches (makespan {:.6} s)",
            self.length,
            self.steps.len(),
            self.rank_switches,
            self.makespan
        );
        for (k, s) in &self.class_s {
            let _ = writeln!(out, "  {k:<14} {s:.6} s on path");
        }
        for st in self.steps.iter().take(10) {
            let _ = writeln!(
                out,
                "  rank {:<3} [{:.6}, {:.6}] {}",
                st.rank, st.t0, st.t1, st.what
            );
        }
        if self.steps.len() > 10 {
            let _ = writeln!(out, "  ... {} more segments", self.steps.len() - 10);
        }
        out
    }
}

/// Span kinds the walker steps through. Container spans (`Op`, `GaOp`)
/// are deliberately excluded: they wrap the causal spans — a `ga_sync`
/// GA-op ends marginally *after* the Coll span it contains, so consuming
/// it wholesale would skip the straggler edge. The walk descends through
/// the leaves instead and charges container-only overhead to `untracked`.
fn class_of(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::Coll { .. } => Some("coll".to_string()),
        EventKind::MutexWait { .. } => Some("lock".to_string()),
        EventKind::Compute => Some("compute".to_string()),
        EventKind::Wait { cat, .. } => Some(format!("wait:{}", cat.name())),
        EventKind::AgentDrain { .. } => Some("agent".to_string()),
        EventKind::Stage { stage, .. } => Some(format!("stage:{stage}")),
        EventKind::Pack { .. } => Some("pack".to_string()),
        _ => None,
    }
}

/// Absolute slack for "ends at the cursor" comparisons. Cross-rank times
/// are exchanged as exact f64 values (the rendezvous publishes `t_max`,
/// the handoff message carries its arrival), so exact matches are the
/// norm and the epsilon only absorbs summation jitter within one rank.
const EPS: f64 = 1e-12;

struct Span<'a> {
    t0: f64,
    t1: f64,
    kind: &'a EventKind,
}

/// Extracts the critical path from one run's merged event stream.
pub fn analyze(events: &[Event]) -> CritPath {
    let mut refs: Vec<&Event> = events.iter().collect();
    refs.sort_by_key(|e| e.rank);

    // Per-rank spans in program order, plus the collective index:
    // (comm, seq) -> per-participant (world rank, arrival t0).
    let mut spans: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    let mut colls: BTreeMap<(u64, u64), Vec<(u32, f64)>> = BTreeMap::new();
    let mut makespan = 0.0f64;
    let mut end_rank = u32::MAX;
    for e in &refs {
        let t1 = e.ts + e.dur;
        if e.dur > 0.0 && class_of(&e.kind).is_some() {
            if t1 > makespan + EPS || (t1 > makespan - EPS && e.rank < end_rank) {
                makespan = t1.max(makespan);
                end_rank = e.rank;
            }
            spans.entry(e.rank).or_default().push(Span {
                t0: e.ts,
                t1,
                kind: &e.kind,
            });
        }
        if let EventKind::Coll { comm, seq, .. } = &e.kind {
            colls.entry((*comm, *seq)).or_default().push((e.rank, e.ts));
        }
    }

    let mut path = CritPath {
        makespan,
        ..Default::default()
    };
    if end_rank == u32::MAX {
        return path;
    }

    let mut rank = end_rank;
    let mut cursor = makespan;
    let push = |path: &mut CritPath, rank: u32, t0: f64, t1: f64, what: String| {
        if t1 > t0 {
            path.length += t1 - t0;
            *path.class_s.entry(what.clone()).or_insert(0.0) += t1 - t0;
            path.steps.push(Step { rank, t0, t1, what });
        }
    };
    // Each iteration strictly lowers the cursor (spans have positive
    // duration and jumps land before the span end), but guard against a
    // malformed trace anyway.
    let mut fuel = refs.len() * 2 + 16;
    while cursor > EPS && fuel > 0 {
        fuel -= 1;
        let list = spans.get(&rank).map(Vec::as_slice).unwrap_or(&[]);
        // Latest span ending at or before the cursor. Ties on the end
        // time go to the *innermost* span (latest start, then latest
        // program order): a collective's Coll span ends at the same
        // instant as the GA-op span wrapping it, and only the inner one
        // carries the causal edge to jump through.
        let mut best: Option<&Span> = None;
        for s in list {
            if s.t1 > cursor + EPS {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    if s.t1 > b.t1 + EPS {
                        true
                    } else if s.t1 < b.t1 - EPS {
                        false
                    } else {
                        s.t0 >= b.t0 - EPS
                    }
                }
            };
            if better {
                best = Some(s);
            }
        }
        let Some(s) = best else {
            // Nothing earlier on this rank: the head of its timeline.
            push(&mut path, rank, 0.0, cursor, "untracked".to_string());
            break;
        };
        if s.t1 < cursor - EPS {
            push(&mut path, rank, s.t1, cursor, "untracked".to_string());
            cursor = s.t1;
            continue;
        }
        match s.kind {
            EventKind::Coll { comm, seq, src } if *src != rank => {
                // Released by the straggler: keep the local post-release
                // cost, then continue on the straggler at its arrival.
                let arrival = colls
                    .get(&(*comm, *seq))
                    .and_then(|ps| ps.iter().find(|(r, _)| *r == *src))
                    .map(|&(_, t0)| t0);
                match arrival {
                    Some(t_max) => {
                        push(&mut path, rank, t_max.min(s.t1), s.t1, "coll".to_string());
                        rank = *src;
                        cursor = t_max;
                        path.rank_switches += 1;
                    }
                    None => {
                        // Straggler's stream missing — degrade to local.
                        push(&mut path, rank, s.t0, s.t1, "coll".to_string());
                        cursor = s.t0;
                    }
                }
            }
            EventKind::MutexWait { src, .. } if *src != rank => {
                // The handoff that ended this wait left the granting rank
                // at (t1 - message latency); the arrival instant is the
                // closest event we own, so jump there.
                push(&mut path, rank, s.t1, s.t1, "lock".to_string());
                let t1 = s.t1;
                rank = *src;
                cursor = t1;
                path.rank_switches += 1;
            }
            kind => {
                let what = class_of(kind).unwrap_or_else(|| "untracked".to_string());
                push(&mut path, rank, s.t0, s.t1, what);
                cursor = s.t0;
            }
        }
    }
    if cursor > EPS && fuel == 0 {
        // Malformed trace: account the remainder so length still covers
        // the makespan.
        push(&mut path, rank, 0.0, cursor, "untracked".to_string());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaitCat;

    fn span(rank: u32, t0: f64, t1: f64, kind: EventKind) -> Event {
        Event {
            rank,
            ts: t0,
            dur: t1 - t0,
            kind,
        }
    }

    #[test]
    fn straggler_jump_and_length() {
        // Rank 1 computes until 5.0 then joins a collective; rank 0
        // arrived at 1.0 and waited. Cost 0.5 after release.
        let events = vec![
            span(0, 0.0, 1.0, EventKind::Compute),
            span(
                0,
                1.0,
                5.0,
                EventKind::Wait {
                    cat: WaitCat::Progress,
                    src: 1,
                    obj: 9,
                },
            ),
            span(
                0,
                1.0,
                5.5,
                EventKind::Coll {
                    comm: 9,
                    seq: 0,
                    src: 1,
                },
            ),
            span(1, 0.0, 5.0, EventKind::Compute),
            span(
                1,
                5.0,
                5.5,
                EventKind::Coll {
                    comm: 9,
                    seq: 0,
                    src: 1,
                },
            ),
        ];
        let p = analyze(&events);
        assert_eq!(p.makespan, 5.5);
        // Path: rank 0 coll cost [5.0, 5.5], jump to rank 1 at 5.0 —
        // which is its own straggler coll arrival — then compute [0, 5].
        assert_eq!(p.length, p.makespan, "walk reaches zero exactly");
        assert_eq!(p.rank_switches, 1);
        assert!((p.class_s["compute"] - 5.0).abs() < 1e-12);
        assert!((p.class_s["coll"] - 0.5).abs() < 1e-12);
        assert!(
            !p.class_s.contains_key("wait:progress"),
            "wait replaced by cause"
        );
    }

    #[test]
    fn mutex_handoff_jump() {
        // Rank 1 holds the mutex while computing [0,3]; rank 0 waits
        // [0.5, 3.2] (grant message latency 0.2) then computes to 4.0.
        let events = vec![
            span(1, 0.0, 3.0, EventKind::Compute),
            span(
                0,
                0.5,
                3.2,
                EventKind::MutexWait {
                    win: 1,
                    mutex: 0,
                    host: 0,
                    src: 1,
                },
            ),
            span(0, 3.2, 4.0, EventKind::Compute),
        ];
        let p = analyze(&events);
        assert_eq!(p.makespan, 4.0);
        assert_eq!(p.rank_switches, 1);
        // [3.2, 4.0] compute on rank 0, jump to rank 1 at 3.2, gap
        // [3.0, 3.2] untracked (wire latency), compute [0, 3].
        assert_eq!(p.length, p.makespan);
        assert!((p.class_s["compute"] - 3.8).abs() < 1e-12);
        assert!((p.class_s["untracked"] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_empty_path() {
        let p = analyze(&[]);
        assert_eq!(p.makespan, 0.0);
        assert_eq!(p.length, 0.0);
        assert!(p.steps.is_empty());
    }
}
