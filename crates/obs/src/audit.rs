//! Epoch-invariant auditor.
//!
//! Replays a recorded event stream per rank (slice order within one rank
//! is program order) and flags interleavings that violate the paper's
//! §IV/§V safety rules:
//!
//! * **NestedLock** — acquiring a passive-target lock on a
//!   (window, target) pair this rank already holds, or mixing `lock` and
//!   `lock_all` epochs on one window (MPI allows one epoch per pair per
//!   origin; nested exclusive epochs self-deadlock).
//! * **UnlockWithoutLock** — releasing a lock, `lock_all`, or fence the
//!   rank does not hold (includes double-unlock).
//! * **DlaViolation** — a direct load/store of window memory outside an
//!   `ARMCI_Access_begin/end` region, or a region opened without the
//!   local epoch that makes the memory accessible (§IV-C).
//! * **StagingWhileLocked** — an engine staging buffer for a GMR filled
//!   or drained while this rank holds a *blocking* lock on that GMR's
//!   window (§V-E1: staging must complete before the home window is
//!   locked, or the copy self-deadlocks under exclusive epochs).
//!   Nonblocking aggregate epochs announce themselves via
//!   [`EventKind::NbEpochOpen`] and are exempt: the engine stages the
//!   next fragment under the open aggregate epoch by design.
//! * **OpOutsideEpoch** — an MPI-level RMA call on a (window, target)
//!   with no lock, `lock_all`, or fence epoch covering it.
//! * **AtomicOutsideEpoch** — the same leak for an MPI-level atomic
//!   (`Rma` with kind `rmw`): fetch-and-op / compare-and-swap issued
//!   with no covering passive or fence epoch. Split from
//!   `OpOutsideEpoch` because atomics have a legal epoch-free path
//!   (NIC-offloaded channel atomics, shm slab atomics) that does *not*
//!   emit `Rma` events — so any `Rma { Rmw }` seen here claimed an MPI
//!   window and must be covered by an epoch.
//! * **FlushOutsideEpoch** — an MPI-3 `flush` of a (window, target) with
//!   no lock or `lock_all` epoch covering it (flush requires a passive
//!   epoch; MPI calls it erroneous otherwise).
//! * **ShmCoherence** — a shared-memory load/store of a peer's window
//!   section outside the separate-memory-model discipline: shm accesses
//!   are legal inside an `ARMCI_Access_begin/end` region, or under an
//!   epoch *after* an `MPI_Win_sync` on that window; closing any epoch on
//!   the window revokes the synced state until the next `win_sync`.
//!
//! The coalescing scheduler's **coarsened epochs** are legal by
//! construction under these rules: one `lock`/`lock_all` covering many
//! RMA issues with interleaved per-target flushes replays as a single
//! held epoch, so nothing is flagged — but any RMA or flush that leaks
//! past the coarsened unlock still trips `OpOutsideEpoch` /
//! `FlushOutsideEpoch`.
//!
//! Partial traces are common (a benchmark may drain events mid-run), so
//! epochs still open at end-of-trace are *not* violations.

use crate::{Event, EventKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which invariant was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    NestedLock,
    UnlockWithoutLock,
    DlaViolation,
    StagingWhileLocked,
    OpOutsideEpoch,
    AtomicOutsideEpoch,
    FlushOutsideEpoch,
    ShmCoherence,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::NestedLock => "nested-lock",
            Rule::UnlockWithoutLock => "unlock-without-lock",
            Rule::DlaViolation => "dla-violation",
            Rule::StagingWhileLocked => "staging-while-locked",
            Rule::OpOutsideEpoch => "op-outside-epoch",
            Rule::AtomicOutsideEpoch => "atomic-outside-epoch",
            Rule::FlushOutsideEpoch => "flush-outside-epoch",
            Rule::ShmCoherence => "shm-coherence",
        }
    }
}

/// One flagged interleaving.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rank: u32,
    pub ts: f64,
    pub rule: Rule,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[rank {} @ {:.9}s] {}: {}",
            self.rank,
            self.ts,
            self.rule.name(),
            self.detail
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct HeldLock {
    exclusive: bool,
    /// Adopted by a nonblocking aggregate epoch (staging under it is legal).
    aggregate: bool,
}

#[derive(Default)]
struct RankState {
    held: HashMap<(u64, u32), HeldLock>,
    lock_all: HashSet<u64>,
    fence: HashSet<u64>,
    dla_depth: HashMap<u64, u32>,
    /// Windows where a `win_sync` has been seen under a still-open epoch.
    synced: HashSet<u64>,
}

impl RankState {
    fn epoch_on(&self, win: &u64) -> bool {
        self.lock_all.contains(win)
            || self.fence.contains(win)
            || self.held.keys().any(|(w, _)| w == win)
    }
}

/// Replay `events` and return every invariant violation found.
pub fn audit(events: &[Event]) -> Vec<Violation> {
    let mut ranks: BTreeMap<u32, RankState> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let st = ranks.entry(e.rank).or_default();
        let mut flag = |rule: Rule, detail: String| {
            out.push(Violation {
                rank: e.rank,
                ts: e.ts,
                rule,
                detail,
            });
        };
        // Arm bodies like `if map.remove(..) { flag(..) }` must not become
        // match guards: the removal has to happen even on the legal path.
        #[allow(clippy::collapsible_match)]
        match &e.kind {
            EventKind::LockAcquire {
                win,
                target,
                exclusive,
            } => {
                if let Some(prev) = st.held.get(&(*win, *target)) {
                    flag(
                        Rule::NestedLock,
                        format!(
                            "lock({}) on win {win} target {target} while already holding a {} epoch there",
                            if *exclusive { "exclusive" } else { "shared" },
                            if prev.exclusive { "exclusive" } else { "shared" },
                        ),
                    );
                } else if st.lock_all.contains(win) {
                    flag(
                        Rule::NestedLock,
                        format!("lock on win {win} target {target} while lock_all is open on that window"),
                    );
                }
                st.held.insert(
                    (*win, *target),
                    HeldLock {
                        exclusive: *exclusive,
                        aggregate: false,
                    },
                );
            }
            EventKind::LockRelease { win, target } => {
                if st.held.remove(&(*win, *target)).is_none() {
                    flag(
                        Rule::UnlockWithoutLock,
                        format!("unlock on win {win} target {target} with no matching lock"),
                    );
                }
                st.synced.remove(win);
            }
            EventKind::LockAll { win } => {
                if st.lock_all.contains(win) {
                    flag(
                        Rule::NestedLock,
                        format!("lock_all on win {win} while lock_all is already open"),
                    );
                } else if st.held.keys().any(|(w, _)| w == win) {
                    flag(
                        Rule::NestedLock,
                        format!("lock_all on win {win} while a per-target lock is held"),
                    );
                }
                st.lock_all.insert(*win);
            }
            EventKind::UnlockAll { win } => {
                if !st.lock_all.remove(win) {
                    flag(
                        Rule::UnlockWithoutLock,
                        format!("unlock_all on win {win} with no matching lock_all"),
                    );
                }
                st.synced.remove(win);
            }
            EventKind::FenceBegin { win } => {
                st.fence.insert(*win);
            }
            EventKind::FenceEnd { win } => {
                if !st.fence.remove(win) {
                    flag(
                        Rule::UnlockWithoutLock,
                        format!("fence end on win {win} with no matching fence begin"),
                    );
                }
                st.synced.remove(win);
            }
            EventKind::NbEpochOpen { win, target } => {
                if let Some(h) = st.held.get_mut(&(*win, *target)) {
                    h.aggregate = true;
                }
            }
            EventKind::NbEpochClose { .. } => {}
            EventKind::DlaBegin { win, .. } => {
                let covered = st.lock_all.contains(win)
                    || st.fence.contains(win)
                    || st.held.keys().any(|(w, _)| w == win);
                if !covered {
                    flag(
                        Rule::DlaViolation,
                        format!("access region opened on win {win} without a local epoch"),
                    );
                }
                *st.dla_depth.entry(*win).or_insert(0) += 1;
            }
            EventKind::DlaEnd { win } => {
                let d = st.dla_depth.entry(*win).or_insert(0);
                if *d == 0 {
                    flag(
                        Rule::DlaViolation,
                        format!("access end on win {win} with no matching access begin"),
                    );
                } else {
                    *d -= 1;
                }
            }
            EventKind::LocalAccess { win, write } => {
                if st.dla_depth.get(win).copied().unwrap_or(0) == 0 {
                    flag(
                        Rule::DlaViolation,
                        format!(
                            "direct {} of win {win} memory outside ARMCI_Access_begin/end",
                            if *write { "store" } else { "load" },
                        ),
                    );
                }
            }
            EventKind::StageTouch { gmr, bytes } => {
                if let Some(((_, target), _)) =
                    st.held.iter().find(|((w, _), h)| w == gmr && !h.aggregate)
                {
                    flag(
                        Rule::StagingWhileLocked,
                        format!(
                            "staging buffer for gmr {gmr} ({bytes} B) touched while its window is locked (target {target})",
                        ),
                    );
                }
            }
            EventKind::Flush { win, target } => {
                let covered = st.held.contains_key(&(*win, *target)) || st.lock_all.contains(win);
                if !covered {
                    flag(
                        Rule::FlushOutsideEpoch,
                        format!("flush of win {win} target {target} with no covering epoch"),
                    );
                }
            }
            EventKind::Rma {
                win, target, kind, ..
            } => {
                let covered = st.held.contains_key(&(*win, *target))
                    || st.lock_all.contains(win)
                    || st.fence.contains(win);
                if !covered {
                    let rule = if *kind == crate::OpKind::Rmw {
                        Rule::AtomicOutsideEpoch
                    } else {
                        Rule::OpOutsideEpoch
                    };
                    flag(
                        rule,
                        format!(
                            "rma {} on win {win} target {target} with no covering epoch",
                            kind.name(),
                        ),
                    );
                }
            }
            EventKind::WinSync { win } => {
                if st.epoch_on(win) {
                    st.synced.insert(*win);
                } else {
                    flag(
                        Rule::ShmCoherence,
                        format!("win_sync on win {win} outside any epoch"),
                    );
                }
            }
            EventKind::ShmAccess {
                win,
                target,
                write,
                bytes,
            } => {
                let in_dla = st.dla_depth.get(win).copied().unwrap_or(0) > 0;
                let synced = st.epoch_on(win) && st.synced.contains(win);
                if !in_dla && !synced {
                    flag(
                        Rule::ShmCoherence,
                        format!(
                            "shm {} of {bytes} B on win {win} target {target} outside \
                             win_sync coherence (no access region, no synced epoch)",
                            if *write { "store" } else { "load" },
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn ev(rank: u32, ts: f64, kind: EventKind) -> Event {
        Event {
            rank,
            ts,
            dur: 0.0,
            kind,
        }
    }

    #[test]
    fn legal_interleaving_is_silent() {
        use EventKind::*;
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 1,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                Rma {
                    win: 1,
                    target: 1,
                    kind: OpKind::Put,
                    bytes: 8,
                },
            ),
            ev(0, 0.2, LockRelease { win: 1, target: 1 }),
            // Staging after release is fine.
            ev(0, 0.3, StageTouch { gmr: 1, bytes: 64 }),
            // DLA under a self-lock.
            ev(
                0,
                0.4,
                LockAcquire {
                    win: 1,
                    target: 0,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.45,
                DlaBegin {
                    win: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.5,
                LocalAccess {
                    win: 1,
                    write: true,
                },
            ),
            ev(0, 0.55, DlaEnd { win: 1 }),
            ev(0, 0.6, LockRelease { win: 1, target: 0 }),
        ];
        assert!(audit(&events).is_empty());
    }

    #[test]
    fn nested_lock_is_flagged() {
        use EventKind::*;
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 2,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                LockAcquire {
                    win: 2,
                    target: 1,
                    exclusive: true,
                },
            ),
        ];
        let v = audit(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NestedLock);
    }

    #[test]
    fn aggregate_epoch_staging_is_exempt() {
        use EventKind::*;
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 3,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(0, 0.05, NbEpochOpen { win: 3, target: 1 }),
            ev(0, 0.1, StageTouch { gmr: 3, bytes: 64 }),
            ev(0, 0.2, NbEpochClose { win: 3, target: 1 }),
            ev(0, 0.2, LockRelease { win: 3, target: 1 }),
        ];
        assert!(audit(&events).is_empty());
        // The same touch under a plain (blocking) lock is a violation.
        let bad = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 3,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(0, 0.1, StageTouch { gmr: 3, bytes: 64 }),
        ];
        let v = audit(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::StagingWhileLocked);
    }

    #[test]
    fn coarsened_epoch_shape_is_legal() {
        use EventKind::*;
        // The coalescing scheduler's MPI-2 shape: one lock covering a run
        // of same-class RMA issues, then release.
        let mut events = vec![ev(
            0,
            0.0,
            LockAcquire {
                win: 7,
                target: 2,
                exclusive: true,
            },
        )];
        for i in 0..8 {
            events.push(ev(
                0,
                0.1 + i as f64 * 0.01,
                Rma {
                    win: 7,
                    target: 2,
                    kind: OpKind::Put,
                    bytes: 256,
                },
            ));
        }
        events.push(ev(0, 0.3, LockRelease { win: 7, target: 2 }));
        // The MPI-3 shape: many issues under lock_all with interleaved
        // per-target flushes.
        events.push(ev(0, 0.4, LockAll { win: 8 }));
        for i in 0..4 {
            events.push(ev(
                0,
                0.5 + i as f64 * 0.02,
                Rma {
                    win: 8,
                    target: i,
                    kind: OpKind::Get,
                    bytes: 64,
                },
            ));
            events.push(ev(0, 0.51 + i as f64 * 0.02, Flush { win: 8, target: i }));
        }
        events.push(ev(0, 0.7, UnlockAll { win: 8 }));
        assert!(audit(&events).is_empty());
    }

    #[test]
    fn rma_leaking_past_coarsened_unlock_is_flagged() {
        use EventKind::*;
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 9,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                Rma {
                    win: 9,
                    target: 1,
                    kind: OpKind::Put,
                    bytes: 32,
                },
            ),
            ev(0, 0.2, LockRelease { win: 9, target: 1 }),
            // seeded leak: an issue after the coarsened unlock
            ev(
                0,
                0.3,
                Rma {
                    win: 9,
                    target: 1,
                    kind: OpKind::Put,
                    bytes: 32,
                },
            ),
        ];
        let v = audit(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::OpOutsideEpoch);
    }

    #[test]
    fn atomic_outside_epoch_is_flagged_separately() {
        use EventKind::*;
        // Legal: an MPI-window atomic under its passive-target epoch.
        let ok = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 11,
                    target: 2,
                    exclusive: false,
                },
            ),
            ev(
                0,
                0.1,
                Rma {
                    win: 11,
                    target: 2,
                    kind: OpKind::Rmw,
                    bytes: 8,
                },
            ),
            ev(0, 0.2, LockRelease { win: 11, target: 2 }),
        ];
        assert!(audit(&ok).is_empty());
        // Seeded: the same atomic with no covering epoch trips the
        // atomic-specific rule, not the generic op-outside-epoch one.
        let bad = vec![ev(
            0,
            0.0,
            Rma {
                win: 11,
                target: 2,
                kind: OpKind::Rmw,
                bytes: 8,
            },
        )];
        let v = audit(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AtomicOutsideEpoch);
        assert_eq!(v[0].rule.name(), "atomic-outside-epoch");
    }

    #[test]
    fn flush_outside_epoch_is_flagged() {
        use EventKind::*;
        // legal: flush under lock_all
        let ok = vec![
            ev(0, 0.0, LockAll { win: 4 }),
            ev(0, 0.1, Flush { win: 4, target: 3 }),
            ev(0, 0.2, UnlockAll { win: 4 }),
        ];
        assert!(audit(&ok).is_empty());
        // seeded: flush after the coarsened unlock_all
        let bad = vec![
            ev(0, 0.0, LockAll { win: 4 }),
            ev(0, 0.1, UnlockAll { win: 4 }),
            ev(0, 0.2, Flush { win: 4, target: 3 }),
        ];
        let v = audit(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FlushOutsideEpoch);
    }

    #[test]
    fn shm_access_needs_win_sync_coherence() {
        use EventKind::*;
        // Legal: lock → win_sync → load/store → release.
        let ok = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 6,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(0, 0.1, WinSync { win: 6 }),
            ev(
                0,
                0.2,
                ShmAccess {
                    win: 6,
                    target: 1,
                    write: true,
                    bytes: 64,
                },
            ),
            ev(0, 0.3, LockRelease { win: 6, target: 1 }),
        ];
        assert!(audit(&ok).is_empty());
        // Legal: inside an access region (DLA owns the coherence).
        let dla = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 6,
                    target: 0,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                DlaBegin {
                    win: 6,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.2,
                ShmAccess {
                    win: 6,
                    target: 1,
                    write: false,
                    bytes: 8,
                },
            ),
            ev(0, 0.3, DlaEnd { win: 6 }),
            ev(0, 0.4, LockRelease { win: 6, target: 0 }),
        ];
        assert!(audit(&dla).is_empty());
        // Seeded: load under an epoch but before any win_sync.
        let unsynced = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 6,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                ShmAccess {
                    win: 6,
                    target: 1,
                    write: false,
                    bytes: 8,
                },
            ),
            ev(0, 0.2, LockRelease { win: 6, target: 1 }),
        ];
        let v = audit(&unsynced);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ShmCoherence);
    }

    #[test]
    fn epoch_close_revokes_shm_sync() {
        use EventKind::*;
        // win_sync in epoch 1 does not cover an access in epoch 2.
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 6,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(0, 0.1, WinSync { win: 6 }),
            ev(0, 0.2, LockRelease { win: 6, target: 1 }),
            ev(
                0,
                0.3,
                LockAcquire {
                    win: 6,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.4,
                ShmAccess {
                    win: 6,
                    target: 1,
                    write: true,
                    bytes: 16,
                },
            ),
            ev(0, 0.5, LockRelease { win: 6, target: 1 }),
        ];
        let v = audit(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ShmCoherence);
        // win_sync entirely outside an epoch is itself flagged.
        let bare = vec![ev(0, 0.0, WinSync { win: 6 })];
        let v = audit(&bare);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ShmCoherence);
    }

    #[test]
    fn ranks_are_independent() {
        use EventKind::*;
        // Rank 0 holds the lock; rank 1's staging touch is unrelated.
        let events = vec![
            ev(
                0,
                0.0,
                LockAcquire {
                    win: 5,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(1, 0.1, StageTouch { gmr: 5, bytes: 64 }),
        ];
        assert!(audit(&events).is_empty());
    }
}
