//! Tracing, metrics, and epoch-invariant auditing for the ARMCI-MPI stack.
//!
//! Every layer of the runtime (simnet pool, mpisim windows, the core
//! transfer engine, GA-level operations) records [`Event`]s into a
//! per-thread buffer when recording is enabled. Events carry the rank's
//! **virtual** timestamp (the same clock the simulator charges transfer
//! costs against), so a Chrome trace of a run shows where simulated time
//! goes inside each ARMCI op: epoch lock/unlock, datatype pack, staging
//! copies, mutex spins.
//!
//! Three consumers share the one event stream:
//!
//! * [`chrome`] renders Chrome-trace JSON (`chrome://tracing`, Perfetto)
//!   and a line-per-event JSONL dump;
//! * [`metrics`] folds events into counter/histogram registries (bytes
//!   moved, epochs opened, lock hold times, pool hit-rate, IOV
//!   fast-vs-conservative) and renders a one-screen text report;
//! * [`audit`] replays events per rank and rejects interleavings that
//!   violate the paper's §IV/§V safety rules (nested epochs on one
//!   window, load/store outside `ARMCI_Access_begin/end`, staging
//!   buffers touched under their home window's lock, unlock-without-lock).
//!
//! The recorder is deliberately cheap when idle: one relaxed atomic load
//! per call site, and the `off` feature compiles the whole thing down to
//! constants for overhead A/B measurements.

pub mod audit;
pub mod chrome;
pub mod critpath;
pub mod metrics;
pub mod waitstate;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// True when this build carries the recorder at all (the `off` feature
/// removes it).
pub const COMPILED_IN: bool = cfg!(not(feature = "off"));

/// Operation kind, shared by ARMCI-level and MPI-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    Get,
    Put,
    Acc,
    Rmw,
}

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Acc => "acc",
            OpKind::Rmw => "rmw",
        }
    }
}

/// Cause a [`EventKind::Wait`] span attributes blocked virtual time to.
/// The waitstate analyzer folds these into its per-category report; the
/// critical-path walker follows the `src` rank of the matching event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitCat {
    /// Waiting for a busy target's host CPU to service a passive-target
    /// protocol round (lock grant, operation completion, flush/unlock
    /// acknowledgement). This is the stall an asynchronous progress agent
    /// collapses.
    Progress,
    /// Blocked at a collective (or on a message not yet sent in virtual
    /// time) behind a slower peer. Attributed to the same `"progress"`
    /// category as [`WaitCat::Progress`] — the cause is still the peer's
    /// lack of progress — but kept distinct so the metrics registry can
    /// separate load imbalance (`progress.straggler_s`, which an agent
    /// cannot fix) from serviceable stalls (`progress.stall_s`, which it
    /// can).
    Straggler,
    /// Queueing delay from the shared-NIC congestion model.
    Congestion,
    /// A failed compare-and-swap charged a wire round trip that moved no
    /// data (the retry loop will go again).
    CasRetry,
    /// `MPI_Win_sync` memory-model barrier on a shared window.
    WinSync,
}

impl WaitCat {
    pub fn name(self) -> &'static str {
        match self {
            // Straggler shares the attribution category deliberately:
            // waitstate/critpath reports fold both into "progress".
            WaitCat::Progress | WaitCat::Straggler => "progress",
            WaitCat::Congestion => "congestion",
            WaitCat::CasRetry => "cas_retry",
            WaitCat::WinSync => "win_sync",
        }
    }
}

/// What happened. Span kinds (`Op`, `GaOp`, `Stage`, `Pack`, `MutexWait`,
/// `Coll`, `Wait`, `Compute`) carry a duration; everything else is an
/// instant whose pairing (lock / unlock, begin / end) is reconstructed by
/// the consumers.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One engine-level ARMCI operation against a GMR (span).
    Op {
        name: &'static str,
        gmr: u64,
        bytes: u64,
    },
    /// One GA-level (Global Arrays) operation (span).
    GaOp {
        name: &'static str,
        bytes: u64,
    },
    /// One engine pipeline stage: plan / acquire / execute / complete (span).
    Stage {
        stage: &'static str,
        gmr: u64,
    },
    /// Datatype pack/unpack charged by the window (span).
    Pack {
        win: u64,
        bytes: u64,
    },
    /// Blocked inside the RMA mutex queue waiting for a handoff (span).
    /// `src` is the **world** rank whose unlock granted the mutex — the
    /// cross-rank causal edge the critical-path walker follows.
    MutexWait {
        win: u64,
        mutex: u32,
        host: u32,
        src: u32,
    },
    /// One collective operation as seen by one rank: the span runs from
    /// this rank's arrival at the rendezvous to its departure. Every
    /// participant of one collective shares `(comm, seq)` (`seq` is the
    /// cell's round number, identical on all members); `src` is the
    /// **world** rank of the straggler — the latest arrival, ties to the
    /// lowest rank — whose progress released everyone.
    Coll {
        comm: u64,
        seq: u64,
        src: u32,
    },
    /// Blocked virtual time attributed to a cause (span). `src` is the
    /// world rank the wait resolved through (straggler, congesting peer,
    /// CAS target, ...); `obj` is the window / communicator id involved.
    Wait {
        cat: WaitCat,
        src: u32,
        obj: u64,
    },
    /// Modelled local computation (`Proc::compute`) — the part of a
    /// rank's timeline the waitstate analyzer must *not* attribute to
    /// communication or blocking (span).
    Compute,
    /// A per-node progress agent serviced `ops` passive-target rounds
    /// bound for `target` instead of stalling on its host progress
    /// (span; duration is the agent forward + service cost).
    /// `avoided_s` is the expected host-side stall the agent collapsed —
    /// the metric behind `progress.offloaded_s`.
    AgentDrain {
        win: u64,
        target: u32,
        ops: u32,
        avoided_s: f64,
    },
    /// Passive-target lock granted on (window, target).
    LockAcquire {
        win: u64,
        target: u32,
        exclusive: bool,
    },
    /// Passive-target lock released on (window, target).
    LockRelease {
        win: u64,
        target: u32,
    },
    /// MPI-3 `lock_all` opened on a window.
    LockAll {
        win: u64,
    },
    /// MPI-3 `unlock_all` on a window.
    UnlockAll {
        win: u64,
    },
    /// MPI-3 `flush` of (window, target).
    Flush {
        win: u64,
        target: u32,
    },
    /// Active-target fence epoch opened / closed.
    FenceBegin {
        win: u64,
    },
    FenceEnd {
        win: u64,
    },
    /// A nonblocking aggregate epoch adopted the lock on (window, target):
    /// the auditor must not treat staging under it as a violation.
    NbEpochOpen {
        win: u64,
        target: u32,
    },
    NbEpochClose {
        win: u64,
        target: u32,
    },
    /// One MPI-level RMA data-movement call on a window.
    Rma {
        win: u64,
        target: u32,
        kind: OpKind,
        bytes: u64,
    },
    /// Buffer-pool lease outcome.
    Pool {
        bytes: u64,
        hit: bool,
    },
    /// Engine staging buffer filled/drained for a GMR (legal only while
    /// the home window is not locked by this rank).
    StageTouch {
        gmr: u64,
        bytes: u64,
    },
    /// Direct-local-access region (ARMCI_Access_begin/end) entered/left.
    DlaBegin {
        win: u64,
        exclusive: bool,
    },
    DlaEnd {
        win: u64,
    },
    /// A raw load/store of window memory (must sit inside a DLA region).
    LocalAccess {
        win: u64,
        write: bool,
    },
    /// IOV method election: fast (direct datatype) vs conservative.
    Method {
        name: &'static str,
        fast: bool,
    },
    /// GMR lifecycle.
    GmrCreate {
        gmr: u64,
        bytes: u64,
    },
    GmrFree {
        gmr: u64,
    },
    /// Runtime error surfaced through the recorder (e.g. `GmrVanished`).
    Error {
        what: &'static str,
        gmr: u64,
    },
    /// One coalescing-scheduler flush of a (window, target) queue: `ops`
    /// queued operations issued as `runs` coarsened epochs, `segs_in`
    /// raw segments merged down to `segs_out` wire segments.
    SchedFlush {
        win: u64,
        target: u32,
        ops: u32,
        runs: u32,
        segs_in: u32,
        segs_out: u32,
    },
    /// Committed-datatype cache consultation on a window (§VI-B shapes):
    /// `hit` means the pack descriptor build was skipped.
    DtypeCommit {
        win: u64,
        hit: bool,
    },
    /// `MPI_Win_sync` on a window: the separate-memory-model barrier that
    /// makes prior remote stores visible to subsequent load/store and
    /// vice versa. Load/store of a peer's shared section is only coherent
    /// between a `WinSync` and the close of the covering epoch.
    WinSync {
        win: u64,
    },
    /// An intra-node load/store of a shared-window section (the shm fast
    /// path or a `shared_query` view): `target` is the section's owner.
    /// Must sit inside a `Win_sync`'d epoch or a DLA region.
    ShmAccess {
        win: u64,
        target: u32,
        write: bool,
        bytes: u64,
    },
    /// One runtime-level atomic (`rmw` / `compare_and_swap`) against a
    /// GMR, recorded for metrics regardless of which protocol served it:
    /// `native` is true for MPI-3/NIC/slab atomics, false for the Latham
    /// mutex fallback; `cas` marks compare-and-swap (where `success`
    /// reports whether the comparison matched — a failed CAS is a retry).
    AtomicOp {
        win: u64,
        target: u32,
        cas: bool,
        native: bool,
        success: bool,
    },
    /// A wire operation issued through a pluggable transport backend other
    /// than plain MPI RMA (which keeps emitting [`EventKind::Rma`]).
    /// `offloaded` is true when the backend handled the operation in
    /// hardware (e.g. a contiguous channel put) rather than falling back to
    /// a software path.
    TransportIssue {
        backend: &'static str,
        win: u64,
        target: u32,
        kind: OpKind,
        bytes: u64,
        offloaded: bool,
    },
}

/// One recorded event. `ts`/`dur` are virtual seconds; `dur` is zero for
/// instants.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub rank: u32,
    pub ts: f64,
    pub dur: f64,
    pub kind: EventKind,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static TEST_MUTEX: Mutex<()> = Mutex::new(());

struct Tls {
    rank: u32,
    now: f64,
    buf: Vec<Event>,
}

impl Drop for Tls {
    fn drop(&mut self) {
        // Rank threads flush whatever they buffered when they exit, so a
        // `take()` after `Runtime::run` sees every rank's events.
        if !self.buf.is_empty() {
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut self.buf);
        }
    }
}

thread_local! {
    static TLS: RefCell<Tls> = const {
        RefCell::new(Tls { rank: 0, now: 0.0, buf: Vec::new() })
    };
}

/// Is recording currently on? One relaxed load; callers use this to skip
/// timestamp plumbing entirely on the hot path.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on (no-op under the `off` feature).
pub fn enable() {
    if COMPILED_IN {
        ENABLED.store(true, Ordering::Relaxed);
    }
}

/// Turn recording off. Buffered events stay until taken or cleared.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Tag this thread's future events with a rank (called once per rank
/// thread by the runtime).
pub fn set_rank(rank: usize) {
    if !enabled() {
        return;
    }
    TLS.with(|t| t.borrow_mut().rank = rank as u32);
}

/// Advance this thread's clock hint. Call sites that know their virtual
/// time pass it explicitly; layers without a clock (the buffer pool)
/// stamp events with the hint instead.
pub fn set_now(ts: f64) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if ts > t.now {
            t.now = ts;
        }
    });
}

/// This thread's last known virtual time.
pub fn now_hint() -> f64 {
    if !enabled() {
        return 0.0;
    }
    TLS.with(|t| t.borrow().now)
}

/// Record an instant at the thread's clock hint.
pub fn instant(kind: EventKind) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let (rank, ts) = (t.rank, t.now);
        t.buf.push(Event {
            rank,
            ts,
            dur: 0.0,
            kind,
        });
    });
}

/// Record an instant at an explicit virtual time (also advances the hint).
pub fn instant_at(kind: EventKind, ts: f64) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if ts > t.now {
            t.now = ts;
        }
        let rank = t.rank;
        t.buf.push(Event {
            rank,
            ts,
            dur: 0.0,
            kind,
        });
    });
}

/// Record a span `[t0, t1]` (also advances the hint to `t1`).
pub fn span(kind: EventKind, t0: f64, t1: f64) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t1 > t.now {
            t.now = t1;
        }
        let rank = t.rank;
        t.buf.push(Event {
            rank,
            ts: t0,
            dur: (t1 - t0).max(0.0),
            kind,
        });
    });
}

/// A borrow of this thread's recorder for pushing several events from
/// one call site with a single TLS access (see [`batch`]).
pub struct Batch<'a> {
    rank: u32,
    now: &'a mut f64,
    buf: &'a mut Vec<Event>,
}

impl Batch<'_> {
    /// Record a span `[t0, t1]` (advances the hint like [`span`]).
    #[inline]
    pub fn span(&mut self, kind: EventKind, t0: f64, t1: f64) {
        if t1 > *self.now {
            *self.now = t1;
        }
        self.buf.push(Event {
            rank: self.rank,
            ts: t0,
            dur: (t1 - t0).max(0.0),
            kind,
        });
    }

    /// Record an instant at `ts` (advances the hint like [`instant_at`]).
    #[inline]
    pub fn instant_at(&mut self, kind: EventKind, ts: f64) {
        if ts > *self.now {
            *self.now = ts;
        }
        self.buf.push(Event {
            rank: self.rank,
            ts,
            dur: 0.0,
            kind,
        });
    }
}

/// Run `f` against this thread's recorder, paying the TLS lookup once
/// for a group of events. `f` is not called when recording is off.
#[inline]
pub fn batch(f: impl FnOnce(&mut Batch)) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let t = &mut *t;
        let mut b = Batch {
            rank: t.rank,
            now: &mut t.now,
            buf: &mut t.buf,
        };
        f(&mut b);
    });
}

/// Push this thread's buffered events into the global sink.
pub fn flush_thread() {
    if !COMPILED_IN {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.buf.is_empty() {
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut t.buf);
        }
    });
}

/// Drain every recorded event: this thread's buffer plus everything rank
/// threads flushed on exit. Within a rank, slice order is program order.
pub fn take() -> Vec<Event> {
    flush_thread();
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

/// Drain only the current thread's buffer (per-phase deltas on one rank).
/// Keeps the buffer's capacity so steady-state recording stops allocating.
pub fn take_local() -> Vec<Event> {
    if !COMPILED_IN {
        return Vec::new();
    }
    TLS.with(|t| t.borrow_mut().buf.split_off(0))
}

/// Drop all recorded events everywhere reachable from this thread.
pub fn clear() {
    let _ = take();
}

/// Serialise tests that enable the global recorder. Integration tests in
/// one binary run on concurrent threads; without this their event streams
/// interleave in the shared sink.
pub fn test_guard() -> MutexGuard<'static, ()> {
    TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // With the recorder compiled out (`off` feature) nothing records,
    // so only the drop-everything behaviour is testable.
    #[cfg(not(feature = "off"))]
    #[test]
    fn recorder_roundtrip_and_hint() {
        let _g = test_guard();
        clear();
        enable();
        set_rank(3);
        span(
            EventKind::Op {
                name: "get",
                gmr: 1,
                bytes: 64,
            },
            1.0,
            2.5,
        );
        instant(EventKind::Pool {
            bytes: 64,
            hit: true,
        });
        assert_eq!(now_hint(), 2.5);
        let ev = take();
        disable();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].rank, 3);
        assert!((ev[0].dur - 1.5).abs() < 1e-12);
        // The pool instant inherited the hint from the span.
        assert_eq!(ev[1].ts, 2.5);
        set_rank(0);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = test_guard();
        clear();
        disable();
        instant(EventKind::Flush { win: 1, target: 0 });
        assert!(take().is_empty());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn thread_exit_flushes_to_sink() {
        let _g = test_guard();
        clear();
        enable();
        std::thread::scope(|s| {
            s.spawn(|| {
                set_rank(1);
                instant_at(EventKind::LockAll { win: 7 }, 0.25);
            });
        });
        let ev = take();
        disable();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rank, 1);
        assert_eq!(ev[0].ts, 0.25);
    }
}
