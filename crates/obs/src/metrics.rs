//! Counter/histogram registries folded from the event stream.
//!
//! [`Registry::from_events`] walks a recorded trace once and produces
//! flat, string-keyed counters (`ops.get`, `gmr.3.bytes`, `pool.hits`),
//! accumulated virtual-time totals (`stage_s.execute`, `epoch_held_s`)
//! and log2-bucketed microsecond histograms (lock hold times, op and
//! pack durations). Keys are deliberately plain strings so the report
//! and JSON schema stay decoupled from the event enum.

use crate::{Event, EventKind};
use serde::Value;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Power-of-two microsecond histogram: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` µs, bucket 0 holds sub-microsecond samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum_s: f64,
    pub buckets: Vec<u64>,
}

impl Histogram {
    pub fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.sum_s += seconds;
        let us = seconds * 1e6;
        let idx = if us < 1.0 {
            0
        } else {
            // ceil(log2(us)) + 1, capped.
            (64 - (us as u64).leading_zeros() as usize).min(39)
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Estimated `q`-quantile in microseconds (`q` in `[0, 1]`), linearly
    /// interpolated inside the covering log2 bucket (bucket 0 spans
    /// `[0, 1)` µs, bucket `i` spans `[2^(i-1), 2^i)` µs). Exact only up
    /// to bucket resolution, but deterministic and monotone in `q`.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = if i == 0 {
                    (0.0, 1.0)
                } else {
                    ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
                };
                let frac = (target - seen) as f64 / n as f64;
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        0.0
    }
}

/// Flat metrics registry derived from one event stream.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Monotonic counts (ops, bytes, epochs, pool hits...).
    pub counters: BTreeMap<String, u64>,
    /// Accumulated virtual seconds per category.
    pub times: BTreeMap<String, f64>,
    /// Duration distributions in log2 µs buckets.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    fn bump(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    fn add_time(&mut self, key: &str, s: f64) {
        *self.times.entry(key.to_owned()).or_insert(0.0) += s;
    }

    fn observe(&mut self, key: &str, s: f64) {
        self.histograms.entry(key.to_owned()).or_default().record(s);
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn time(&self, key: &str) -> f64 {
        self.times.get(key).copied().unwrap_or(0.0)
    }

    /// Pool hit-rate in `[0, 1]`; zero when the pool was never used.
    pub fn pool_hit_rate(&self) -> f64 {
        let h = self.counter("pool.hits") as f64;
        let m = self.counter("pool.misses") as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// World rank ranks most often stalled behind waiting for passive-target
    /// progress, with its accumulated stall seconds. Ties break to the
    /// lowest rank so reports stay deterministic.
    pub fn top_progress_straggler(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (k, &s) in &self.times {
            let Some(rank) = k
                .strip_prefix("progress.stall_src.")
                .and_then(|r| r.parse::<u32>().ok())
            else {
                continue;
            };
            match best {
                Some((br, bs)) if s < bs || (s == bs && rank >= br) => {}
                _ => best = Some((rank, s)),
            }
        }
        best
    }

    /// Committed-datatype cache hit-rate in `[0, 1]`; zero when the cache
    /// was never consulted.
    pub fn dtype_hit_rate(&self) -> f64 {
        let h = self.counter("dtype.hits") as f64;
        let m = self.counter("dtype.misses") as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Fold a trace into counters, time totals and histograms.
    pub fn from_events(events: &[Event]) -> Self {
        use EventKind::*;
        let mut reg = Registry::default();
        // Open lock / lock_all / DLA intervals, keyed per rank, for hold
        // times. Unmatched opens (partial traces) are simply dropped.
        let mut lock_open: HashMap<(u32, u64, u32), f64> = HashMap::new();
        let mut lock_all_open: HashMap<(u32, u64), f64> = HashMap::new();
        let mut dla_open: HashMap<(u32, u64), f64> = HashMap::new();
        for e in events {
            match &e.kind {
                Op { name, gmr, bytes } => {
                    reg.bump(&format!("ops.{name}"), 1);
                    reg.bump(&format!("bytes.{name}"), *bytes);
                    reg.bump(&format!("gmr.{gmr}.ops.{name}"), 1);
                    reg.bump(&format!("gmr.{gmr}.bytes"), *bytes);
                    reg.add_time(&format!("op_s.{name}"), e.dur);
                    reg.observe(&format!("op_us.{name}"), e.dur);
                }
                GaOp { name, bytes } => {
                    reg.bump(&format!("ga.{name}"), 1);
                    reg.bump(&format!("ga_bytes.{name}"), *bytes);
                    reg.add_time(&format!("ga_s.{name}"), e.dur);
                }
                Stage { stage, .. } => {
                    reg.bump(&format!("stages.{stage}"), 1);
                    reg.add_time(&format!("stage_s.{stage}"), e.dur);
                    reg.observe(&format!("stage_us.{stage}"), e.dur);
                }
                Pack { bytes, .. } => {
                    reg.bump("packs", 1);
                    reg.bump("pack_bytes", *bytes);
                    reg.add_time("pack_s", e.dur);
                    reg.observe("pack_us", e.dur);
                }
                MutexWait { .. } => {
                    reg.bump("mutex.waits", 1);
                    reg.add_time("mutex_wait_s", e.dur);
                    reg.observe("mutex_wait_us", e.dur);
                }
                Coll { .. } => {
                    reg.bump("coll.ops", 1);
                    reg.add_time("coll_s", e.dur);
                }
                Wait { cat, src, .. } => {
                    let name = cat.name();
                    reg.bump(&format!("waits.{name}"), 1);
                    reg.add_time(&format!("wait_s.{name}"), e.dur);
                    reg.observe(&format!("wait_us.{name}"), e.dur);
                    match cat {
                        // The headline metric the async-progress engine
                        // is judged against: virtual seconds blocked on a
                        // busy target's host CPU servicing passive-target
                        // rounds. Collapsible by a progress agent.
                        crate::WaitCat::Progress => {
                            reg.add_time("progress.stall_s", e.dur);
                            reg.add_time(&format!("progress.stall_src.{src}"), e.dur);
                        }
                        // Load imbalance at synchronisation points: same
                        // attribution category, but no agent can compute
                        // the straggler's work for it.
                        crate::WaitCat::Straggler => {
                            reg.add_time("progress.straggler_s", e.dur);
                            reg.add_time(&format!("progress.stall_src.{src}"), e.dur);
                        }
                        _ => {}
                    }
                }
                AgentDrain { ops, avoided_s, .. } => {
                    reg.bump("progress.agent_ops", u64::from(*ops));
                    reg.add_time("progress.offloaded_s", *avoided_s);
                    reg.add_time("agent_drain_s", e.dur);
                }
                Compute => {
                    reg.bump("compute.blocks", 1);
                    reg.add_time("compute_s", e.dur);
                }
                LockAcquire {
                    win,
                    target,
                    exclusive,
                } => {
                    reg.bump(
                        if *exclusive {
                            "epochs.exclusive"
                        } else {
                            "epochs.shared"
                        },
                        1,
                    );
                    lock_open.insert((e.rank, *win, *target), e.ts);
                }
                LockRelease { win, target } => {
                    if let Some(t0) = lock_open.remove(&(e.rank, *win, *target)) {
                        reg.add_time("epoch_held_s", e.ts - t0);
                        reg.observe("lock_hold_us", e.ts - t0);
                    }
                }
                LockAll { win } => {
                    reg.bump("epochs.lock_all", 1);
                    lock_all_open.insert((e.rank, *win), e.ts);
                }
                UnlockAll { win } => {
                    if let Some(t0) = lock_all_open.remove(&(e.rank, *win)) {
                        reg.add_time("lock_all_held_s", e.ts - t0);
                    }
                }
                Flush { .. } => reg.bump("epochs.flushes", 1),
                FenceBegin { .. } => reg.bump("epochs.fences", 1),
                FenceEnd { .. } => {}
                NbEpochOpen { .. } => reg.bump("epochs.aggregate", 1),
                NbEpochClose { .. } => {}
                Rma {
                    kind, bytes, win, ..
                } => {
                    reg.bump(&format!("rma.{}", kind.name()), 1);
                    reg.bump(&format!("rma_bytes.{}", kind.name()), *bytes);
                    reg.bump(&format!("win.{win}.rma_bytes"), *bytes);
                }
                Pool { hit, .. } => reg.bump(if *hit { "pool.hits" } else { "pool.misses" }, 1),
                StageTouch { bytes, .. } => {
                    reg.bump("staging.touches", 1);
                    reg.bump("staging.bytes", *bytes);
                }
                DlaBegin { win, .. } => {
                    reg.bump("dla.regions", 1);
                    dla_open.insert((e.rank, *win), e.ts);
                }
                DlaEnd { win } => {
                    if let Some(t0) = dla_open.remove(&(e.rank, *win)) {
                        reg.add_time("dla_s", e.ts - t0);
                    }
                }
                LocalAccess { .. } => reg.bump("dla.accesses", 1),
                Method { name, fast } => {
                    reg.bump(
                        if *fast {
                            "iov.fast"
                        } else {
                            "iov.conservative"
                        },
                        1,
                    );
                    reg.bump(&format!("method.{name}"), 1);
                }
                GmrCreate { .. } => reg.bump("gmr.created", 1),
                GmrFree { .. } => reg.bump("gmr.freed", 1),
                Error { what, gmr } => {
                    reg.bump(&format!("errors.{what}"), 1);
                    reg.bump(&format!("errors.{what}.gmr.{gmr}"), 1);
                }
                SchedFlush {
                    ops,
                    runs,
                    segs_in,
                    segs_out,
                    ..
                } => {
                    reg.bump("sched.flushes", 1);
                    reg.bump("sched.ops", *ops as u64);
                    reg.bump("sched.runs", *runs as u64);
                    reg.bump("sched.segs_in", *segs_in as u64);
                    reg.bump("sched.segs_out", *segs_out as u64);
                    // Each run costs one epoch; without coalescing each op
                    // would have cost one.
                    reg.bump("sched.epochs_saved", (*ops - *runs) as u64);
                }
                DtypeCommit { hit, .. } => {
                    reg.bump(if *hit { "dtype.hits" } else { "dtype.misses" }, 1)
                }
                WinSync { .. } => reg.bump("shm.syncs", 1),
                ShmAccess {
                    win, write, bytes, ..
                } => {
                    reg.bump("shm.hits", 1);
                    reg.bump(if *write { "shm.stores" } else { "shm.loads" }, 1);
                    reg.bump("shm.bypass_bytes", *bytes);
                    reg.bump(&format!("win.{win}.shm_bytes"), *bytes);
                }
                AtomicOp {
                    cas,
                    native,
                    success,
                    ..
                } => {
                    reg.bump(
                        if *native {
                            "rmw.native_ops"
                        } else {
                            "mutex.fallback_ops"
                        },
                        1,
                    );
                    if *cas {
                        reg.bump("rmw.cas_ops", 1);
                        if !*success {
                            reg.bump("rmw.cas_retries", 1);
                        }
                    }
                }
                TransportIssue {
                    backend,
                    kind,
                    bytes,
                    offloaded,
                    ..
                } => {
                    reg.bump(&format!("transport.{backend}.{}", kind.name()), 1);
                    reg.bump(&format!("transport.{backend}.bytes"), *bytes);
                    let path = if *offloaded { "offloaded" } else { "fallback" };
                    reg.bump(&format!("transport.{backend}.{path}"), 1);
                }
            }
        }
        reg
    }

    /// One-screen human-readable summary.
    pub fn render(&self) -> String {
        fn bytes_h(n: u64) -> String {
            if n >= 1 << 20 {
                format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
            } else if n >= 1 << 10 {
                format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
            } else {
                format!("{n} B")
            }
        }
        let mut out = String::new();
        out.push_str("obs report ─────────────────────────────────────────\n");
        for kind in ["get", "put", "acc", "rmw", "nb_get", "nb_put", "nb_acc"] {
            let n = self.counter(&format!("ops.{kind}"));
            if n > 0 {
                out.push_str(&format!(
                    "  {:<6} : {:>6} ops  {:>10}  {:.6} s\n",
                    kind,
                    n,
                    bytes_h(self.counter(&format!("bytes.{kind}"))),
                    self.time(&format!("op_s.{kind}")),
                ));
            }
        }
        out.push_str(&format!(
            "  epochs : shared={} exclusive={} lock_all={} aggregate={} flushes={} fences={}\n",
            self.counter("epochs.shared"),
            self.counter("epochs.exclusive"),
            self.counter("epochs.lock_all"),
            self.counter("epochs.aggregate"),
            self.counter("epochs.flushes"),
            self.counter("epochs.fences"),
        ));
        if let Some(h) = self.histograms.get("lock_hold_us") {
            out.push_str(&format!(
                "  epoch held : {:.6} s total, {:.1} us mean over {} epochs\n",
                self.time("epoch_held_s"),
                h.mean_s() * 1e6,
                h.count,
            ));
        }
        let stage_line: Vec<String> = ["plan", "acquire", "execute", "complete"]
            .iter()
            .filter(|s| self.counter(&format!("stages.{s}")) > 0)
            .map(|s| format!("{s}={:.6}s", self.time(&format!("stage_s.{s}"))))
            .collect();
        if !stage_line.is_empty() {
            out.push_str(&format!("  stages : {}\n", stage_line.join(" ")));
        }
        if self.counter("packs") > 0 {
            out.push_str(&format!(
                "  pack   : {} packs, {}, {:.6} s\n",
                self.counter("packs"),
                bytes_h(self.counter("pack_bytes")),
                self.time("pack_s"),
            ));
        }
        let atomics = self.counter("rmw.native_ops") + self.counter("mutex.fallback_ops");
        if atomics > 0 {
            out.push_str(&format!(
                "  atomic : native={} mutex_fallback={} cas={} ({} retries)\n",
                self.counter("rmw.native_ops"),
                self.counter("mutex.fallback_ops"),
                self.counter("rmw.cas_ops"),
                self.counter("rmw.cas_retries"),
            ));
        }
        if self.counter("mutex.waits") > 0 {
            out.push_str(&format!(
                "  mutex  : {} waits, {:.6} s blocked\n",
                self.counter("mutex.waits"),
                self.time("mutex_wait_s"),
            ));
        }
        let wait_line: Vec<String> = ["progress", "congestion", "cas_retry", "win_sync"]
            .iter()
            .filter(|c| self.counter(&format!("waits.{c}")) > 0)
            .map(|c| format!("{c}={:.6}s", self.time(&format!("wait_s.{c}"))))
            .collect();
        if !wait_line.is_empty() {
            let straggler = self
                .top_progress_straggler()
                .map(|(rank, s)| format!(", top straggler rank {rank} ({s:.6}s)"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  waits  : {} (progress.stall_s={:.6} straggler_s={:.6}{})\n",
                wait_line.join(" "),
                self.time("progress.stall_s"),
                self.time("progress.straggler_s"),
                straggler,
            ));
        }
        if self.counter("progress.agent_ops") > 0 {
            out.push_str(&format!(
                "  agent  : {} ops drained, {:.6} s offloaded ({:.6} s service)\n",
                self.counter("progress.agent_ops"),
                self.time("progress.offloaded_s"),
                self.time("agent_drain_s"),
            ));
        }
        if self.counter("compute.blocks") > 0 {
            out.push_str(&format!(
                "  compute: {:.6} s modelled\n",
                self.time("compute_s")
            ));
        }
        let pool_total = self.counter("pool.hits") + self.counter("pool.misses");
        if pool_total > 0 {
            out.push_str(&format!(
                "  pool   : {} hits / {} leases ({:.1}% hit-rate)\n",
                self.counter("pool.hits"),
                pool_total,
                self.pool_hit_rate() * 100.0,
            ));
        }
        let (fast, cons) = (self.counter("iov.fast"), self.counter("iov.conservative"));
        if fast + cons > 0 {
            out.push_str(&format!("  iov    : fast={fast} conservative={cons}\n"));
        }
        if self.counter("sched.flushes") > 0 {
            out.push_str(&format!(
                "  sched  : {} ops in {} runs over {} flushes, {} epochs saved, segs {}→{}\n",
                self.counter("sched.ops"),
                self.counter("sched.runs"),
                self.counter("sched.flushes"),
                self.counter("sched.epochs_saved"),
                self.counter("sched.segs_in"),
                self.counter("sched.segs_out"),
            ));
        }
        if self.counter("shm.hits") > 0 {
            out.push_str(&format!(
                "  shm    : {} intra-node accesses ({} loads / {} stores), {} bypassed, {} syncs\n",
                self.counter("shm.hits"),
                self.counter("shm.loads"),
                self.counter("shm.stores"),
                bytes_h(self.counter("shm.bypass_bytes")),
                self.counter("shm.syncs"),
            ));
        }
        let dtype_total = self.counter("dtype.hits") + self.counter("dtype.misses");
        if dtype_total > 0 {
            out.push_str(&format!(
                "  dtype  : {} hits / {} commits ({:.1}% hit-rate)\n",
                self.counter("dtype.hits"),
                dtype_total,
                self.dtype_hit_rate() * 100.0,
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("  tails (log2-us histograms):\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "    {:<20} n={:<6} p50={:.1}us p95={:.1}us p99={:.1}us\n",
                    k,
                    h.count,
                    h.quantile_us(0.50),
                    h.quantile_us(0.95),
                    h.quantile_us(0.99),
                ));
            }
        }
        let errs: Vec<String> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("errors.") && k.matches('.').count() == 1)
            .map(|(k, v)| format!("{}={}", &k["errors.".len()..], v))
            .collect();
        if !errs.is_empty() {
            out.push_str(&format!("  errors : {}\n", errs.join(" ")));
        }
        out.push_str("────────────────────────────────────────────────────\n");
        out
    }

    /// JSON form for OBS_report artifacts.
    pub fn to_value(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        );
        let times = Value::Object(
            self.times
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("count".into(), Value::UInt(h.count)),
                            ("sum_s".into(), Value::Float(h.sum_s)),
                            (
                                "buckets_log2us".into(),
                                Value::Array(h.buckets.iter().map(|b| Value::UInt(*b)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".into(), counters),
            ("times".into(), times),
            ("histograms".into(), histograms),
        ])
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report render")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, OpKind};

    fn ev(rank: u32, ts: f64, dur: f64, kind: EventKind) -> Event {
        Event {
            rank,
            ts,
            dur,
            kind,
        }
    }

    #[test]
    fn registry_folds_counters_and_hold_times() {
        use EventKind::*;
        let events = vec![
            ev(
                0,
                0.0,
                0.0,
                LockAcquire {
                    win: 4,
                    target: 1,
                    exclusive: true,
                },
            ),
            ev(
                0,
                0.1,
                0.4,
                Op {
                    name: "put",
                    gmr: 4,
                    bytes: 1024,
                },
            ),
            ev(
                0,
                0.2,
                0.0,
                Rma {
                    win: 4,
                    target: 1,
                    kind: OpKind::Put,
                    bytes: 1024,
                },
            ),
            ev(0, 0.5, 0.0, LockRelease { win: 4, target: 1 }),
            ev(
                1,
                0.0,
                0.0,
                Pool {
                    bytes: 64,
                    hit: true,
                },
            ),
            ev(
                1,
                0.1,
                0.0,
                Pool {
                    bytes: 64,
                    hit: false,
                },
            ),
            ev(
                1,
                0.2,
                0.0,
                Method {
                    name: "iov_auto",
                    fast: true,
                },
            ),
        ];
        let reg = Registry::from_events(&events);
        assert_eq!(reg.counter("ops.put"), 1);
        assert_eq!(reg.counter("bytes.put"), 1024);
        assert_eq!(reg.counter("gmr.4.bytes"), 1024);
        assert_eq!(reg.counter("epochs.exclusive"), 1);
        assert_eq!(reg.counter("rma.put"), 1);
        assert!((reg.time("epoch_held_s") - 0.5).abs() < 1e-12);
        assert!((reg.pool_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(reg.counter("iov.fast"), 1);
        let rendered = reg.render();
        assert!(rendered.contains("put"));
        assert!(rendered.contains("hit-rate"));
        serde_json::from_str(&reg.to_json()).expect("report json parses");
    }

    #[test]
    fn histogram_buckets_are_log2_microseconds() {
        let mut h = Histogram::default();
        h.record(0.5e-6); // sub-µs → bucket 0
        h.record(3e-6); // 3 µs → bucket 2 ([2,4))
        h.record(100e-6); // 100 µs → bucket 7 ([64,128))
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
    }
}
