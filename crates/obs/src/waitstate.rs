//! Post-mortem wait-state attribution.
//!
//! Merges the per-rank event streams of one run and classifies every
//! second of each rank's virtual timeline into exactly one bucket:
//!
//! * a **wait category** — target-progress stall ([`crate::WaitCat::Progress`]),
//!   congestion queueing, CAS retry, `win_sync`, or mutex/lock contention
//!   ([`crate::EventKind::MutexWait`]);
//! * **compute** — modelled local computation ([`crate::EventKind::Compute`]);
//! * **tracked** — communication/runtime work covered by an op, GA-op,
//!   stage, pack, or collective span;
//! * **untracked** — timeline not covered by any span (recorder gaps).
//!
//! Overlaps resolve by priority (waits > compute > tracked); equal
//! priorities go to the innermost (latest-starting) span, so e.g. a
//! congestion wait nested inside a CAS retry wins its own interval.
//! The sweep is deterministic: events are processed in (rank, program
//! order) so identical traces produce bit-identical sums.

use crate::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Wait-category labels in report order. `lock` is mutex contention; the
/// other four mirror [`crate::WaitCat`].
pub const CATEGORIES: [&str; 5] = ["progress", "lock", "congestion", "cas_retry", "win_sync"];

/// One rank's classified timeline.
#[derive(Debug, Clone)]
pub struct RankBreakdown {
    pub rank: u32,
    /// Timeline length: first event timestamp to last span end.
    pub span_s: f64,
    /// Seconds per wait category (keys from [`CATEGORIES`]).
    pub waits: BTreeMap<&'static str, f64>,
    pub compute_s: f64,
    pub tracked_s: f64,
    pub untracked_s: f64,
}

impl RankBreakdown {
    /// Total blocked seconds across all wait categories.
    pub fn wait_s(&self) -> f64 {
        self.waits.values().sum()
    }
}

/// Whole-run attribution report.
#[derive(Debug, Clone, Default)]
pub struct WaitReport {
    pub ranks: Vec<RankBreakdown>,
    /// Summed seconds per wait category across ranks.
    pub cat_s: BTreeMap<&'static str, f64>,
    pub compute_s: f64,
    pub tracked_s: f64,
    pub untracked_s: f64,
    /// Sum of per-rank timeline lengths.
    pub total_s: f64,
    /// Wait seconds by (category, object id) — top contributors first.
    pub top_objs: Vec<(String, f64)>,
    /// Tracked span seconds by op name — top contributors first.
    pub top_ops: Vec<(String, f64)>,
}

impl WaitReport {
    /// Fraction of non-compute time attributed to a named bucket (a wait
    /// category or tracked communication): `1 - untracked / (total -
    /// compute)`. 1.0 when there is no non-compute time at all.
    pub fn attributed_fraction(&self) -> f64 {
        let denom = self.total_s - self.compute_s;
        if denom <= 0.0 {
            return 1.0;
        }
        (1.0 - self.untracked_s / denom).clamp(0.0, 1.0)
    }

    /// Per-rank wait imbalance: max over ranks of total wait seconds
    /// divided by the mean. 1.0 for a perfectly balanced (or wait-free)
    /// run.
    pub fn imbalance(&self) -> f64 {
        if self.ranks.is_empty() {
            return 1.0;
        }
        let per: Vec<f64> = self.ranks.iter().map(|r| r.wait_s()).collect();
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        per.iter().cloned().fold(0.0f64, f64::max) / mean
    }

    /// The costliest wait category, if any time was blocked at all.
    pub fn top_category(&self) -> Option<(&'static str, f64)> {
        CATEGORIES
            .iter()
            .map(|&c| (c, self.cat_s.get(c).copied().unwrap_or(0.0)))
            .filter(|&(_, s)| s > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(a.0)))
    }

    /// One-screen text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "wait-state attribution ({} ranks)", self.ranks.len());
        let _ = writeln!(
            out,
            "  timeline: {:.6} s total, compute {:.6} s, tracked comm {:.6} s, untracked {:.6} s",
            self.total_s, self.compute_s, self.tracked_s, self.untracked_s
        );
        for &c in &CATEGORIES {
            let s = self.cat_s.get(c).copied().unwrap_or(0.0);
            if s > 0.0 {
                let _ = writeln!(out, "  wait.{c:<10}: {s:.6} s");
            }
        }
        let _ = writeln!(
            out,
            "  attributed: {:.1}% of non-compute time, imbalance max/mean = {:.2}",
            self.attributed_fraction() * 100.0,
            self.imbalance()
        );
        if let Some((cat, s)) = self.top_category() {
            let _ = writeln!(out, "  top wait category: {cat} ({s:.6} s)");
        }
        if !self.top_objs.is_empty() {
            let _ = writeln!(out, "  top wait objects:");
            for (k, s) in self.top_objs.iter().take(5) {
                let _ = writeln!(out, "    {k:<24} {s:.6} s");
            }
        }
        if !self.top_ops.is_empty() {
            let _ = writeln!(out, "  top tracked ops:");
            for (k, s) in self.top_ops.iter().take(5) {
                let _ = writeln!(out, "    {k:<24} {s:.6} s");
            }
        }
        out
    }
}

/// Priority classes for the interval sweep (lower wins).
const PRIO_WAIT: u8 = 0;
const PRIO_COMPUTE: u8 = 1;
const PRIO_TRACKED: u8 = 2;

struct Iv {
    t0: f64,
    t1: f64,
    prio: u8,
    cat: &'static str,
}

/// How one span classifies, or `None` for instants and non-timeline kinds.
fn classify(e: &Event) -> Option<(u8, &'static str)> {
    if e.dur <= 0.0 {
        return None;
    }
    match &e.kind {
        EventKind::Wait { cat, .. } => Some((PRIO_WAIT, cat.name())),
        EventKind::MutexWait { .. } => Some((PRIO_WAIT, "lock")),
        EventKind::Compute => Some((PRIO_COMPUTE, "compute")),
        EventKind::Op { .. }
        | EventKind::GaOp { .. }
        | EventKind::Stage { .. }
        | EventKind::Pack { .. }
        | EventKind::Coll { .. }
        | EventKind::AgentDrain { .. } => Some((PRIO_TRACKED, "tracked")),
        _ => None,
    }
}

/// Sweep one rank's intervals, attributing each elementary segment of
/// `[lo, hi]` to the best covering class (or untracked).
fn sweep(ivs: &[Iv], lo: f64, hi: f64, out: &mut RankBreakdown) {
    // (time-bits, close?, interval index). Segments are emitted before any
    // point at their right edge is applied, so ordering within one
    // timestamp cannot change attribution.
    let mut pts: Vec<(u64, bool, usize)> = Vec::with_capacity(ivs.len() * 2 + 2);
    for (i, iv) in ivs.iter().enumerate() {
        pts.push((iv.t0.to_bits(), false, i));
        pts.push((iv.t1.to_bits(), true, i));
    }
    pts.push((lo.to_bits(), true, usize::MAX));
    pts.push((hi.to_bits(), true, usize::MAX));
    pts.sort();
    // Active set keyed for "min priority, then innermost (max t0), then
    // latest program order": all components inverted where needed so
    // `first()` is the winner. Timestamps are non-negative, so the IEEE
    // bit pattern orders like the float.
    let mut active: std::collections::BTreeSet<(u8, u64, u64, usize)> =
        std::collections::BTreeSet::new();
    let key = |i: usize| {
        let iv = &ivs[i];
        (iv.prio, u64::MAX - iv.t0.to_bits(), u64::MAX - i as u64, i)
    };
    let mut prev = lo;
    for &(tb, close, i) in &pts {
        let t = f64::from_bits(tb);
        if t > prev {
            let a = prev.max(lo);
            let b = t.min(hi);
            if b > a {
                let dt = b - a;
                match active.first() {
                    Some(&(prio, _, _, idx)) => {
                        let cat = ivs[idx].cat;
                        match prio {
                            PRIO_WAIT => *out.waits.entry(cat).or_insert(0.0) += dt,
                            PRIO_COMPUTE => out.compute_s += dt,
                            _ => out.tracked_s += dt,
                        }
                    }
                    None => out.untracked_s += dt,
                }
            }
            prev = t;
        }
        if i != usize::MAX {
            if close {
                active.remove(&key(i));
            } else {
                active.insert(key(i));
            }
        }
    }
}

/// Builds the attribution report from one run's merged event stream.
pub fn analyze(events: &[Event]) -> WaitReport {
    // Stable per-rank grouping: sink order is thread-exit order, so sort
    // by rank (stable) to recover (rank, program order).
    let mut refs: Vec<&Event> = events.iter().collect();
    refs.sort_by_key(|e| e.rank);

    let mut report = WaitReport::default();
    let mut objs: BTreeMap<(String, u64), f64> = BTreeMap::new();
    let mut ops: BTreeMap<String, f64> = BTreeMap::new();

    let mut i = 0usize;
    while i < refs.len() {
        let rank = refs[i].rank;
        let mut j = i;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut ivs: Vec<Iv> = Vec::new();
        while j < refs.len() && refs[j].rank == rank {
            let e = refs[j];
            lo = lo.min(e.ts);
            hi = hi.max(e.ts + e.dur);
            if let Some((prio, cat)) = classify(e) {
                ivs.push(Iv {
                    t0: e.ts,
                    t1: e.ts + e.dur,
                    prio,
                    cat,
                });
                match &e.kind {
                    EventKind::Wait { cat, obj, .. } => {
                        *objs.entry((cat.name().to_string(), *obj)).or_insert(0.0) += e.dur;
                    }
                    EventKind::MutexWait { win, .. } => {
                        *objs.entry(("lock".to_string(), *win)).or_insert(0.0) += e.dur;
                    }
                    EventKind::Op { name, .. } => {
                        *ops.entry(format!("armci:{name}")).or_insert(0.0) += e.dur;
                    }
                    EventKind::GaOp { name, .. } => {
                        *ops.entry(format!("ga:{name}")).or_insert(0.0) += e.dur;
                    }
                    EventKind::Coll { .. } => {
                        *ops.entry("coll".to_string()).or_insert(0.0) += e.dur;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let mut rb = RankBreakdown {
            rank,
            span_s: 0.0,
            waits: BTreeMap::new(),
            compute_s: 0.0,
            tracked_s: 0.0,
            untracked_s: 0.0,
        };
        if lo.is_finite() && hi > lo {
            rb.span_s = hi - lo;
            sweep(&ivs, lo, hi, &mut rb);
        }
        report.total_s += rb.span_s;
        report.compute_s += rb.compute_s;
        report.tracked_s += rb.tracked_s;
        report.untracked_s += rb.untracked_s;
        for (c, s) in &rb.waits {
            *report.cat_s.entry(c).or_insert(0.0) += s;
        }
        report.ranks.push(rb);
        i = j;
    }

    let mut top_objs: Vec<(String, f64)> = objs
        .into_iter()
        .map(|((cat, obj), s)| (format!("{cat}:{obj:#x}"), s))
        .collect();
    top_objs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    report.top_objs = top_objs;
    let mut top_ops: Vec<(String, f64)> = ops.into_iter().collect();
    top_ops.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    report.top_ops = top_ops;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaitCat;

    fn ev(rank: u32, t0: f64, t1: f64, kind: EventKind) -> Event {
        Event {
            rank,
            ts: t0,
            dur: t1 - t0,
            kind,
        }
    }

    #[test]
    fn priority_and_untracked() {
        // Rank 0: [0,4] op span, [1,2] compute inside it, [2,3] progress
        // wait inside it, [4,5] uncovered.
        let events = vec![
            ev(
                0,
                0.0,
                4.0,
                EventKind::Op {
                    name: "get",
                    gmr: 7,
                    bytes: 8,
                },
            ),
            ev(0, 1.0, 2.0, EventKind::Compute),
            ev(
                0,
                2.0,
                3.0,
                EventKind::Wait {
                    cat: WaitCat::Progress,
                    src: 1,
                    obj: 7,
                },
            ),
            Event {
                rank: 0,
                ts: 5.0,
                dur: 0.0,
                kind: EventKind::GmrFree { gmr: 7 },
            },
        ];
        let r = analyze(&events);
        assert_eq!(r.ranks.len(), 1);
        let rb = &r.ranks[0];
        assert!((rb.span_s - 5.0).abs() < 1e-12);
        assert!((rb.compute_s - 1.0).abs() < 1e-12);
        assert!((rb.waits["progress"] - 1.0).abs() < 1e-12);
        assert!((rb.tracked_s - 2.0).abs() < 1e-12);
        assert!((rb.untracked_s - 1.0).abs() < 1e-12);
        // Non-compute time = 4.0, attributed = 3.0.
        assert!((r.attributed_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(r.top_category(), Some(("progress", 1.0)));
    }

    #[test]
    fn innermost_wait_wins_overlap() {
        // CAS-retry span [0,3] with a congestion wait [1,2] nested inside:
        // the inner category owns its interval.
        let events = vec![
            ev(
                0,
                0.0,
                3.0,
                EventKind::Wait {
                    cat: WaitCat::CasRetry,
                    src: 1,
                    obj: 1,
                },
            ),
            ev(
                0,
                1.0,
                2.0,
                EventKind::Wait {
                    cat: WaitCat::Congestion,
                    src: 1,
                    obj: 1,
                },
            ),
        ];
        let r = analyze(&events);
        assert!((r.cat_s["cas_retry"] - 2.0).abs() < 1e-12);
        assert!((r.cat_s["congestion"] - 1.0).abs() < 1e-12);
        assert!((r.attributed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_max_over_mean() {
        let mk = |rank, t1| {
            ev(
                rank,
                0.0,
                t1,
                EventKind::Wait {
                    cat: WaitCat::Progress,
                    src: 0,
                    obj: 0,
                },
            )
        };
        let r = analyze(&[mk(0, 1.0), mk(1, 3.0)]);
        // Waits 1 s and 3 s: mean 2, max 3.
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
    }
}
