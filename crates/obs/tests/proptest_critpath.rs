//! Property tests for the wait-state attributor and critical-path walker
//! over **oracle traces**: synthetic multi-rank runs built with the exact
//! rendezvous arithmetic the simulator uses (per-round compute, latest
//! arrival published as `t_max`, everyone leaves at `t_max + cost`), so
//! the expected makespan, straggler identity and wait totals are known in
//! closed form. Durations are whole numbers, keeping every virtual-time
//! sum exactly representable — the oracle equalities below are bit-exact,
//! not approximate.

use obs::{critpath, waitstate, Event, EventKind, WaitCat};
use proptest::prelude::*;

/// One oracle run: `per_rank_compute[round][rank]` integer seconds of
/// compute before each collective round, and the per-round collective
/// cost. Returns the merged event stream plus the closed-form makespan.
fn oracle_trace(per_round: &[(Vec<u32>, u32)]) -> (Vec<Event>, f64) {
    let nranks = per_round[0].0.len();
    let mut clocks = vec![0.0f64; nranks];
    let mut events = Vec::new();
    for (seq, (computes, cost)) in per_round.iter().enumerate() {
        // Compute legs, then the rendezvous: straggler = argmax arrival,
        // ties to the lowest rank — the cell's exact rule.
        let mut arrivals = vec![0.0f64; nranks];
        for r in 0..nranks {
            let t0 = clocks[r];
            let t1 = t0 + f64::from(computes[r]);
            if computes[r] > 0 {
                events.push(Event {
                    rank: r as u32,
                    ts: t0,
                    dur: t1 - t0,
                    kind: EventKind::Compute,
                });
            }
            arrivals[r] = t1;
        }
        let mut straggler = 0usize;
        for (r, &t) in arrivals.iter().enumerate() {
            if t > arrivals[straggler] {
                straggler = r;
            }
        }
        let t_max = arrivals[straggler];
        let leave = t_max + f64::from(*cost);
        for (r, arrival) in arrivals.iter().copied().enumerate() {
            if t_max > arrival {
                events.push(Event {
                    rank: r as u32,
                    ts: arrival,
                    dur: t_max - arrival,
                    kind: EventKind::Wait {
                        cat: WaitCat::Progress,
                        src: straggler as u32,
                        obj: 0,
                    },
                });
            }
            events.push(Event {
                rank: r as u32,
                ts: arrival,
                dur: leave - arrival,
                kind: EventKind::Coll {
                    comm: 0,
                    seq: seq as u64,
                    src: straggler as u32,
                },
            });
            clocks[r] = leave;
        }
    }
    let makespan = clocks.iter().cloned().fold(0.0f64, f64::max);
    (events, makespan)
}

/// Strategy: 2–4 ranks, 1–5 rounds of (per-rank compute, coll cost).
fn arb_rounds() -> impl Strategy<Value = Vec<(Vec<u32>, u32)>> {
    (2usize..5).prop_flat_map(|nranks| {
        proptest::collection::vec(
            (proptest::collection::vec(0u32..200, nranks), 1u32..20),
            1..6,
        )
    })
}

/// Every span on one rank must nest or be disjoint with every other —
/// the recorder invariant the analyzers' interval logic leans on.
fn assert_well_nested(events: &[Event]) {
    let mut by_rank: std::collections::BTreeMap<u32, Vec<(f64, f64)>> = Default::default();
    for e in events {
        if e.dur > 0.0 {
            by_rank
                .entry(e.rank)
                .or_default()
                .push((e.ts, e.ts + e.dur));
        }
    }
    for (rank, spans) in by_rank {
        for (i, &(a0, a1)) in spans.iter().enumerate() {
            for &(b0, b1) in &spans[i + 1..] {
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    disjoint || nested,
                    "rank {rank}: spans [{a0},{a1}] and [{b0},{b1}] partially overlap"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Oracle traces are well-nested by construction (waits sit inside
    /// their collective spans), and the walker's path length telescopes
    /// back to the makespan **exactly** — whole-number virtual times
    /// make every subtraction and sum exact, so this is `==` on f64.
    #[test]
    fn critpath_length_equals_makespan(rounds in arb_rounds()) {
        let (events, makespan) = oracle_trace(&rounds);
        assert_well_nested(&events);
        let p = critpath::analyze(&events);
        prop_assert_eq!(p.makespan, makespan, "walk starts at the true makespan");
        prop_assert_eq!(p.length, p.makespan, "backward walk reaches virtual time zero");
        // The path never carries a progress wait: every wait is replaced
        // by the straggler's own activity via the (comm, seq) edge.
        prop_assert!(!p.class_s.contains_key("wait:progress"));
    }

    /// The attributor conserves time: per rank, compute + tracked +
    /// waits + untracked sums to the timeline exactly, and on oracle
    /// traces (no recorder gaps after time zero) nothing is untracked,
    /// so the attributed fraction is exactly 1.
    #[test]
    fn waitstate_conserves_timeline(rounds in arb_rounds()) {
        let (events, _) = oracle_trace(&rounds);
        let w = waitstate::analyze(&events);
        for rb in &w.ranks {
            let sum = rb.compute_s + rb.tracked_s + rb.untracked_s + rb.wait_s();
            prop_assert_eq!(sum, rb.span_s, "rank {} leaks time", rb.rank);
        }
        // A rank whose first event starts after 0 still has span_s
        // measured from its first event, so coverage is exact.
        prop_assert_eq!(w.untracked_s, 0.0);
        prop_assert_eq!(w.attributed_fraction(), 1.0);
        // Total progress wait is the closed-form straggler slack.
        let expect: f64 = {
            let nranks = rounds[0].0.len();
            let mut clocks = vec![0.0f64; nranks];
            let mut slack = 0.0;
            for (computes, cost) in &rounds {
                let arrivals: Vec<f64> = (0..nranks)
                    .map(|r| clocks[r] + f64::from(computes[r]))
                    .collect();
                let t_max = arrivals.iter().cloned().fold(0.0f64, f64::max);
                for a in &arrivals {
                    slack += t_max - a;
                }
                clocks.iter_mut().for_each(|c| *c = t_max + f64::from(*cost));
            }
            slack
        };
        prop_assert_eq!(
            w.cat_s.get("progress").copied().unwrap_or(0.0),
            expect,
            "progress seconds match the straggler slack"
        );
    }
}

/// Seeded misattribution: delete rank 1's wait events (a simulated
/// recorder gap) from an imbalanced two-rank trace and the analyzer must
/// surface the hole as untracked time — not silently absorb it into a
/// named category — dragging the attributed fraction below the 0.9 gate.
#[test]
fn seeded_recorder_gap_is_flagged_untracked() {
    // Rank 0 keeps 1 s compute legs so its timeline stays anchored even
    // after the seeded deletions carve holes into it.
    let rounds = vec![(vec![1u32, 100], 5u32), (vec![1, 100], 5)];
    let (full, _) = oracle_trace(&rounds);
    let intact = waitstate::analyze(&full);
    assert_eq!(intact.attributed_fraction(), 1.0);

    let holed: Vec<Event> = full
        .iter()
        .filter(|e| !(e.rank == 0 && matches!(e.kind, EventKind::Wait { .. })))
        .cloned()
        .collect();
    let w = waitstate::analyze(&holed);
    // Rank 0 waited 99 s per round; with the Wait spans gone that time
    // still sits inside the Coll span, so it degrades to *tracked*, and
    // deleting the Coll spans too must turn it untracked. Rank 0 then
    // keeps only its two 1 s compute legs on a [0, 106] timeline.
    let bare: Vec<Event> = holed
        .iter()
        .filter(|e| !(e.rank == 0 && matches!(e.kind, EventKind::Coll { .. })))
        .cloned()
        .collect();
    let wb = waitstate::analyze(&bare);
    assert_eq!(
        wb.untracked_s, 104.0,
        "the seeded hole surfaces as untracked"
    );
    assert!(
        wb.attributed_fraction() < 0.9,
        "gap must break the 0.9 gate, got {}",
        wb.attributed_fraction()
    );
    assert!(w.cat_s.get("progress").copied().unwrap_or(0.0) == 0.0);
}

/// Seeded bad causal edge: a collective that names a straggler with no
/// events must degrade to a local walk, never panic or lose coverage.
#[test]
fn seeded_bogus_straggler_degrades_gracefully() {
    let events = vec![
        Event {
            rank: 0,
            ts: 0.0,
            dur: 4.0,
            kind: EventKind::Compute,
        },
        Event {
            rank: 0,
            ts: 4.0,
            dur: 2.0,
            kind: EventKind::Coll {
                comm: 1,
                seq: 0,
                src: 7, // no rank 7 in this trace
            },
        },
    ];
    let p = critpath::analyze(&events);
    assert_eq!(p.makespan, 6.0);
    assert_eq!(p.length, 6.0, "degraded walk still covers the makespan");
    assert_eq!(p.rank_switches, 0);
}
