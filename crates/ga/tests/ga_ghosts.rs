//! Ghost-cell tests on both backends.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn on_both(n: usize, f: impl Fn(&Proc, &dyn Armci) + Send + Sync) {
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciMpi::new(p)));
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciNative::new(p)));
}

fn init(a: &GlobalArray<'_, dyn Armci + '_>, dims: &[usize]) {
    let (lo, hi) = a.my_block();
    if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
        let mut d = Vec::new();
        let mut idx = lo.clone();
        let total: usize = lo.iter().zip(&hi).map(|(&l, &h)| h - l).product();
        for _ in 0..total {
            let mut v = 0usize;
            for (x, n) in idx.iter().zip(dims) {
                v = v * n + x;
            }
            d.push(v as f64);
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] < hi[k] {
                    break;
                }
                idx[k] = lo[k];
            }
        }
        a.put_patch(&lo, &hi, &d).unwrap();
    }
    a.sync();
}

#[test]
fn ghost_margin_matches_direct_reads_2d() {
    on_both(4, |_, rt| {
        let dims = [10usize, 8];
        let a = GlobalArray::create(rt, "gh", GaType::F64, &dims).unwrap();
        init(&a, &dims);
        let g = a.fetch_ghosted(&[1, 1], false).unwrap();
        let (lo, hi) = a.my_block();
        // every in-array position within the halo equals the element value
        for i in lo[0].saturating_sub(1)..(hi[0] + 1).min(dims[0]) {
            for j in lo[1].saturating_sub(1)..(hi[1] + 1).min(dims[1]) {
                assert_eq!(g.at(&[i, j]), (i * dims[1] + j) as f64, "({i},{j})");
            }
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn periodic_ghosts_wrap_around() {
    on_both(3, |_, rt| {
        let dims = [9usize];
        let a = GlobalArray::create(rt, "per", GaType::F64, &dims).unwrap();
        init(&a, &dims);
        let g = a.fetch_ghosted(&[2], true).unwrap();
        let (lo, hi) = a.my_block();
        // the left margin holds wrapped values
        for k in 1..=2usize {
            let gidx = (lo[0] + dims[0] - k) % dims[0];
            assert_eq!(
                g.rel(&[lo[0]], &[-(k as isize)]),
                gidx as f64,
                "left margin {k}"
            );
            let gidx = (hi[0] - 1 + k) % dims[0];
            assert_eq!(
                g.rel(&[hi[0] - 1], &[k as isize]),
                gidx as f64,
                "right margin {k}"
            );
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn nonperiodic_outside_cells_are_zero() {
    on_both(2, |_, rt| {
        let dims = [6usize];
        let a = GlobalArray::create(rt, "np", GaType::F64, &dims).unwrap();
        a.fill(5.0).unwrap();
        let g = a.fetch_ghosted(&[2], false).unwrap();
        let (lo, hi) = a.my_block();
        if lo[0] == 0 {
            assert_eq!(g.rel(&[0], &[-1]), 0.0);
            assert_eq!(g.rel(&[0], &[-2]), 0.0);
        }
        if hi[0] == dims[0] {
            assert_eq!(g.rel(&[dims[0] - 1], &[1]), 0.0);
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn interior_roundtrip_via_put_interior() {
    on_both(4, |_, rt| {
        let dims = [7usize, 7];
        let a = GlobalArray::create(rt, "ir", GaType::F64, &dims).unwrap();
        init(&a, &dims);
        let mut g = a.fetch_ghosted(&[1, 1], false).unwrap();
        // double the interior locally and write back
        let interior = g.interior();
        let (lo, hi) = a.my_block();
        let idims = [hi[0] - lo[0], hi[1] - lo[1]];
        for (k, v) in interior.iter().enumerate() {
            let (i, j) = (k / idims[1], k % idims[1]);
            let off = (i + 1) * g.dims[1] + (j + 1);
            g.data[off] = v * 2.0;
        }
        a.put_interior(&g).unwrap();
        a.sync();
        let full = a.get_patch(&[0, 0], &dims).unwrap();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                assert_eq!(full[i * dims[1] + j], 2.0 * (i * dims[1] + j) as f64);
            }
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn ghost_stencil_matches_manual_halo() {
    // A 5-point Laplacian computed via ghost blocks equals one computed
    // from the full array.
    on_both(6, |_, rt| {
        let dims = [12usize, 12];
        let a = GlobalArray::create(rt, "st", GaType::F64, &dims).unwrap();
        init(&a, &dims);
        let full = a.get_patch(&[0, 0], &dims).unwrap();
        let g = a.fetch_ghosted(&[1, 1], true).unwrap();
        let (lo, hi) = a.my_block();
        for i in lo[0]..hi[0] {
            for j in lo[1]..hi[1] {
                let lap = g.rel(&[i, j], &[-1, 0])
                    + g.rel(&[i, j], &[1, 0])
                    + g.rel(&[i, j], &[0, -1])
                    + g.rel(&[i, j], &[0, 1])
                    - 4.0 * g.at(&[i, j]);
                let wrap = |x: isize, n: usize| -> usize { x.rem_euclid(n as isize) as usize };
                let ref_lap = full[wrap(i as isize - 1, dims[0]) * dims[1] + j]
                    + full[wrap(i as isize + 1, dims[0]) * dims[1] + j]
                    + full[i * dims[1] + wrap(j as isize - 1, dims[1])]
                    + full[i * dims[1] + wrap(j as isize + 1, dims[1])]
                    - 4.0 * full[i * dims[1] + j];
                assert_eq!(lap, ref_lap, "({i},{j})");
            }
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn bad_ghost_requests_rejected() {
    on_both(2, |_, rt| {
        let a = GlobalArray::create(rt, "bad", GaType::F64, &[4, 4]).unwrap();
        assert!(a.fetch_ghosted(&[1], false).is_err()); // wrong rank
        assert!(a.fetch_ghosted(&[4, 1], false).is_err()); // width ≥ dim
        let c = GlobalArray::create(rt, "i64", GaType::I64, &[4]).unwrap();
        assert!(c.fetch_ghosted(&[1], false).is_err()); // wrong type
        a.sync();
        a.destroy().unwrap();
        c.destroy().unwrap();
    });
}
