//! Gather/scatter tests on both backends.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn on_both(n: usize, f: impl Fn(&Proc, &dyn Armci) + Send + Sync) {
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciMpi::new(p)));
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciNative::new(p)));
}

#[test]
fn gather_reads_scattered_elements() {
    on_both(4, |p, rt| {
        let a = GlobalArray::create(rt, "g", GaType::F64, &[9, 9]).unwrap();
        // initialise a[i][j] = 100 i + j via owner blocks
        let (lo, hi) = a.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let mut d = Vec::new();
            for i in lo[0]..hi[0] {
                for j in lo[1]..hi[1] {
                    d.push((100 * i + j) as f64);
                }
            }
            a.put_patch(&lo, &hi, &d).unwrap();
        }
        a.sync();
        if p.rank() == 0 {
            let subs = vec![
                vec![0, 0],
                vec![8, 8],
                vec![3, 7],
                vec![7, 3],
                vec![4, 4],
                vec![0, 8],
            ];
            let vals = a.gather(&subs).unwrap();
            let expect: Vec<f64> = subs.iter().map(|s| (100 * s[0] + s[1]) as f64).collect();
            assert_eq!(vals, expect);
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn scatter_then_gather_roundtrip() {
    on_both(5, |p, rt| {
        let a = GlobalArray::create(rt, "s", GaType::F64, &[20]).unwrap();
        a.zero().unwrap();
        if p.rank() == 1 {
            let subs: Vec<Vec<usize>> = [19usize, 0, 7, 13, 3].iter().map(|&i| vec![i]).collect();
            let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
            a.scatter(&subs, &vals).unwrap();
            assert_eq!(a.gather(&subs).unwrap(), vals.to_vec());
        }
        a.sync();
        // untouched elements remain zero
        let full = a.get_patch(&[0], &[20]).unwrap();
        assert_eq!(full.iter().filter(|&&x| x == 0.0).count(), 15);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn scatter_acc_accumulates_with_duplicates() {
    let n = 4;
    on_both(n, move |_, rt| {
        let a = GlobalArray::create(rt, "sa", GaType::F64, &[10]).unwrap();
        a.zero().unwrap();
        // everyone hits the same elements, with a duplicate subscript
        let subs: Vec<Vec<usize>> = vec![vec![2], vec![5], vec![2]];
        let vals = [1.0, 10.0, 2.0];
        a.scatter_acc(&subs, &vals, 2.0).unwrap();
        a.sync();
        let full = a.get_patch(&[0], &[10]).unwrap();
        let nf = rt.nprocs() as f64;
        assert_eq!(full[2], nf * 2.0 * 3.0); // (1 + 2) · 2 per rank
        assert_eq!(full[5], nf * 20.0);
        assert_eq!(full[0], 0.0);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn scatter_rejects_duplicates_and_bad_subscripts() {
    on_both(2, |p, rt| {
        let a = GlobalArray::create(rt, "bad", GaType::F64, &[4, 4]).unwrap();
        if p.rank() == 0 {
            // duplicate
            let dup = vec![vec![1, 1], vec![1, 1]];
            assert!(a.scatter(&dup, &[1.0, 2.0]).is_err());
            // out of bounds
            assert!(a.gather(&[vec![4, 0]]).is_err());
            // wrong rank
            assert!(a.gather(&[vec![1]]).is_err());
            // length mismatch
            assert!(a.scatter(&[vec![0, 0]], &[1.0, 2.0]).is_err());
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn random_gather_matches_patch_read() {
    on_both(6, |p, rt| {
        let dims = [11usize, 7];
        let a = GlobalArray::create(rt, "r", GaType::F64, &dims).unwrap();
        let (lo, hi) = a.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let mut d = Vec::new();
            for i in lo[0]..hi[0] {
                for j in lo[1]..hi[1] {
                    d.push((i * 31 + j * 7) as f64 / 4.0);
                }
            }
            a.put_patch(&lo, &hi, &d).unwrap();
        }
        a.sync();
        let mut rng = StdRng::seed_from_u64(99 + p.rank() as u64);
        let subs: Vec<Vec<usize>> = (0..40)
            .map(|_| vec![rng.gen_range(0..dims[0]), rng.gen_range(0..dims[1])])
            .collect();
        let gathered = a.gather(&subs).unwrap();
        let full = a.get_patch(&[0, 0], &dims).unwrap();
        for (s, v) in subs.iter().zip(&gathered) {
            assert_eq!(*v, full[s[0] * dims[1] + s[1]], "at {s:?}");
        }
        a.sync();
        a.destroy().unwrap();
    });
}
