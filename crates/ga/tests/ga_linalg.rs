//! Tests for the high-level GA mathematics routines on both backends.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn on_both(n: usize, f: impl Fn(&Proc, &dyn Armci) + Send + Sync) {
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciMpi::new(p)));
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciNative::new(p)));
}

/// Fills a 2-D array with `f(i, j)` collectively.
fn fill2d(a: &GlobalArray<'_, dyn Armci + '_>, f: impl Fn(usize, usize) -> f64) {
    let (lo, hi) = a.my_block();
    if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
        let mut d = Vec::new();
        for i in lo[0]..hi[0] {
            for j in lo[1]..hi[1] {
                d.push(f(i, j));
            }
        }
        a.put_patch(&lo, &hi, &d).unwrap();
    }
    a.sync();
}

#[test]
fn dgemm_matches_reference() {
    on_both(4, |_, rt| {
        let (m, k, n) = (7usize, 5, 6);
        let a = GlobalArray::create(rt, "A", GaType::F64, &[m, k]).unwrap();
        let b = GlobalArray::create(rt, "B", GaType::F64, &[k, n]).unwrap();
        let c = GlobalArray::create(rt, "C", GaType::F64, &[m, n]).unwrap();
        fill2d(&a, |i, j| (i + 2 * j) as f64);
        fill2d(&b, |i, j| (3 * i) as f64 - j as f64);
        c.fill(1.0).unwrap();
        c.dgemm(2.0, &a, &b, 0.5).unwrap();
        // reference
        let got = c.get_patch(&[0, 0], &[m, n]).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += ((i + 2 * kk) as f64) * ((3 * kk) as f64 - j as f64);
                }
                let expect = 2.0 * acc + 0.5;
                assert_eq!(got[i * n + j], expect, "({i},{j})");
            }
        }
        c.sync();
        a.destroy().unwrap();
        b.destroy().unwrap();
        c.destroy().unwrap();
    });
}

#[test]
fn dgemm_shape_and_type_checks() {
    on_both(2, |_, rt| {
        let a = GlobalArray::create(rt, "A", GaType::F64, &[4, 3]).unwrap();
        let b = GlobalArray::create(rt, "B", GaType::F64, &[4, 4]).unwrap(); // bad k
        let c = GlobalArray::create(rt, "C", GaType::F64, &[4, 4]).unwrap();
        assert!(c.dgemm(1.0, &a, &b, 0.0).is_err());
        c.sync();
        a.destroy().unwrap();
        b.destroy().unwrap();
        c.destroy().unwrap();
    });
}

#[test]
fn transpose_roundtrip() {
    on_both(6, |_, rt| {
        let a = GlobalArray::create(rt, "A", GaType::F64, &[9, 5]).unwrap();
        let at = GlobalArray::create(rt, "At", GaType::F64, &[5, 9]).unwrap();
        let back = GlobalArray::create(rt, "Back", GaType::F64, &[9, 5]).unwrap();
        fill2d(&a, |i, j| (10 * i + j) as f64);
        at.transpose_from(&a).unwrap();
        let t = at.get_patch(&[0, 0], &[5, 9]).unwrap();
        for i in 0..5 {
            for j in 0..9 {
                assert_eq!(t[i * 9 + j], (10 * j + i) as f64);
            }
        }
        back.transpose_from(&at).unwrap();
        assert_eq!(
            back.get_patch(&[0, 0], &[9, 5]).unwrap(),
            a.get_patch(&[0, 0], &[9, 5]).unwrap()
        );
        a.sync();
        a.destroy().unwrap();
        at.destroy().unwrap();
        back.destroy().unwrap();
    });
}

#[test]
fn duplicate_copies_both_types() {
    on_both(3, |_, rt| {
        let a = GlobalArray::create(rt, "A", GaType::F64, &[8, 4]).unwrap();
        fill2d(&a, |i, j| (i * j) as f64 + 0.25);
        let d = a.duplicate("A'").unwrap();
        assert_eq!(
            d.get_patch(&[0, 0], &[8, 4]).unwrap(),
            a.get_patch(&[0, 0], &[8, 4]).unwrap()
        );
        // mutating the duplicate leaves the original alone
        d.fill(0.0).unwrap();
        assert_eq!(a.get_patch(&[1, 1], &[2, 2]).unwrap(), vec![1.25]);

        let c = GlobalArray::create(rt, "Cnt", GaType::I64, &[6]).unwrap();
        c.put_patch_i64(&[0], &[6], &[5, 4, 3, 2, 1, 0]).unwrap();
        c.sync();
        let c2 = c.duplicate("Cnt'").unwrap();
        assert_eq!(
            c2.get_patch_i64(&[0], &[6]).unwrap(),
            vec![5, 4, 3, 2, 1, 0]
        );

        a.sync();
        a.destroy().unwrap();
        d.destroy().unwrap();
        c.destroy().unwrap();
        c2.destroy().unwrap();
    });
}

#[test]
fn map_inplace_applies_everywhere() {
    on_both(4, |_, rt| {
        let a = GlobalArray::create(rt, "A", GaType::F64, &[7, 7]).unwrap();
        a.fill(2.0).unwrap();
        a.map_inplace(&mut |x| x * x + 1.0).unwrap();
        let v = a.get_patch(&[0, 0], &[7, 7]).unwrap();
        assert!(v.iter().all(|&x| x == 5.0));
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn dgemm_backends_agree() {
    let run = |mpi: bool| -> Vec<f64> {
        Runtime::run_with(4, quiet(), move |p| {
            let rt: Box<dyn Armci> = if mpi {
                Box::new(ArmciMpi::new(p))
            } else {
                Box::new(ArmciNative::new(p))
            };
            let rt = rt.as_ref();
            let a = GlobalArray::create(rt, "A", GaType::F64, &[6, 6]).unwrap();
            let b = GlobalArray::create(rt, "B", GaType::F64, &[6, 6]).unwrap();
            let c = GlobalArray::create(rt, "C", GaType::F64, &[6, 6]).unwrap();
            fill2d(&a, |i, j| ((i * 7 + j * 3) % 5) as f64 / 4.0);
            fill2d(&b, |i, j| ((i + j) % 3) as f64 / 2.0);
            c.zero().unwrap();
            c.dgemm(1.0, &a, &b, 0.0).unwrap();
            let out = c.get_patch(&[0, 0], &[6, 6]).unwrap();
            c.sync();
            a.destroy().unwrap();
            b.destroy().unwrap();
            c.destroy().unwrap();
            out
        })
        .swap_remove(0)
    };
    assert_eq!(run(true), run(false));
}
