//! Global-operation (GA_Dgop / GA_Igop / GA_Brdcst) tests.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::gop::{brdcst, dgop, igop, GopOp};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn on_both(n: usize, f: impl Fn(&Proc, &dyn Armci) + Send + Sync) {
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciMpi::new(p)));
    Runtime::run_with(n, quiet(), |p| f(p, &ArmciNative::new(p)));
}

#[test]
fn dgop_sum_min_max_absmax() {
    on_both(4, |p, rt| {
        let g = rt.world_group();
        let r = p.rank() as f64;
        let mut v = [r, -r, 1.0];
        dgop(&g, &mut v, GopOp::Sum);
        assert_eq!(v, [6.0, -6.0, 4.0]);

        let mut v = [r];
        dgop(&g, &mut v, GopOp::Min);
        assert_eq!(v, [0.0]);
        let mut v = [r];
        dgop(&g, &mut v, GopOp::Max);
        assert_eq!(v, [3.0]);
        let mut v = [-r];
        dgop(&g, &mut v, GopOp::AbsMax);
        assert_eq!(v, [3.0]);
    });
}

#[test]
fn igop_on_subgroup() {
    on_both(6, |p, rt| {
        let g = rt.world_group();
        let sub = g.split((p.rank() % 2) as i64, p.rank() as i64).unwrap();
        let mut v = [p.rank() as i64, 1];
        igop(&sub, &mut v, GopOp::Sum);
        let expect = if p.rank() % 2 == 0 { 6 } else { 9 };
        assert_eq!(v, [expect, 3]);
    });
}

#[test]
fn brdcst_from_each_root() {
    on_both(3, |p, rt| {
        let g = rt.world_group();
        for root in 0..3 {
            let mut buf = if p.rank() == root {
                vec![root as u8; 5]
            } else {
                Vec::new()
            };
            brdcst(&g, &mut buf, root);
            assert_eq!(buf, vec![root as u8; 5]);
        }
    });
}

#[test]
fn nwchem_style_convergence_check() {
    // the idiom: local residual norm → absmax over the group → compare
    on_both(5, |p, rt| {
        let g = rt.world_group();
        let local_residual = (p.rank() as f64 - 2.0) / 10.0;
        let mut nrm = [local_residual];
        dgop(&g, &mut nrm, GopOp::AbsMax);
        assert_eq!(nrm[0], 0.2);
        let converged = nrm[0] < 1e-6;
        assert!(!converged);
    });
}
