//! Global Arrays integration tests on both ARMCI backends.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::{Distribution, GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

/// Runs `f` on both backends.
fn on_both(n: usize, f: impl Fn(&Proc, &dyn Armci) + Send + Sync) {
    Runtime::run_with(n, quiet(), |p| {
        let rt = ArmciMpi::new(p);
        f(p, &rt);
    });
    Runtime::run_with(n, quiet(), |p| {
        let rt = ArmciNative::new(p);
        f(p, &rt);
    });
}

#[test]
fn create_query_destroy() {
    on_both(4, |_, rt| {
        let a = GlobalArray::create(rt, "a", GaType::F64, &[40, 30]).unwrap();
        assert_eq!(a.dims(), &[40, 30]);
        assert_eq!(a.name(), "a");
        // blocks partition the array
        let total: usize = (0..4).map(|c| a.distribution().cell_len(c)).sum();
        assert_eq!(total, 1200);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn put_get_patch_spanning_owners() {
    on_both(4, |p, rt| {
        let a = GlobalArray::create(rt, "a", GaType::F64, &[16, 16]).unwrap();
        a.zero().unwrap();
        if p.rank() == 0 {
            // patch crossing all four blocks
            let lo = [3, 3];
            let hi = [13, 13];
            let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
            a.put_patch(&lo, &hi, &data).unwrap();
        }
        a.sync();
        // every rank reads the same patch and the full array
        let patch = a.get_patch(&[3, 3], &[13, 13]).unwrap();
        for (i, v) in patch.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        let full = a.get_patch(&[0, 0], &[16, 16]).unwrap();
        // untouched border stays zero
        assert_eq!(full[0], 0.0);
        assert_eq!(full[2 * 16 + 2], 0.0);
        // interior matches
        assert_eq!(full[3 * 16 + 3], 0.0 /* patch[0] */);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn patch_roundtrip_matches_reference_mirror() {
    // Write random patches, mirror them in a local reference array, and
    // verify full-array equality at the end.
    on_both(6, |p, rt| {
        let dims = [23usize, 17];
        let a = GlobalArray::create(rt, "m", GaType::F64, &dims).unwrap();
        a.zero().unwrap();
        let mut reference = vec![0.0f64; dims[0] * dims[1]];
        let mut rng = StdRng::seed_from_u64(7);
        // all ranks compute the same patch schedule; rank k applies patch
        // i when i % nprocs == k, so the mirror stays exact
        for i in 0..30 {
            let l0 = rng.gen_range(0..dims[0] - 1);
            let h0 = rng.gen_range(l0 + 1..=dims[0]);
            let l1 = rng.gen_range(0..dims[1] - 1);
            let h1 = rng.gen_range(l1 + 1..=dims[1]);
            let val = i as f64 + 1.0;
            let len = (h0 - l0) * (h1 - l1);
            let data = vec![val; len];
            if i % rt.nprocs() == rt.rank() {
                a.put_patch(&[l0, l1], &[h0, h1], &data).unwrap();
            }
            for r in l0..h0 {
                for c in l1..h1 {
                    reference[r * dims[1] + c] = val;
                }
            }
            a.sync();
        }
        let full = a.get_patch(&[0, 0], &dims).unwrap();
        assert_eq!(full, reference);
        a.sync();
        a.destroy().unwrap();
        let _ = p;
    });
}

#[test]
fn accumulate_patch_is_atomic_across_ranks() {
    on_both(5, |_, rt| {
        let a = GlobalArray::create(rt, "acc", GaType::F64, &[12, 12]).unwrap();
        a.zero().unwrap();
        // everyone accumulates 1.0 into the same overlapping patch
        let data = vec![1.0; 8 * 8];
        for _ in 0..4 {
            a.acc_patch(2.0, &[2, 2], &[10, 10], &data).unwrap();
        }
        a.sync();
        let patch = a.get_patch(&[2, 2], &[10, 10]).unwrap();
        let expect = 2.0 * 4.0 * rt.nprocs() as f64;
        assert!(patch.iter().all(|&v| v == expect), "got {:?}", &patch[..4]);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn i64_arrays_and_read_inc() {
    on_both(4, |_, rt| {
        let c = GlobalArray::create(rt, "counter", GaType::I64, &[8]).unwrap();
        c.put_patch_i64(&[0], &[8], &[0; 8]).unwrap();
        c.sync();
        // NXTVAL: everyone pulls 25 tickets from element 3
        let mut mine = Vec::new();
        for _ in 0..25 {
            mine.push(c.read_inc(&[3], 1).unwrap());
        }
        c.sync();
        let total = c.get_patch_i64(&[3], &[4]).unwrap()[0];
        assert_eq!(total, 4 * 25);
        // tickets are within range and locally increasing
        assert!(mine.windows(2).all(|w| w[0] < w[1]));
        assert!(mine.iter().all(|&t| t < 100));
        c.sync();
        c.destroy().unwrap();
    });
}

#[test]
fn i64_accumulate() {
    on_both(3, |p, rt| {
        let c = GlobalArray::create(rt, "iacc", GaType::I64, &[6]).unwrap();
        c.put_patch_i64(&[0], &[6], &[10; 6]).unwrap();
        c.sync();
        if p.rank() == 0 {
            c.acc_patch_i64(3, &[1], &[4], &[2, 2, 2]).unwrap();
        }
        c.sync();
        let v = c.get_patch_i64(&[0], &[6]).unwrap();
        assert_eq!(v, vec![10, 16, 16, 16, 10, 10]);
        c.sync();
        c.destroy().unwrap();
    });
}

#[test]
fn math_fill_scale_dot_add() {
    on_both(4, |_, rt| {
        let a = GlobalArray::create(rt, "a", GaType::F64, &[10, 10]).unwrap();
        let b = GlobalArray::create(rt, "b", GaType::F64, &[10, 10]).unwrap();
        let c = GlobalArray::create(rt, "c", GaType::F64, &[10, 10]).unwrap();
        a.fill(2.0).unwrap();
        b.fill(3.0).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 600.0);
        a.scale(2.0).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 1200.0);
        c.add_from(1.0, &a, -1.0, &b).unwrap(); // c = 4 - 3 = 1
        assert_eq!(c.dot(&c).unwrap(), 100.0);
        assert_eq!(c.norm_inf().unwrap(), 1.0);
        c.copy_from(&b).unwrap();
        assert_eq!(c.dot(&c).unwrap(), 900.0);
        a.sync();
        a.destroy().unwrap();
        b.destroy().unwrap();
        c.destroy().unwrap();
    });
}

#[test]
fn access_local_mut_and_locality() {
    on_both(4, |_, rt| {
        let a = GlobalArray::create(rt, "loc", GaType::F64, &[8, 8]).unwrap();
        a.zero().unwrap();
        // each rank stamps its own block with its rank+1
        let me = a.group().rank() as f64 + 1.0;
        a.access_local_mut(&mut |b| b.fill(me)).unwrap();
        a.sync();
        // verify via remote reads that each block has its owner's stamp
        let full = a.get_patch(&[0, 0], &[8, 8]).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let owner = a.locate(&[i, j]);
                assert_eq!(full[i * 8 + j], owner as f64 + 1.0, "({i},{j})");
            }
        }
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn irregular_distribution_arrays() {
    on_both(3, |_, rt| {
        let dist = Distribution::irregular(&[12], vec![vec![0, 2, 3, 12]]);
        let g = rt.world_group();
        let a = GlobalArray::create_with_dist(rt, "irr", GaType::F64, dist, g).unwrap();
        a.zero().unwrap();
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        if rt.rank() == 0 {
            a.put_patch(&[0], &[12], &data).unwrap();
        }
        a.sync();
        assert_eq!(a.get_patch(&[0], &[12]).unwrap(), data);
        // ownership respects the irregular boundaries
        assert_eq!(a.locate(&[0]), 0);
        assert_eq!(a.locate(&[2]), 1);
        assert_eq!(a.locate(&[5]), 2);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn three_dimensional_array() {
    on_both(4, |p, rt| {
        let a = GlobalArray::create(rt, "t3", GaType::F64, &[6, 5, 4]).unwrap();
        a.zero().unwrap();
        if p.rank() == 1 {
            let lo = [1, 1, 1];
            let hi = [5, 4, 3];
            let len = 4 * 3 * 2;
            let data: Vec<f64> = (0..len).map(|i| (i * i) as f64).collect();
            a.put_patch(&lo, &hi, &data).unwrap();
        }
        a.sync();
        let got = a.get_patch(&[1, 1, 1], &[5, 4, 3]).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (i * i) as f64);
        }
        // single-element patch
        let one = a.get_patch(&[1, 1, 1], &[2, 2, 2]).unwrap();
        assert_eq!(one, vec![0.0]);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn group_scoped_arrays() {
    on_both(6, |p, rt| {
        let world = rt.world_group();
        let sub = world.split((p.rank() % 2) as i64, p.rank() as i64).unwrap();
        let a = GlobalArray::create_on(rt, "sub", GaType::F64, &[9, 9], sub.clone()).unwrap();
        a.fill(p.rank() as f64 % 2.0).unwrap();
        let v = a.get_patch(&[4, 4], &[5, 5]).unwrap();
        assert_eq!(v[0], (p.rank() % 2) as f64);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn bad_patches_rejected() {
    on_both(2, |_, rt| {
        let a = GlobalArray::create(rt, "bad", GaType::F64, &[4, 4]).unwrap();
        // inverted bounds
        assert!(a.get_patch(&[2, 2], &[2, 3]).is_err());
        // beyond dims
        assert!(a.get_patch(&[0, 0], &[5, 4]).is_err());
        // wrong rank
        assert!(a.get_patch(&[0], &[4]).is_err());
        // wrong buffer size
        assert!(a.put_patch(&[0, 0], &[2, 2], &[0.0; 3]).is_err());
        // type mismatch
        assert!(a.get_patch_i64(&[0, 0], &[1, 1]).is_err());
        assert!(a.read_inc(&[0, 0], 1).is_err());
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn more_ranks_than_rows() {
    on_both(6, |p, rt| {
        // 4-row array over 6 processes: some blocks are empty
        let a = GlobalArray::create(rt, "thin", GaType::F64, &[4]).unwrap();
        a.zero().unwrap();
        if p.rank() == 0 {
            a.put_patch(&[0], &[4], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        }
        a.sync();
        assert_eq!(a.get_patch(&[0], &[4]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.dot(&a).unwrap(), 30.0);
        a.sync();
        a.destroy().unwrap();
    });
}
