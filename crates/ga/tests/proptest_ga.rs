//! Property tests: GA patch semantics against a sequential reference
//! array, with random shapes, distributions, and operation schedules.

use armci::Armci;
use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use ga::{GaType, GlobalArray};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[derive(Debug, Clone)]
struct PatchOp {
    kind: u8, // 0 = put, 1 = acc
    lo: Vec<usize>,
    hi: Vec<usize>,
    value: i32,
    scale: i32,
}

/// Strategy: 1–3-D array dims plus a schedule of patch operations.
fn arb_case() -> impl Strategy<Value = (Vec<usize>, Vec<PatchOp>)> {
    (1usize..4)
        .prop_flat_map(|rank| proptest::collection::vec(2usize..7, rank))
        .prop_flat_map(|dims| {
            let ops = {
                let dims = dims.clone();
                proptest::collection::vec(
                    (
                        0u8..2,
                        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), dims.len()),
                        -4i32..5,
                        1i32..4,
                    )
                        .prop_map(move |(kind, fracs, value, scale)| {
                            let mut lo = Vec::new();
                            let mut hi = Vec::new();
                            for (d, &(a, b)) in fracs.iter().enumerate() {
                                let n = dims[d];
                                let x = (a * n as f64) as usize;
                                let mut y = (b * n as f64) as usize + 1;
                                let x = x.min(n - 1);
                                if y <= x {
                                    y = x + 1;
                                }
                                lo.push(x);
                                hi.push(y.min(n));
                            }
                            PatchOp {
                                kind,
                                lo,
                                hi,
                                value,
                                scale,
                            }
                        }),
                    1..12,
                )
            };
            (Just(dims), ops)
        })
}

/// Applies the schedule through GA (ranks take turns issuing ops, with a
/// sync after each — a deterministic schedule) and to a local reference;
/// returns (ga image, reference image).
fn run_case(mpi: bool, nprocs: usize, dims: Vec<usize>, ops: Vec<PatchOp>) -> (Vec<f64>, Vec<f64>) {
    let total: usize = dims.iter().product();
    let mut reference = vec![0.0f64; total];
    // reference application
    for op in &ops {
        // iterate the patch in row-major order
        let mut idx = op.lo.clone();
        loop {
            let mut off = 0;
            for d in 0..dims.len() {
                off = off * dims[d] + idx[d];
            }
            match op.kind {
                0 => reference[off] = op.value as f64,
                _ => reference[off] += (op.scale * op.value) as f64,
            }
            let mut d = dims.len();
            'adv: loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < op.hi[d] {
                    break 'adv;
                }
                idx[d] = op.lo[d];
            }
            if idx == op.lo {
                break;
            }
        }
    }
    let dims2 = dims.clone();
    let image = Runtime::run_with(nprocs, quiet(), move |p| {
        let rt: Box<dyn Armci> = if mpi {
            Box::new(ArmciMpi::new(p))
        } else {
            Box::new(ArmciNative::new(p))
        };
        let rt = rt.as_ref();
        let a = GlobalArray::create(rt, "prop", GaType::F64, &dims2).unwrap();
        a.zero().unwrap();
        for (i, op) in ops.iter().enumerate() {
            if i % rt.nprocs() == rt.rank() {
                let len: usize = op.lo.iter().zip(&op.hi).map(|(&l, &h)| h - l).product();
                match op.kind {
                    0 => a
                        .put_patch(&op.lo, &op.hi, &vec![op.value as f64; len])
                        .unwrap(),
                    _ => a
                        .acc_patch(op.scale as f64, &op.lo, &op.hi, &vec![op.value as f64; len])
                        .unwrap(),
                }
            }
            a.sync();
        }
        let lo = vec![0usize; dims2.len()];
        let full = a.get_patch(&lo, &dims2).unwrap();
        a.sync();
        a.destroy().unwrap();
        full
    })
    .swap_remove(0);
    (image, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GA over ARMCI-MPI matches the sequential reference for any shape
    /// and schedule.
    #[test]
    fn ga_matches_reference_on_mpi((dims, ops) in arb_case(), nprocs in 1usize..6) {
        let (img, reference) = run_case(true, nprocs, dims, ops);
        prop_assert_eq!(img, reference);
    }

    /// And so does GA over ARMCI-Native.
    #[test]
    fn ga_matches_reference_on_native((dims, ops) in arb_case(), nprocs in 1usize..6) {
        let (img, reference) = run_case(false, nprocs, dims, ops);
        prop_assert_eq!(img, reference);
    }
}
