//! Element-wise gather/scatter (`NGA_Gather`, `NGA_Scatter`,
//! `NGA_Scatter_acc`).
//!
//! Unlike patch operations, these access an arbitrary *list* of elements.
//! The GA layer groups the subscripts by owner and issues one generalized
//! I/O vector operation per owner — exactly the traffic the ARMCI IOV
//! methods (§VI-A) and the auto method's conflict scan (§VI-B) exist for:
//! NWChem's sparse index lists are where the "tens to hundreds of
//! thousands of segments" come from.

use crate::array::{GaType, GlobalArray};
use crate::GaResult;
use armci::{AccKind, Armci, ArmciError, IovDesc};
use std::collections::HashMap;

impl<A: Armci + ?Sized> GlobalArray<'_, A> {
    #[allow(clippy::needless_range_loop)] // indexes parallel arrays
    fn check_subscripts(&self, subs: &[Vec<usize>]) -> GaResult<()> {
        let n = self.dims().len();
        for (i, s) in subs.iter().enumerate() {
            if s.len() != n {
                return Err(ArmciError::BadDescriptor(format!(
                    "subscript {i} has rank {} (array rank {n})",
                    s.len()
                )));
            }
            for d in 0..n {
                if s[d] >= self.dims()[d] {
                    return Err(ArmciError::BadDescriptor(format!(
                        "subscript {i} out of bounds in dim {d}: {} >= {}",
                        s[d],
                        self.dims()[d]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Groups subscripts by owning cell: returns per-owner
    /// `(remote element addresses, original positions)`.
    #[allow(clippy::type_complexity)]
    fn group_by_owner(&self, subs: &[Vec<usize>]) -> HashMap<usize, (Vec<usize>, Vec<usize>)> {
        let mut by_owner: HashMap<usize, (Vec<usize>, Vec<usize>)> = HashMap::new();
        for (pos, s) in subs.iter().enumerate() {
            let cell = self.distribution().locate(s);
            let addr = self.element_addr(cell, s);
            let entry = by_owner.entry(cell).or_default();
            entry.0.push(addr);
            entry.1.push(pos);
        }
        by_owner
    }

    /// Byte address of a global element within its owner's slice.
    fn element_addr(&self, cell: usize, idx: &[usize]) -> usize {
        let (blo, bhi) = self.distribution().cell_block(cell);
        let bdims: Vec<usize> = blo.iter().zip(&bhi).map(|(&l, &h)| h - l).collect();
        let mut off = 0usize;
        for d in 0..bdims.len() {
            off = off * bdims[d] + (idx[d] - blo[d]);
        }
        self.base_of(cell).addr + off * self.ty().elem()
    }

    /// `NGA_Gather`: reads the listed elements (f64 arrays).
    pub fn gather(&self, subs: &[Vec<usize>]) -> GaResult<Vec<f64>> {
        if self.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor(
                "gather needs an F64 array".into(),
            ));
        }
        self.check_subscripts(subs)?;
        let mut out = vec![0.0f64; subs.len()];
        let mut buf = vec![0u8; subs.len() * 8];
        for (cell, (addrs, positions)) in self.group_by_owner(subs) {
            let desc = IovDesc {
                rank: self.base_of(cell).rank,
                bytes: 8,
                local_offsets: (0..addrs.len()).map(|i| i * 8).collect(),
                remote_addrs: addrs,
            };
            let n = desc.len();
            self.runtime().get_iov(&desc, &mut buf[..n * 8])?;
            for (i, &pos) in positions.iter().enumerate() {
                out[pos] = f64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
            }
        }
        Ok(out)
    }

    /// `NGA_Scatter`: writes `values[i]` to element `subs[i]`. Duplicate
    /// subscripts are rejected (as in GA, their outcome would be
    /// undefined).
    pub fn scatter(&self, subs: &[Vec<usize>], values: &[f64]) -> GaResult<()> {
        self.scatter_inner(subs, values, None)
    }

    /// `NGA_Scatter_acc`: `element += scale · value`, atomically per
    /// element. Duplicate subscripts are allowed (accumulation commutes).
    pub fn scatter_acc(&self, subs: &[Vec<usize>], values: &[f64], scale: f64) -> GaResult<()> {
        self.scatter_inner(subs, values, Some(scale))
    }

    fn scatter_inner(
        &self,
        subs: &[Vec<usize>],
        values: &[f64],
        scale: Option<f64>,
    ) -> GaResult<()> {
        if self.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor(
                "scatter needs an F64 array".into(),
            ));
        }
        self.check_subscripts(subs)?;
        if subs.len() != values.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "{} subscripts but {} values",
                subs.len(),
                values.len()
            )));
        }
        if scale.is_none() {
            // duplicates make plain scatter nondeterministic
            let mut seen = std::collections::HashSet::new();
            for s in subs {
                if !seen.insert(s.clone()) {
                    return Err(ArmciError::BadDescriptor(format!(
                        "duplicate subscript {s:?} in scatter"
                    )));
                }
            }
        }
        for (cell, (addrs, positions)) in self.group_by_owner(subs) {
            let mut local = Vec::with_capacity(addrs.len() * 8);
            for &pos in &positions {
                local.extend_from_slice(&values[pos].to_le_bytes());
            }
            let desc = IovDesc {
                rank: self.base_of(cell).rank,
                bytes: 8,
                local_offsets: (0..addrs.len()).map(|i| i * 8).collect(),
                remote_addrs: addrs,
            };
            match scale {
                None => self.runtime().put_iov(&desc, &local)?,
                Some(sc) => self.runtime().acc_iov(AccKind::Double(sc), &desc, &local)?,
            }
        }
        Ok(())
    }
}
