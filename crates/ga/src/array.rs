//! The distributed array object and its one-sided patch operations.

use crate::dist::Distribution;
use crate::GaResult;
use armci::{AccKind, Armci, ArmciError, ArmciGroup, GlobalAddr, NbHandle, RmwOp};

/// Handle for a nonblocking patch operation (`NGA_NbPut`/`NbGet`/`NbAcc`):
/// one ARMCI handle per owner the patch fans out to. Complete it with
/// [`GlobalArray::nb_wait`] (or a `sync`, which retires all outstanding
/// nonblocking work).
#[must_use = "nonblocking patch operations must be completed with nb_wait or sync"]
pub struct GaNbHandle {
    /// The per-owner ARMCI handles, in fan-out order.
    pub handles: Vec<NbHandle>,
}

/// Element type of a global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaType {
    /// 64-bit floats (the workhorse of NWChem).
    F64,
    /// 64-bit signed integers (shared counters, index structures).
    I64,
}

impl GaType {
    /// Element width in bytes.
    pub fn elem(self) -> usize {
        8
    }
}

/// A distributed, shared, multidimensional array (one `GA_Create`).
///
/// The array lives in ARMCI global memory allocated over `group`; block
/// `cell` of the distribution lives on group rank `cell`. All patch
/// bounds are half-open `[lo, hi)` and element order is row-major.
///
/// ```
/// use armci::Armci;
/// use armci_mpi::ArmciMpi;
/// use ga::{GaType, GlobalArray};
/// use mpisim::Runtime;
///
/// Runtime::run(4, |p| {
///     let rt = ArmciMpi::new(p);
///     let a = GlobalArray::create(&rt, "demo", GaType::F64, &[8, 8]).unwrap();
///     a.zero().unwrap();
///     if rt.rank() == 0 {
///         a.put_patch(&[2, 2], &[4, 4], &[1.0; 4]).unwrap();
///     }
///     a.sync();
///     assert_eq!(a.get_patch(&[3, 3], &[4, 4]).unwrap(), vec![1.0]);
///     a.sync();
///     a.destroy().unwrap();
/// });
/// ```
pub struct GlobalArray<'a, A: Armci + ?Sized> {
    rt: &'a A,
    name: String,
    ty: GaType,
    dist: Distribution,
    group: ArmciGroup,
    bases: Vec<GlobalAddr>,
}

enum Verb<'d> {
    Put(&'d [u8]),
    Get(&'d mut [u8]),
    Acc(f64, &'d [u8]),
    AccI64(i64, &'d [u8]),
}

impl Verb<'_> {
    fn name(&self, nb: bool) -> &'static str {
        match (self, nb) {
            (Verb::Put(_), false) => "ga_put",
            (Verb::Get(_), false) => "ga_get",
            (Verb::Acc(..) | Verb::AccI64(..), false) => "ga_acc",
            (Verb::Put(_), true) => "ga_nb_put",
            (Verb::Get(_), true) => "ga_nb_get",
            (Verb::Acc(..) | Verb::AccI64(..), true) => "ga_nb_acc",
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            Verb::Put(d) | Verb::Acc(_, d) | Verb::AccI64(_, d) => d.len() as u64,
            Verb::Get(d) => d.len() as u64,
        }
    }
}

impl<'a, A: Armci + ?Sized> GlobalArray<'a, A> {
    /// Collectively creates an array with GA's regular block distribution
    /// over the world group.
    pub fn create(rt: &'a A, name: &str, ty: GaType, dims: &[usize]) -> GaResult<Self> {
        let group = rt.world_group();
        Self::create_on(rt, name, ty, dims, group)
    }

    /// Collectively creates an array over an explicit group.
    pub fn create_on(
        rt: &'a A,
        name: &str,
        ty: GaType,
        dims: &[usize],
        group: ArmciGroup,
    ) -> GaResult<Self> {
        let dist = Distribution::regular(dims, group.size());
        Self::create_with_dist(rt, name, ty, dist, group)
    }

    /// Collectively creates an array with an explicit (possibly
    /// irregular) distribution. `dist.ncells()` must equal the group
    /// size.
    pub fn create_with_dist(
        rt: &'a A,
        name: &str,
        ty: GaType,
        dist: Distribution,
        group: ArmciGroup,
    ) -> GaResult<Self> {
        if dist.ncells() != group.size() {
            return Err(ArmciError::BadDescriptor(format!(
                "distribution has {} cells for a group of {}",
                dist.ncells(),
                group.size()
            )));
        }
        let my_len = dist.cell_len(group.rank());
        let bases = rt.malloc_group(my_len * ty.elem(), &group)?;
        Ok(GlobalArray {
            rt,
            name: name.to_string(),
            ty,
            dist,
            group,
            bases,
        })
    }

    /// Collectively destroys the array (`GA_Destroy`).
    pub fn destroy(self) -> GaResult<()> {
        let me = self.group.rank();
        self.rt.free_group(self.bases[me], &self.group)
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type.
    pub fn ty(&self) -> GaType {
        self.ty
    }

    /// Array dimensions (elements).
    pub fn dims(&self) -> &[usize] {
        &self.dist.dims
    }

    /// The distribution.
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// The group the array lives on.
    pub fn group(&self) -> &ArmciGroup {
        &self.group
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &'a A {
        self.rt
    }

    /// This process's block `[lo, hi)` (`NGA_Distribution`).
    pub fn my_block(&self) -> (Vec<usize>, Vec<usize>) {
        self.dist.cell_block(self.group.rank())
    }

    /// Base global address of cell `c`'s slice (crate-internal).
    pub(crate) fn base_of(&self, cell: usize) -> GlobalAddr {
        self.bases[cell]
    }

    /// Owner (group rank) of a global index (`NGA_Locate`).
    pub fn locate(&self, idx: &[usize]) -> usize {
        self.dist.locate(idx)
    }

    /// Synchronises the group: all outstanding operations complete
    /// everywhere (`GA_Sync`).
    pub fn sync(&self) {
        let t0 = obs::enabled().then(|| self.rt.vtime());
        self.rt.fence_all().expect("fence_all");
        self.group.barrier();
        if let Some(t0) = t0 {
            obs::span(
                obs::EventKind::GaOp {
                    name: "ga_sync",
                    bytes: 0,
                },
                t0,
                self.rt.vtime(),
            );
        }
    }

    // -----------------------------------------------------------------
    // Index math
    // -----------------------------------------------------------------

    fn patch_len(lo: &[usize], hi: &[usize]) -> usize {
        lo.iter().zip(hi).map(|(&l, &h)| h - l).product()
    }

    /// Byte offset of `idx` (relative to `origin`) in a row-major array
    /// of extents `dims`.
    fn offset_in(&self, idx: &[usize], origin: &[usize], dims: &[usize]) -> usize {
        let mut off = 0usize;
        for d in 0..dims.len() {
            off = off * dims[d] + (idx[d] - origin[d]);
        }
        off * self.ty.elem()
    }

    /// Builds ARMCI strided arguments for moving the intersection
    /// `[ilo, ihi)` between a remote block (`blo..bhi`) and the local
    /// dense patch buffer (`lo..hi`). Returns
    /// `(remote_addr, remote_strides, local_offset, local_strides, count)`.
    #[allow(clippy::type_complexity)]
    fn strided_args(
        &self,
        cell: usize,
        ilo: &[usize],
        ihi: &[usize],
        lo: &[usize],
        hi: &[usize],
    ) -> (GlobalAddr, Vec<usize>, usize, Vec<usize>, Vec<usize>) {
        let n = self.dist.ndim();
        let elem = self.ty.elem();
        let (blo, bhi) = self.dist.cell_block(cell);
        let bdims: Vec<usize> = blo.iter().zip(&bhi).map(|(&l, &h)| h - l).collect();
        let pdims: Vec<usize> = lo.iter().zip(hi).map(|(&l, &h)| h - l).collect();
        // count[0] = contiguous bytes along the last dimension
        let mut count = Vec::with_capacity(n);
        count.push((ihi[n - 1] - ilo[n - 1]) * elem);
        for d in (0..n - 1).rev() {
            count.push(ihi[d] - ilo[d]);
        }
        // byte stride of dimension d in an array of extents `dims`
        let stride_of =
            |dims: &[usize], d: usize| -> usize { dims[d + 1..].iter().product::<usize>() * elem };
        // stride level j corresponds to dimension n-2-j... : count[j]
        // (j>=1) covers dim n-1-j, whose stride is stride_of(dims, n-1-j)
        let mut rstrides = Vec::with_capacity(n - 1);
        let mut lstrides = Vec::with_capacity(n - 1);
        for j in 1..n {
            rstrides.push(stride_of(&bdims, n - 1 - j));
            lstrides.push(stride_of(&pdims, n - 1 - j));
        }
        let raddr = self.bases[cell].offset(self.offset_in(ilo, &blo, &bdims));
        let loff = self.offset_in(ilo, lo, &pdims);
        (raddr, rstrides, loff, lstrides, count)
    }

    fn check_patch(&self, lo: &[usize], hi: &[usize], buf_len_bytes: usize) -> GaResult<()> {
        let n = self.dist.ndim();
        if lo.len() != n || hi.len() != n {
            return Err(ArmciError::BadDescriptor(format!(
                "patch rank {} vs array rank {n}",
                lo.len()
            )));
        }
        for d in 0..n {
            if lo[d] >= hi[d] || hi[d] > self.dist.dims[d] {
                return Err(ArmciError::BadDescriptor(format!(
                    "bad patch bounds in dim {d}: [{}, {}) of {}",
                    lo[d], hi[d], self.dist.dims[d]
                )));
            }
        }
        let need = Self::patch_len(lo, hi) * self.ty.elem();
        if buf_len_bytes != need {
            return Err(ArmciError::BadDescriptor(format!(
                "patch needs {need} bytes, buffer has {buf_len_bytes}"
            )));
        }
        Ok(())
    }

    /// The Figure 2 fan-out: decompose the patch over owners and issue
    /// one strided ARMCI operation per owner.
    fn xfer(&self, lo: &[usize], hi: &[usize], mut verb: Verb<'_>) -> GaResult<()> {
        let trace = obs::enabled().then(|| (verb.name(false), verb.bytes(), self.rt.vtime()));
        for (cell, ilo, ihi) in self.dist.locate_region(lo, hi) {
            let (raddr, rstrides, loff, lstrides, count) =
                self.strided_args(cell, &ilo, &ihi, lo, hi);
            let sub_bytes: usize = count.iter().product();
            match &mut verb {
                Verb::Put(data) => {
                    self.rt
                        .put_strided(&data[loff..], &lstrides, raddr, &rstrides, &count)?;
                    let _ = sub_bytes;
                }
                Verb::Get(out) => {
                    self.rt
                        .get_strided(raddr, &rstrides, &mut out[loff..], &lstrides, &count)?;
                }
                Verb::Acc(scale, data) => {
                    self.rt.acc_strided(
                        AccKind::Double(*scale),
                        &data[loff..],
                        &lstrides,
                        raddr,
                        &rstrides,
                        &count,
                    )?;
                }
                Verb::AccI64(scale, data) => {
                    self.rt.acc_strided(
                        AccKind::Long(*scale),
                        &data[loff..],
                        &lstrides,
                        raddr,
                        &rstrides,
                        &count,
                    )?;
                }
            }
        }
        if let Some((name, bytes, t0)) = trace {
            obs::span(obs::EventKind::GaOp { name, bytes }, t0, self.rt.vtime());
        }
        Ok(())
    }

    /// The nonblocking counterpart of [`Self::xfer`]: issues one
    /// nonblocking strided operation per owner and returns their handles
    /// unwaited, so transfers to distinct owners stay in flight
    /// concurrently.
    fn nb_xfer(&self, lo: &[usize], hi: &[usize], mut verb: Verb<'_>) -> GaResult<GaNbHandle> {
        let trace = obs::enabled().then(|| (verb.name(true), verb.bytes(), self.rt.vtime()));
        let mut handles = Vec::new();
        for (cell, ilo, ihi) in self.dist.locate_region(lo, hi) {
            let (raddr, rstrides, loff, lstrides, count) =
                self.strided_args(cell, &ilo, &ihi, lo, hi);
            let h = match &mut verb {
                Verb::Put(data) => {
                    self.rt
                        .nb_put_strided(&data[loff..], &lstrides, raddr, &rstrides, &count)?
                }
                Verb::Get(out) => {
                    self.rt
                        .nb_get_strided(raddr, &rstrides, &mut out[loff..], &lstrides, &count)?
                }
                Verb::Acc(scale, data) => self.rt.nb_acc_strided(
                    AccKind::Double(*scale),
                    &data[loff..],
                    &lstrides,
                    raddr,
                    &rstrides,
                    &count,
                )?,
                Verb::AccI64(scale, data) => self.rt.nb_acc_strided(
                    AccKind::Long(*scale),
                    &data[loff..],
                    &lstrides,
                    raddr,
                    &rstrides,
                    &count,
                )?,
            };
            handles.push(h);
        }
        if let Some((name, bytes, t0)) = trace {
            obs::span(obs::EventKind::GaOp { name, bytes }, t0, self.rt.vtime());
        }
        Ok(GaNbHandle { handles })
    }

    // -----------------------------------------------------------------
    // Typed patch operations
    // -----------------------------------------------------------------

    fn want(&self, ty: GaType) -> GaResult<()> {
        if self.ty != ty {
            return Err(ArmciError::BadDescriptor(format!(
                "array {} is {:?}, operation wants {ty:?}",
                self.name, self.ty
            )));
        }
        Ok(())
    }

    /// `NGA_Put`: writes the dense row-major `data` into the patch.
    pub fn put_patch(&self, lo: &[usize], hi: &[usize], data: &[f64]) -> GaResult<()> {
        self.want(GaType::F64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let bytes = armci::acc::f64s_to_bytes(data);
        self.xfer(lo, hi, Verb::Put(&bytes))
    }

    /// `NGA_Get`: reads the patch into a dense row-major vector.
    pub fn get_patch(&self, lo: &[usize], hi: &[usize]) -> GaResult<Vec<f64>> {
        self.want(GaType::F64)?;
        let len = Self::patch_len(lo, hi);
        self.check_patch(lo, hi, len * 8)?;
        let mut bytes = vec![0u8; len * 8];
        self.xfer(lo, hi, Verb::Get(&mut bytes))?;
        Ok(armci::acc::bytes_to_f64s(&bytes))
    }

    /// `NGA_Acc`: `patch += scale * data`, atomic per element with
    /// respect to other accumulates.
    pub fn acc_patch(&self, scale: f64, lo: &[usize], hi: &[usize], data: &[f64]) -> GaResult<()> {
        self.want(GaType::F64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let bytes = armci::acc::f64s_to_bytes(data);
        self.xfer(lo, hi, Verb::Acc(scale, &bytes))
    }

    /// `NGA_NbPut`: nonblocking patch write. The transfer stays in flight
    /// until [`Self::nb_wait`] (or a `sync`); transfers to distinct owners
    /// proceed concurrently, and per-owner fan-out pieces queue in the
    /// runtime's coalescing scheduler, which merges adjacent spans and
    /// coarsens epochs per target (DESIGN §7).
    pub fn nb_put_patch(&self, lo: &[usize], hi: &[usize], data: &[f64]) -> GaResult<GaNbHandle> {
        self.want(GaType::F64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let bytes = armci::acc::f64s_to_bytes(data);
        self.nb_xfer(lo, hi, Verb::Put(&bytes))
    }

    /// `NGA_NbGet`: nonblocking patch read into a caller-owned buffer.
    /// `out` holds the patch data after [`Self::nb_wait`] on the returned
    /// handle; reading it before then is undefined.
    pub fn nb_get_patch_into(
        &self,
        lo: &[usize],
        hi: &[usize],
        out: &mut [f64],
    ) -> GaResult<GaNbHandle> {
        self.want(GaType::F64)?;
        self.check_patch(lo, hi, out.len() * 8)?;
        let mut bytes = vec![0u8; out.len() * 8];
        let h = self.nb_xfer(lo, hi, Verb::Get(&mut bytes))?;
        out.copy_from_slice(&armci::acc::bytes_to_f64s(&bytes));
        Ok(h)
    }

    /// `NGA_NbAcc`: nonblocking `patch += scale * data`.
    pub fn nb_acc_patch(
        &self,
        scale: f64,
        lo: &[usize],
        hi: &[usize],
        data: &[f64],
    ) -> GaResult<GaNbHandle> {
        self.want(GaType::F64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let bytes = armci::acc::f64s_to_bytes(data);
        self.nb_xfer(lo, hi, Verb::Acc(scale, &bytes))
    }

    /// `NGA_NbWait`: completes a nonblocking patch operation.
    pub fn nb_wait(&self, handle: GaNbHandle) -> GaResult<()> {
        self.rt.wait_all(handle.handles)
    }

    /// Integer put.
    pub fn put_patch_i64(&self, lo: &[usize], hi: &[usize], data: &[i64]) -> GaResult<()> {
        self.want(GaType::I64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.xfer(lo, hi, Verb::Put(&bytes))
    }

    /// Integer get.
    pub fn get_patch_i64(&self, lo: &[usize], hi: &[usize]) -> GaResult<Vec<i64>> {
        self.want(GaType::I64)?;
        let len = Self::patch_len(lo, hi);
        self.check_patch(lo, hi, len * 8)?;
        let mut bytes = vec![0u8; len * 8];
        self.xfer(lo, hi, Verb::Get(&mut bytes))?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Integer accumulate.
    pub fn acc_patch_i64(
        &self,
        scale: i64,
        lo: &[usize],
        hi: &[usize],
        data: &[i64],
    ) -> GaResult<()> {
        self.want(GaType::I64)?;
        self.check_patch(lo, hi, data.len() * 8)?;
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.xfer(lo, hi, Verb::AccI64(scale, &bytes))
    }

    /// `NGA_Read_inc`: atomically adds `inc` to the I64 element at `idx`
    /// and returns the previous value — GA's NXTVAL primitive.
    pub fn read_inc(&self, idx: &[usize], inc: i64) -> GaResult<i64> {
        self.want(GaType::I64)?;
        let cell = self.dist.locate(idx);
        let (blo, bhi) = self.dist.cell_block(cell);
        let bdims: Vec<usize> = blo.iter().zip(&bhi).map(|(&l, &h)| h - l).collect();
        let addr = self.bases[cell].offset(self.offset_in(idx, &blo, &bdims));
        let t0 = obs::enabled().then(|| self.rt.vtime());
        let res = self.rt.rmw(RmwOp::FetchAdd(inc), addr);
        if let Some(t0) = t0 {
            obs::span(
                obs::EventKind::GaOp {
                    name: "ga_read_inc",
                    bytes: 8,
                },
                t0,
                self.rt.vtime(),
            );
        }
        res
    }

    // -----------------------------------------------------------------
    // Direct local access (GA_Access/GA_Release, via the DLA extension)
    // -----------------------------------------------------------------

    /// Mutable access to this process's own block as f64 (row-major over
    /// the block extents). No-op (skips the closure) for empty blocks.
    pub fn access_local_mut(&self, f: &mut dyn FnMut(&mut [f64])) -> GaResult<()> {
        self.want(GaType::F64)?;
        let me = self.group.rank();
        let len = self.dist.cell_len(me);
        if len == 0 {
            return Ok(());
        }
        self.rt.access_mut(self.bases[me], len * 8, &mut |bytes| {
            let mut vals = armci::acc::bytes_to_f64s(bytes);
            f(&mut vals);
            bytes.copy_from_slice(&armci::acc::f64s_to_bytes(&vals));
        })
    }

    /// Read-only access to this process's own block.
    pub fn access_local(&self, f: &mut dyn FnMut(&[f64])) -> GaResult<()> {
        self.want(GaType::F64)?;
        let me = self.group.rank();
        let len = self.dist.cell_len(me);
        if len == 0 {
            return Ok(());
        }
        self.rt.access(self.bases[me], len * 8, &mut |bytes| {
            f(&armci::acc::bytes_to_f64s(bytes));
        })
    }

    /// Applies an access-mode hint to the array's memory (§VIII-A).
    pub fn set_access_mode(&self, mode: armci::AccessMode) -> GaResult<()> {
        let me = self.group.rank();
        self.rt.set_access_mode(self.bases[me], &self.group, mode)
    }
}
