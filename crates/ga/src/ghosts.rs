//! Ghost-cell support (`GA_Create_ghosts` / `GA_Update_ghosts`).
//!
//! Stencil codes want each process's block surrounded by a halo of
//! neighbouring elements. GA materialises the halo in the local
//! allocation and refreshes it collectively; here the same functionality
//! is a *fetch*: [`GlobalArray::fetch_ghosted`] returns the caller's block
//! plus a `width`-deep margin, assembled from one-sided gets against the
//! owning processes (wrapping around for periodic boundaries —
//! `GA_PERIODIC` — or zero-filled outside the array for non-periodic
//! ones).

use crate::array::{GaType, GlobalArray};
use crate::GaResult;
use armci::{Armci, ArmciError};

/// A local block with ghost margins.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostBlock {
    /// Global bounds of the interior (this process's block).
    pub lo: Vec<usize>,
    pub hi: Vec<usize>,
    /// Ghost width per dimension.
    pub width: Vec<usize>,
    /// Extents of `data` (interior + margins).
    pub dims: Vec<usize>,
    /// Row-major storage, ghosts included.
    pub data: Vec<f64>,
}

impl GhostBlock {
    /// Value at *global* index `idx`; `idx` may lie inside the ghost
    /// margin (including wrapped/periodic positions already fetched).
    /// Panics if outside the fetched region.
    pub fn at(&self, idx: &[usize]) -> f64 {
        let mut off = 0usize;
        for d in 0..self.dims.len() {
            // local coordinate of the global index, allowing the margin:
            // interior starts at width[d]
            let local = idx[d] + self.width[d] - self.lo[d];
            assert!(local < self.dims[d], "index {idx:?} outside ghost block");
            off = off * self.dims[d] + local;
        }
        self.data[off]
    }

    /// Value at a *signed offset* from a global interior index — the
    /// stencil-friendly accessor (`block.rel(&[i, j], &[-1, 0])`).
    pub fn rel(&self, idx: &[usize], delta: &[isize]) -> f64 {
        let mut off = 0usize;
        for d in 0..self.dims.len() {
            let local = (idx[d] + self.width[d] - self.lo[d]) as isize + delta[d];
            assert!(
                local >= 0 && (local as usize) < self.dims[d],
                "offset {delta:?} from {idx:?} outside ghost block"
            );
            off = off * self.dims[d] + local as usize;
        }
        self.data[off]
    }

    /// Mutable view of the interior, row-major over the interior extents.
    #[allow(clippy::needless_range_loop)] // odometer over parallel arrays
    pub fn interior(&self) -> Vec<f64> {
        let n = self.dims.len();
        let idims: Vec<usize> = self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).collect();
        let mut out = Vec::with_capacity(idims.iter().product());
        let total: usize = idims.iter().product();
        let mut idx = vec![0usize; n];
        for _ in 0..total {
            let mut off = 0usize;
            for d in 0..n {
                off = off * self.dims[d] + idx[d] + self.width[d];
            }
            out.push(self.data[off]);
            for d in (0..n).rev() {
                idx[d] += 1;
                if idx[d] < idims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }
}

impl<A: Armci + ?Sized> GlobalArray<'_, A> {
    /// Fetches this process's block plus a ghost margin of `width`
    /// elements per dimension (`GA_Update_ghosts` as a pull). With
    /// `periodic`, margins wrap around the array (GA's periodic ghosts);
    /// otherwise out-of-array ghost cells are zero.
    #[allow(clippy::needless_range_loop)] // odometers over parallel arrays
    pub fn fetch_ghosted(&self, width: &[usize], periodic: bool) -> GaResult<GhostBlock> {
        if self.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor("ghosts need an F64 array".into()));
        }
        let n = self.dims().len();
        if width.len() != n {
            return Err(ArmciError::BadDescriptor(format!(
                "ghost width rank {} vs array rank {n}",
                width.len()
            )));
        }
        for d in 0..n {
            if width[d] >= self.dims()[d] {
                return Err(ArmciError::BadDescriptor(format!(
                    "ghost width {} ≥ dim {} in dim {d}",
                    width[d],
                    self.dims()[d]
                )));
            }
        }
        let (lo, hi) = self.my_block();
        let dims: Vec<usize> = (0..n).map(|d| (hi[d] - lo[d]) + 2 * width[d]).collect();
        let mut block = GhostBlock {
            lo: lo.clone(),
            hi: hi.clone(),
            width: width.to_vec(),
            dims: dims.clone(),
            data: vec![0.0; dims.iter().product::<usize>().max(1)],
        };
        if lo.iter().zip(&hi).any(|(&l, &h)| l >= h) {
            return Ok(block); // empty block: nothing to fetch
        }
        // Per dimension: pieces of the halo range, as (global range,
        // local start) — splitting at the array boundary (periodic wrap)
        // or clamping (non-periodic).
        let mut pieces: Vec<Vec<(usize, usize, usize)>> = Vec::with_capacity(n);
        for d in 0..n {
            let nd = self.dims()[d];
            let start = lo[d] as isize - width[d] as isize;
            let len = (hi[d] - lo[d]) + 2 * width[d];
            let mut dim_pieces = Vec::new();
            let mut local = 0usize;
            let mut g = start;
            while local < len {
                if periodic {
                    let gm = g.rem_euclid(nd as isize) as usize;
                    // run until the array boundary or the halo end
                    let run = (nd - gm).min(len - local);
                    dim_pieces.push((gm, gm + run, local));
                    local += run;
                    g += run as isize;
                } else {
                    if g < 0 {
                        let skip = (-g) as usize;
                        local += skip;
                        g = 0;
                        continue;
                    }
                    let gm = g as usize;
                    if gm >= nd {
                        break; // rest stays zero
                    }
                    let run = (nd - gm).min(len - local);
                    dim_pieces.push((gm, gm + run, local));
                    local += run;
                    g += run as isize;
                }
            }
            pieces.push(dim_pieces);
        }
        // Cartesian product of per-dim pieces: one patch get per piece.
        let mut choice = vec![0usize; n];
        'outer: loop {
            let glo: Vec<usize> = (0..n).map(|d| pieces[d][choice[d]].0).collect();
            let ghi: Vec<usize> = (0..n).map(|d| pieces[d][choice[d]].1).collect();
            let lstart: Vec<usize> = (0..n).map(|d| pieces[d][choice[d]].2).collect();
            let patch = self.get_patch(&glo, &ghi)?;
            // scatter the dense patch into `data`
            let pdims: Vec<usize> = glo.iter().zip(&ghi).map(|(&a, &b)| b - a).collect();
            let total: usize = pdims.iter().product();
            let mut idx = vec![0usize; n];
            for flat in 0..total {
                let mut off = 0usize;
                for d in 0..n {
                    off = off * dims[d] + lstart[d] + idx[d];
                }
                block.data[off] = patch[flat];
                for d in (0..n).rev() {
                    idx[d] += 1;
                    if idx[d] < pdims[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            // next combination
            let mut d = n;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                choice[d] += 1;
                if choice[d] < pieces[d].len() {
                    break;
                }
                choice[d] = 0;
            }
        }
        Ok(block)
    }

    /// Writes a ghost block's interior back into the array
    /// (`NGA_Release_update` of the interior).
    pub fn put_interior(&self, block: &GhostBlock) -> GaResult<()> {
        if block.lo.iter().zip(&block.hi).any(|(&l, &h)| l >= h) {
            return Ok(());
        }
        self.put_patch(&block.lo, &block.hi, &block.interior())
    }
}
