//! Block data distributions and process grids.
//!
//! GA's default distribution factors the process count into an
//! n-dimensional grid (larger array dimensions get more processes) and
//! splits each array dimension into near-equal blocks. Irregular
//! distributions with user-chosen block boundaries are also supported
//! (GA's `ga_create_irreg`).

/// Factors `nprocs` into an `ndim`-dimensional grid, biasing more
/// processes toward larger array dimensions.
pub fn proc_grid(nprocs: usize, dims: &[usize]) -> Vec<usize> {
    assert!(!dims.is_empty());
    let mut grid = vec![1usize; dims.len()];
    // Greedy: hand out prime factors (largest first) to the dimension
    // with the largest per-process extent.
    let mut factors = prime_factors(nprocs);
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let (best, _) = grid
            .iter()
            .enumerate()
            .map(|(d, &g)| (d, dims[d] as f64 / g as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty dims");
        grid[best] *= f;
    }
    grid
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// A block distribution: per dimension, the block boundaries
/// (`bounds[d]` has `grid[d] + 1` entries, `bounds[d][0] == 0`,
/// `bounds[d].last() == dims[d]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    pub dims: Vec<usize>,
    pub grid: Vec<usize>,
    pub bounds: Vec<Vec<usize>>,
}

impl Distribution {
    /// GA-style regular block distribution over `nprocs` processes.
    pub fn regular(dims: &[usize], nprocs: usize) -> Distribution {
        let grid = proc_grid(nprocs, dims);
        let bounds = dims
            .iter()
            .zip(&grid)
            .map(|(&n, &g)| {
                // near-equal blocks: first (n % g) blocks get one extra
                let base = n / g;
                let extra = n % g;
                let mut b = Vec::with_capacity(g + 1);
                let mut acc = 0;
                b.push(0);
                for i in 0..g {
                    acc += base + usize::from(i < extra);
                    b.push(acc);
                }
                b
            })
            .collect();
        Distribution {
            dims: dims.to_vec(),
            grid,
            bounds,
        }
    }

    /// Irregular distribution with explicit boundaries.
    pub fn irregular(dims: &[usize], bounds: Vec<Vec<usize>>) -> Distribution {
        assert_eq!(bounds.len(), dims.len());
        for (d, b) in bounds.iter().enumerate() {
            assert!(b.len() >= 2, "dim {d}: need at least one block");
            assert_eq!(b[0], 0, "dim {d}: bounds must start at 0");
            assert_eq!(
                *b.last().unwrap(),
                dims[d],
                "dim {d}: bounds must end at dim"
            );
            assert!(
                b.windows(2).all(|w| w[0] <= w[1]),
                "dim {d}: bounds must ascend"
            );
        }
        let grid = bounds.iter().map(|b| b.len() - 1).collect();
        Distribution {
            dims: dims.to_vec(),
            grid,
            bounds,
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Number of grid cells (≤ process count; processes beyond this hold
    /// no data).
    pub fn ncells(&self) -> usize {
        self.grid.iter().product()
    }

    /// Grid coordinates of cell `c` (row-major over the grid).
    pub fn cell_coords(&self, c: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.ndim()];
        let mut rem = c;
        for d in (0..self.ndim()).rev() {
            coords[d] = rem % self.grid[d];
            rem /= self.grid[d];
        }
        coords
    }

    /// Half-open index range `[lo, hi)` owned by cell `c`, per dimension.
    pub fn cell_block(&self, c: usize) -> (Vec<usize>, Vec<usize>) {
        let coords = self.cell_coords(c);
        let lo = coords
            .iter()
            .zip(&self.bounds)
            .map(|(&i, b)| b[i])
            .collect();
        let hi = coords
            .iter()
            .zip(&self.bounds)
            .map(|(&i, b)| b[i + 1])
            .collect();
        (lo, hi)
    }

    /// Elements owned by cell `c`.
    pub fn cell_len(&self, c: usize) -> usize {
        let (lo, hi) = self.cell_block(c);
        lo.iter().zip(&hi).map(|(&l, &h)| h - l).product()
    }

    /// The cell owning global index `idx`.
    #[allow(clippy::needless_range_loop)] // indexes three parallel arrays
    pub fn locate(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndim());
        let mut cell = 0usize;
        for d in 0..self.ndim() {
            assert!(
                idx[d] < self.dims[d],
                "index {} out of dim {}",
                idx[d],
                self.dims[d]
            );
            // last block index b with bounds[d][b] <= idx[d] and non-empty
            let b = match self.bounds[d].binary_search(&idx[d]) {
                Ok(mut i) => {
                    // land on a boundary: walk forward over empty blocks
                    while i + 1 < self.bounds[d].len() - 1 && self.bounds[d][i + 1] <= idx[d] {
                        i += 1;
                    }
                    i.min(self.grid[d] - 1)
                }
                Err(i) => i - 1,
            };
            cell = cell * self.grid[d] + b;
        }
        cell
    }

    /// All cells whose blocks intersect the half-open patch `[lo, hi)`,
    /// with the intersection bounds. This is the fan-out of Figure 2.
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    pub fn locate_region(
        &self,
        lo: &[usize],
        hi: &[usize],
    ) -> Vec<(usize, Vec<usize>, Vec<usize>)> {
        assert_eq!(lo.len(), self.ndim());
        assert_eq!(hi.len(), self.ndim());
        for d in 0..self.ndim() {
            assert!(lo[d] < hi[d], "empty patch in dim {d}");
            assert!(hi[d] <= self.dims[d], "patch exceeds dim {d}");
        }
        // Per dimension, the range of grid blocks the patch touches.
        let mut block_ranges = Vec::with_capacity(self.ndim());
        for d in 0..self.ndim() {
            let first = self.block_of(d, lo[d]);
            let last = self.block_of(d, hi[d] - 1);
            block_ranges.push(first..=last);
        }
        // Cartesian product of the per-dim block ranges.
        let mut out = Vec::new();
        let mut coords: Vec<usize> = block_ranges.iter().map(|r| *r.start()).collect();
        loop {
            // the cell and its intersection with the patch
            let mut cell = 0usize;
            for d in 0..self.ndim() {
                cell = cell * self.grid[d] + coords[d];
            }
            let ilo: Vec<usize> = (0..self.ndim())
                .map(|d| lo[d].max(self.bounds[d][coords[d]]))
                .collect();
            let ihi: Vec<usize> = (0..self.ndim())
                .map(|d| hi[d].min(self.bounds[d][coords[d] + 1]))
                .collect();
            if ilo.iter().zip(&ihi).all(|(&l, &h)| l < h) {
                out.push((cell, ilo, ihi));
            }
            // increment coords over the ranges (last dim fastest)
            let mut d = self.ndim();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if coords[d] < *block_ranges[d].end() {
                    coords[d] += 1;
                    break;
                }
                coords[d] = *block_ranges[d].start();
            }
        }
    }

    /// Block index along dimension `d` containing index `i`.
    fn block_of(&self, d: usize, i: usize) -> usize {
        match self.bounds[d].binary_search(&i) {
            Ok(mut b) => {
                while b + 1 < self.bounds[d].len() - 1 && self.bounds[d][b + 1] <= i {
                    b += 1;
                }
                b.min(self.grid[d] - 1)
            }
            Err(b) => b - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_grid_covers_all_processes() {
        for p in 1..=64 {
            let g = proc_grid(p, &[100, 100]);
            assert_eq!(g.iter().product::<usize>(), p, "p={p}");
        }
    }

    #[test]
    fn proc_grid_biases_larger_dims() {
        let g = proc_grid(8, &[1000, 10]);
        assert!(g[0] >= g[1], "grid {g:?}");
    }

    #[test]
    fn regular_blocks_partition_exactly() {
        let d = Distribution::regular(&[10, 7], 6);
        let total: usize = (0..d.ncells()).map(|c| d.cell_len(c)).sum();
        assert_eq!(total, 70);
        // blocks are near-equal: max-min extent ≤ 1 per dim
        for dim in 0..2 {
            let extents: Vec<usize> = d.bounds[dim].windows(2).map(|w| w[1] - w[0]).collect();
            let mx = extents.iter().max().unwrap();
            let mn = extents.iter().min().unwrap();
            assert!(mx - mn <= 1, "dim {dim}: {extents:?}");
        }
    }

    #[test]
    fn locate_matches_cell_blocks() {
        let d = Distribution::regular(&[13, 9], 4);
        for i in 0..13 {
            for j in 0..9 {
                let c = d.locate(&[i, j]);
                let (lo, hi) = d.cell_block(c);
                assert!(lo[0] <= i && i < hi[0]);
                assert!(lo[1] <= j && j < hi[1]);
            }
        }
    }

    #[test]
    fn locate_region_covers_patch_disjointly() {
        let d = Distribution::regular(&[20, 20], 6);
        let lo = [3, 5];
        let hi = [17, 19];
        let parts = d.locate_region(&lo, &hi);
        // total elements match and parts are disjoint
        let total: usize = parts
            .iter()
            .map(|(_, l, h)| (h[0] - l[0]) * (h[1] - l[1]))
            .sum();
        assert_eq!(total, (17 - 3) * (19 - 5));
        for (a, (_, la, ha)) in parts.iter().enumerate() {
            for (_, lb, hb) in parts.iter().skip(a + 1) {
                let overlap = (0..2).all(|d| la[d] < hb[d] && lb[d] < ha[d]);
                assert!(!overlap, "parts overlap");
            }
        }
    }

    #[test]
    fn single_cell_patch() {
        let d = Distribution::regular(&[16], 4);
        let parts = d.locate_region(&[5], &[7]);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], (1, vec![5], vec![7]));
    }

    #[test]
    fn irregular_distribution() {
        let d = Distribution::irregular(&[10], vec![vec![0, 2, 9, 10]]);
        assert_eq!(d.grid, vec![3]);
        assert_eq!(d.locate(&[0]), 0);
        assert_eq!(d.locate(&[2]), 1);
        assert_eq!(d.locate(&[8]), 1);
        assert_eq!(d.locate(&[9]), 2);
        let parts = d.locate_region(&[1], &[10]);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn more_processes_than_elements() {
        // 3 processes, 2-element dimension: one block is empty
        let d = Distribution::regular(&[2], 3);
        let lens: Vec<usize> = (0..d.ncells()).map(|c| d.cell_len(c)).collect();
        assert_eq!(lens.iter().sum::<usize>(), 2);
        // locate_region never returns empty blocks
        let parts = d.locate_region(&[0], &[2]);
        assert!(parts.iter().all(|(_, l, h)| l[0] < h[0]));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cell_coords_roundtrip() {
        let d = Distribution::regular(&[8, 8, 8], 8);
        for c in 0..d.ncells() {
            let coords = d.cell_coords(c);
            let mut back = 0;
            for dim in 0..3 {
                back = back * d.grid[dim] + coords[dim];
            }
            assert_eq!(back, c);
        }
    }

    #[test]
    #[should_panic(expected = "empty patch")]
    fn empty_patch_rejected() {
        let d = Distribution::regular(&[8], 2);
        d.locate_region(&[3], &[3]);
    }
}
