//! Collective array mathematics (`GA_Zero`, `GA_Fill`, `GA_Scale`,
//! `GA_Copy`, `GA_Dot`, `GA_Add`).
//!
//! Each routine is collective over the array's group and exploits
//! locality: every process handles its own block via direct local access,
//! fetching any remote operands through ordinary patch gets.

use crate::array::{GaType, GlobalArray};
use crate::GaResult;
use armci::{Armci, ArmciError};
use mpisim::coll::ReduceOp;

impl<A: Armci + ?Sized> GlobalArray<'_, A> {
    /// `GA_Zero`.
    pub fn zero(&self) -> GaResult<()> {
        self.fill(0.0)
    }

    /// `GA_Fill`: sets every element to `value`.
    pub fn fill(&self, value: f64) -> GaResult<()> {
        self.sync();
        self.access_local_mut(&mut |b| b.fill(value))?;
        self.sync();
        Ok(())
    }

    /// `GA_Scale`: multiplies every element by `alpha`.
    pub fn scale(&self, alpha: f64) -> GaResult<()> {
        self.sync();
        self.access_local_mut(&mut |b| b.iter_mut().for_each(|x| *x *= alpha))?;
        self.sync();
        Ok(())
    }

    /// `GA_Copy`: copies `src` into `self` (same shape; distributions may
    /// differ).
    pub fn copy_from(&self, src: &GlobalArray<'_, A>) -> GaResult<()> {
        self.same_shape(src)?;
        self.sync();
        let (lo, hi) = self.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let data = src.get_patch(&lo, &hi)?;
            self.put_patch(&lo, &hi, &data)?;
        }
        self.sync();
        Ok(())
    }

    /// `GA_Dot`: the global inner product `Σ self[i] * other[i]`.
    pub fn dot(&self, other: &GlobalArray<'_, A>) -> GaResult<f64> {
        self.same_shape(other)?;
        self.sync();
        let (lo, hi) = self.my_block();
        let mut partial = 0.0;
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let theirs = other.get_patch(&lo, &hi)?;
            let mut idx = 0usize;
            self.access_local(&mut |mine| {
                partial = mine.iter().zip(&theirs).map(|(a, b)| a * b).sum();
                idx += 1;
            })?;
        }
        let total = self.group().comm().allreduce_f64(ReduceOp::Sum, &[partial])[0];
        Ok(total)
    }

    /// `GA_Add`: `self = alpha * a + beta * b` (all same shape).
    pub fn add_from(
        &self,
        alpha: f64,
        a: &GlobalArray<'_, A>,
        beta: f64,
        b: &GlobalArray<'_, A>,
    ) -> GaResult<()> {
        self.same_shape(a)?;
        self.same_shape(b)?;
        self.sync();
        let (lo, hi) = self.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let va = a.get_patch(&lo, &hi)?;
            let vb = b.get_patch(&lo, &hi)?;
            let out: Vec<f64> = va
                .iter()
                .zip(&vb)
                .map(|(x, y)| alpha * x + beta * y)
                .collect();
            self.put_patch(&lo, &hi, &out)?;
        }
        self.sync();
        Ok(())
    }

    /// Global maximum of |element| (`GA_Norm_infinity` flavour).
    pub fn norm_inf(&self) -> GaResult<f64> {
        self.sync();
        let mut partial = 0.0f64;
        self.access_local(&mut |b| {
            partial = b.iter().fold(0.0, |m, x| m.max(x.abs()));
        })?;
        Ok(self.group().comm().allreduce_f64(ReduceOp::Max, &[partial])[0])
    }

    fn same_shape(&self, other: &GlobalArray<'_, A>) -> GaResult<()> {
        if self.dims() != other.dims() || self.ty() != other.ty() {
            return Err(ArmciError::BadDescriptor(format!(
                "shape mismatch: {:?} {:?} vs {:?} {:?}",
                self.dims(),
                self.ty(),
                other.dims(),
                other.ty()
            )));
        }
        if self.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor(
                "math routines operate on F64 arrays".into(),
            ));
        }
        Ok(())
    }
}
