//! Higher-level parallel mathematics (`GA_Dgemm`, `GA_Transpose`,
//! `GA_Duplicate`) — the "high-level parallel mathematics routines" the
//! paper's §II-B attributes to GA.
//!
//! All routines are collective and owner-computes: each process produces
//! its own block of the output, fetching the operands it needs through
//! one-sided gets. This is the communication pattern of GA's own
//! `ga_matmul_patch`.

use crate::array::{GaType, GlobalArray};
use crate::GaResult;
use armci::{Armci, ArmciError};

impl<'a, A: Armci + ?Sized> GlobalArray<'a, A> {
    /// `GA_Duplicate` + `GA_Copy`: a new array with the same shape,
    /// type, group, and contents.
    pub fn duplicate(&self, name: &str) -> GaResult<GlobalArray<'a, A>> {
        let dup = GlobalArray::create_with_dist(
            self.runtime(),
            name,
            self.ty(),
            self.distribution().clone(),
            self.group().clone(),
        )?;
        dup.copy_from_same_type(self)?;
        Ok(dup)
    }

    fn copy_from_same_type(&self, src: &GlobalArray<'_, A>) -> GaResult<()> {
        if self.dims() != src.dims() || self.ty() != src.ty() {
            return Err(ArmciError::BadDescriptor("duplicate shape mismatch".into()));
        }
        self.sync();
        let (lo, hi) = self.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            match self.ty() {
                GaType::F64 => {
                    let d = src.get_patch(&lo, &hi)?;
                    self.put_patch(&lo, &hi, &d)?;
                }
                GaType::I64 => {
                    let d = src.get_patch_i64(&lo, &hi)?;
                    self.put_patch_i64(&lo, &hi, &d)?;
                }
            }
        }
        self.sync();
        Ok(())
    }

    /// `GA_Transpose`: `self = srcᵀ` for 2-D f64 arrays. Each process
    /// fetches the mirror of its own block and transposes locally.
    pub fn transpose_from(&self, src: &GlobalArray<'_, A>) -> GaResult<()> {
        if self.dims().len() != 2 || src.dims().len() != 2 {
            return Err(ArmciError::BadDescriptor(
                "transpose needs 2-D arrays".into(),
            ));
        }
        if self.dims()[0] != src.dims()[1] || self.dims()[1] != src.dims()[0] {
            return Err(ArmciError::BadDescriptor(format!(
                "transpose shape mismatch: {:?} vs {:?}",
                self.dims(),
                src.dims()
            )));
        }
        if self.ty() != GaType::F64 || src.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor(
                "transpose needs F64 arrays".into(),
            ));
        }
        self.sync();
        let (lo, hi) = self.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let mirror = src.get_patch(&[lo[1], lo[0]], &[hi[1], hi[0]])?;
            let (rows, cols) = (hi[1] - lo[1], hi[0] - lo[0]);
            let mut out = vec![0.0; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    out[c * rows + r] = mirror[r * cols + c];
                }
            }
            self.put_patch(&lo, &hi, &out)?;
        }
        self.sync();
        Ok(())
    }

    /// `GA_Dgemm` (non-transposed): `self = alpha · a × b + beta · self`
    /// for 2-D f64 arrays with `a: m×k`, `b: k×n`, `self: m×n`.
    ///
    /// Owner-computes with panel fetches: each process fetches the `a`
    /// row-panel and `b` column-panel matching its block of the output —
    /// the same get/DGEMM pattern the NWChem proxy uses.
    pub fn dgemm(
        &self,
        alpha: f64,
        a: &GlobalArray<'_, A>,
        b: &GlobalArray<'_, A>,
        beta: f64,
    ) -> GaResult<()> {
        let (sd, ad, bd) = (self.dims(), a.dims(), b.dims());
        if sd.len() != 2 || ad.len() != 2 || bd.len() != 2 {
            return Err(ArmciError::BadDescriptor("dgemm needs 2-D arrays".into()));
        }
        let (m, n) = (sd[0], sd[1]);
        let k = ad[1];
        if ad[0] != m || bd[0] != k || bd[1] != n {
            return Err(ArmciError::BadDescriptor(format!(
                "dgemm shape mismatch: C {m}x{n}, A {}x{}, B {}x{}",
                ad[0], ad[1], bd[0], bd[1]
            )));
        }
        if self.ty() != GaType::F64 || a.ty() != GaType::F64 || b.ty() != GaType::F64 {
            return Err(ArmciError::BadDescriptor("dgemm needs F64 arrays".into()));
        }
        self.sync();
        let (lo, hi) = self.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let (bm, bn) = (hi[0] - lo[0], hi[1] - lo[1]);
            // fetch the operand panels
            let pa = a.get_patch(&[lo[0], 0], &[hi[0], k])?; // bm × k
            let pb = b.get_patch(&[0, lo[1]], &[k, hi[1]])?; // k × bn
            let old = self.get_patch(&lo, &hi)?;
            let mut out = vec![0.0; bm * bn];
            for i in 0..bm {
                for j in 0..bn {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += pa[i * k + kk] * pb[kk * bn + j];
                    }
                    out[i * bn + j] = alpha * acc + beta * old[i * bn + j];
                }
            }
            self.put_patch(&lo, &hi, &out)?;
        }
        self.sync();
        Ok(())
    }

    /// Elementwise map over the whole array: `x ← f(x)` (collective,
    /// owner-computes via direct local access).
    pub fn map_inplace(&self, f: &mut dyn FnMut(f64) -> f64) -> GaResult<()> {
        self.sync();
        self.access_local_mut(&mut |b| {
            for x in b.iter_mut() {
                *x = f(*x);
            }
        })?;
        self.sync();
        Ok(())
    }
}
