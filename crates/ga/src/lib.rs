//! **Global Arrays** — the PGAS library on top of ARMCI (paper §II-B).
//!
//! GA presents large, multidimensional shared arrays distributed across
//! the memories of many processes. Programs interact with an array through
//! one-sided `get` / `put` / `acc` operations on **index patches**; the GA
//! layer decomposes each patch into per-owner strided ARMCI operations
//! (Figure 2 of the paper) and issues them through whichever [`armci::Armci`]
//! runtime it was built on — ARMCI-MPI or ARMCI-Native — exactly the
//! relink choice NWChem has (Figure 1).
//!
//! Conventions: this crate is idiomatic Rust, so patch bounds are
//! **half-open** `lo..hi` (GA's C API uses inclusive upper bounds); element
//! storage is row-major (C order), matching GA.

pub mod array;
pub mod dist;
pub mod gather;
pub mod ghosts;
pub mod gop;
pub mod linalg;
pub mod math;

pub use array::{GaNbHandle, GaType, GlobalArray};
pub use dist::{proc_grid, Distribution};

/// Errors are ARMCI errors (GA adds no new failure modes of its own).
pub type GaResult<T> = armci::ArmciResult<T>;
