//! Global operations (`GA_Dgop`, `GA_Igop`, `GA_Brdcst`).
//!
//! GA bundles a few process-group collectives that operate on *user*
//! buffers rather than global arrays — NWChem uses them for energies,
//! convergence checks, and broadcasting small control data. They are thin
//! veneers over the runtime's collectives, exposed here on
//! [`ArmciGroup`] so application code never touches the communicator
//! directly.

use armci::ArmciGroup;
use mpisim::coll::ReduceOp;

/// Reduction operator names as GA spells them (`"+"`, `"min"`, `"max"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GopOp {
    Sum,
    Min,
    Max,
    /// Maximum of absolute values (`GA`'s `"absmax"`).
    AbsMax,
}

/// `GA_Dgop`: element-wise reduction of an f64 vector across the group;
/// every member receives the result in place.
pub fn dgop(group: &ArmciGroup, x: &mut [f64], op: GopOp) {
    let vals: Vec<f64> = match op {
        GopOp::AbsMax => x.iter().map(|v| v.abs()).collect(),
        _ => x.to_vec(),
    };
    let rop = match op {
        GopOp::Sum => ReduceOp::Sum,
        GopOp::Min => ReduceOp::Min,
        GopOp::Max | GopOp::AbsMax => ReduceOp::Max,
    };
    let out = group.comm().allreduce_f64(rop, &vals);
    x.copy_from_slice(&out);
}

/// `GA_Igop`: element-wise reduction of an i64 vector across the group.
pub fn igop(group: &ArmciGroup, x: &mut [i64], op: GopOp) {
    let vals: Vec<i64> = match op {
        GopOp::AbsMax => x.iter().map(|v| v.abs()).collect(),
        _ => x.to_vec(),
    };
    let rop = match op {
        GopOp::Sum => ReduceOp::Sum,
        GopOp::Min => ReduceOp::Min,
        GopOp::Max | GopOp::AbsMax => ReduceOp::Max,
    };
    let out = group.comm().allreduce_i64(rop, &vals);
    x.copy_from_slice(&out);
}

/// `GA_Brdcst`: broadcasts `buf` from group rank `root` to every member
/// (in place on non-roots).
pub fn brdcst(group: &ArmciGroup, buf: &mut Vec<u8>, root: usize) {
    let payload = if group.rank() == root {
        Some(std::mem::take(buf))
    } else {
        None
    };
    *buf = group.comm().bcast_bytes(root, payload);
}

#[cfg(test)]
mod tests {
    // collective behaviour is exercised in `tests/ga_gop.rs`; this module
    // checks the pure operator mapping
    use super::GopOp;

    #[test]
    fn op_enum_is_compact() {
        assert_eq!(std::mem::size_of::<GopOp>(), 1);
    }
}
