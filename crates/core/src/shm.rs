//! The intra-node shared-memory fast path (the §VIII-B outlook).
//!
//! With [`Config::shm`](crate::Config::shm) on, `ARMCI_Malloc` backs every
//! GMR with a per-node `MPI_Win_allocate_shared` slab instead of per-rank
//! window memory. At execute time the engine consults the window's
//! `shm_reachable` route predicate: plans whose target is a node peer run
//! here — the payload moves as a direct load/store/accumulate on the slab,
//! bracketed by `win_sync` under the ordinary epoch discipline — while
//! plans whose target lives on another node flow through the wire path
//! unchanged. The route is per-plan and invisible to callers: same epoch
//! accounting, same operation statistics, same error surface; only the
//! transport (and its two-tier cost) differs. [`StageStats`] records the
//! split as `shm_hits` / `shm_bypass_bytes`.
//!
//! Errors from the slab funnel through [`ArmciError::backing_lost`]: a
//! freed window under a live section surfaces as `ShmDetached` instead of
//! a stale-base-pointer dereference.

use crate::engine::{ExecBuf, PlannedOp, TransferPlan};
use crate::gmr::Gmr;
use crate::transport::Transport;
use crate::ArmciMpi;
use armci::{ArmciError, ArmciResult};
use mpisim::AccOp;

impl ArmciMpi {
    /// Plan-time route decision: does `plan` run on the node slab? True
    /// only when the shm subsystem is enabled, the GMR is slab-backed, and
    /// the target rank shares this rank's node.
    pub(crate) fn plan_shm_routable(&self, plan: &TransferPlan) -> bool {
        self.cfg.shm
            && self
                .gmrs
                .borrow()
                .get(&plan.gmr)
                .is_some_and(|g| g.win.shm_reachable(plan.target))
    }

    /// Maps a slab error through the single backing-lost funnel.
    pub(crate) fn shm_err(gmr: u64, e: mpisim::MpiError) -> ArmciError {
        ArmciError::backing_lost(gmr, Some(e))
    }

    /// Runs one plan over the node slab: acquire the plan's epoch, enter
    /// `win_sync` coherence, move every operation as node-local
    /// load/store, `win_sync` again, release. The cost charged is the
    /// platform's shm tier plus one lock overhead — the NIC model is never
    /// consulted, and the bypassed bytes are counted in [`StageStats`].
    pub(crate) fn run_plan_shm(&self, plan: &TransferPlan, buf: &ExecBuf) -> ArmciResult<()> {
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&plan.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(plan.gmr))?;
        // acquire: the plan's epoch plus entry into win_sync coherence
        let t0 = self.vnow();
        self.epoch_begin_via(&self.shm_tx, gmr, plan.target, plan.mode)?;
        let sync_in = gmr.win.win_sync().map_err(|e| Self::shm_err(plan.gmr, e));
        let t1 = self.vnow();
        // execute: node-local copies charged by the shm transport as they
        // issue, plus one lock overhead (the epoch is closed even when an
        // operation fails, as on the wire path)
        let mut issued = 0u64;
        let mut bytes = 0u64;
        self.charge(self.world.platform().shm.lock_overhead);
        let mut res = sync_in;
        if res.is_ok() {
            for op in &plan.ops {
                match self.shm_issue_op(gmr, plan.target, op, buf) {
                    Ok(()) => {
                        issued += 1;
                        bytes += op.bytes;
                    }
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
            }
        }
        let t2 = self.vnow();
        // complete: leave coherence, close the epoch
        let end = gmr
            .win
            .win_sync()
            .map_err(|e| Self::shm_err(plan.gmr, e))
            .and_then(|()| self.epoch_end_via(&self.shm_tx, gmr, plan.target));
        let t3 = self.vnow();
        self.stage(|g| {
            g.acquires += 1;
            g.completes += 1;
            g.shm_hits += issued;
            g.shm_bypass_bytes += bytes;
            g.acquire_s += t1 - t0;
            g.execute_s += t2 - t1;
            g.complete_s += t3 - t2;
        });
        obs::batch(|b| {
            b.span(
                obs::EventKind::Stage {
                    stage: "acquire",
                    gmr: plan.gmr,
                },
                t0,
                t1,
            );
            b.span(
                obs::EventKind::Stage {
                    stage: "execute",
                    gmr: plan.gmr,
                },
                t1,
                t2,
            );
            b.span(
                obs::EventKind::Stage {
                    stage: "complete",
                    gmr: plan.gmr,
                },
                t2,
                t3,
            );
            b.span(
                obs::EventKind::Op {
                    name: Self::exec_name(buf),
                    gmr: plan.gmr,
                    bytes: plan.ops.iter().map(|o| o.bytes).sum(),
                },
                t0,
                t3,
            );
        });
        end?;
        res
    }

    /// Issues one planned operation through the shm transport (which
    /// charges its shm-tier cost as it moves). Operation statistics count
    /// exactly as on the wire path — the route changes the transport, not
    /// the op.
    fn shm_issue_op(
        &self,
        gmr: &Gmr,
        target: usize,
        op: &PlannedOp,
        buf: &ExecBuf,
    ) -> ArmciResult<()> {
        match *buf {
            ExecBuf::Get(ptr, len) => {
                // Safety: see `issue_op` — the pointer covers `len` bytes
                // for the duration of the call and the planner keeps every
                // datatype within bounds.
                let b = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
                self.shm_tx
                    .get(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)
                    .map_err(|e| Self::shm_err(gmr.id, e))?;
                self.stat(|s| {
                    s.gets += 1;
                    s.bytes_got += op.bytes;
                });
            }
            ExecBuf::Put(ptr, len) => {
                // Safety: as above, read-only.
                let b = unsafe { std::slice::from_raw_parts(ptr, len) };
                self.shm_tx
                    .put(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)
                    .map_err(|e| Self::shm_err(gmr.id, e))?;
                self.stat(|s| {
                    s.puts += 1;
                    s.bytes_put += op.bytes;
                });
            }
            ExecBuf::Acc(staged, elem) => {
                self.shm_tx
                    .accumulate(
                        &gmr.win,
                        staged,
                        &op.odt,
                        target,
                        op.tdisp,
                        &op.tdt,
                        elem,
                        AccOp::Sum,
                    )
                    .map_err(|e| Self::shm_err(gmr.id, e))?;
                self.stat(|s| {
                    s.accs += 1;
                    s.bytes_acc += op.bytes;
                });
            }
        };
        Ok(())
    }

    /// `ARMCI_Access_begin/end` on a *node peer's* slice — the §V-E
    /// extension the slab makes legal. The peer's section is staged
    /// through a pooled scratch lease: loaded under `win_sync` coherence,
    /// exposed to the closure, and (for mutable access) stored back before
    /// coherence is left and the epoch closes. `write` selects the
    /// exclusive/shared lock exactly like local direct access.
    pub(crate) fn access_peer_impl(
        &self,
        addr: armci::GlobalAddr,
        len: usize,
        write: bool,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()> {
        use mpisim::LockMode;
        // Serialise behind outstanding nonblocking operations, like every
        // direct-access entry point.
        self.nb_quiesce()?;
        let tr = self.translate(addr, len)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        if !self.cfg.shm || !gmr.win.shm_reachable(tr.group_rank) {
            return Err(ArmciError::BadDescriptor(format!(
                "direct access to remote process {} from {}",
                addr.rank,
                self.world.rank()
            )));
        }
        let sec = gmr
            .win
            .shared_query(tr.group_rank)
            .map_err(|e| Self::shm_err(tr.gmr, e))?;
        let shm = self.world.platform().shm.clone();
        // Mutual-exclusion bracketing belongs to the transport: a standing
        // lock_all epoch (MPI-3 epochless) already covers peer access;
        // otherwise the window is locked for the section's duration.
        let mode = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        self.shm_tx
            .atomic_epoch_begin(&gmr.win, tr.group_rank, mode)?;
        gmr.win.win_sync().map_err(|e| Self::shm_err(tr.gmr, e))?;
        self.dla_begin(tr.gmr, write);
        let mut buf = self.scratch(len);
        let res = sec
            .load(tr.disp, &mut buf)
            .map_err(|e| Self::shm_err(tr.gmr, e))
            .and_then(|()| {
                self.charge(shm.op_cost(simnet::Op::Get, len, 1));
                f(&mut buf);
                if write {
                    sec.store(tr.disp, &buf)
                        .map_err(|e| Self::shm_err(tr.gmr, e))?;
                    self.charge(shm.op_cost(simnet::Op::Put, len, 1));
                }
                Ok(())
            });
        self.dla_end(tr.gmr);
        let end = gmr
            .win
            .win_sync()
            .map_err(|e| Self::shm_err(tr.gmr, e))
            .and_then(|()| {
                self.shm_tx
                    .atomic_epoch_end(&gmr.win, tr.group_rank)
                    .map_err(ArmciError::from)
            });
        end?;
        res
    }
}
