//! The unified transfer engine.
//!
//! Every data-movement path in ARMCI-MPI — contiguous, IOV, strided, RMW
//! staging — runs through one explicit four-stage pipeline:
//!
//! 1. **plan** — address translation (§V-A), strided/IOV method selection
//!    (§VI-A), the conflict-tree scan of the auto method (§VI-B), and
//!    lock-mode selection from the GMR's access-mode hint (§VIII-A). The
//!    output is a list of [`TransferPlan`]s: one access epoch each, holding
//!    one or more RMA operations with fully-resolved datatypes.
//! 2. **acquire** — opening the access context: a passive-target lock in
//!    MPI-2 mode (one epoch per plan, §V-C), nothing in MPI-3 epochless
//!    mode where the window-wide `lock_all` epoch is already open
//!    (§VIII-B(2)).
//! 3. **execute** — issuing the operations: `put`/`get`/`accumulate` with
//!    contiguous, indexed or subarray datatypes. Operations after the
//!    first in an epoch pipeline (the batched-method win, §VI-A).
//! 4. **complete** — `unlock` (MPI-2) or `flush` (MPI-3), statistics, and
//!    virtual-time accounting.
//!
//! Nonblocking operations run the same plans through the request-based
//! path: the execute stage issues `rput`/`rget`/`racc` (§VIII-B(3)) and
//! the complete stage is deferred to `ARMCI_Wait`. Consecutive
//! nonblocking operations to the same `(GMR, target)` pair coalesce into
//! one **aggregate epoch** — the engine-level realisation of ARMCI's
//! aggregate handles — so a train of small operations pays one epoch and
//! pipelines on the wire. In MPI-2 mode at most one aggregate epoch is
//! open at a time (opening a second target completes the first), which
//! keeps the hold-and-wait deadlock impossible; in epochless mode no
//! per-target lock is held at all and any number of targets may have
//! operations in flight concurrently.
//!
//! # The coalescing scheduler
//!
//! With [`CoalesceMode`] other than `PerOp` (the default is `Auto`), the
//! nonblocking path goes one step further than epoch aggregation: queued
//! operations are *merged*. Payload bytes still move at enqueue (through
//! the window's `stage_*` movers, so no raw caller pointer outlives the
//! call), but the wire operations themselves are deferred into a
//! per-`(GMR, target)` queue. At flush the queue is walked in program
//! order and split into **runs** of same-class operations (all-get,
//! all-put, or all-accumulate with one element type) whose target
//! segments the [`ctree`] conflict scan proves disjoint; each run is
//! issued as **one** MPI operation whose target datatype is the
//! adjacency-merged segment list, under **one** coarsened epoch per
//! flush (shared-lock when the §VIII-A access-mode hint allows it,
//! `flush`-completed under `lock_all` on the MPI-3 path). Operations
//! that would conflict fall back to one wire operation each — never
//! merged, still inside the coarsened epoch. An online [`CostModel`]
//! fed by observed issue costs arbitrates `Auto` between the merged
//! datatype and the batched per-op issue shape.

use crate::gmr::Gmr;
use crate::ops::OpClass;
use crate::transport;
use crate::ArmciMpi;
use armci::{ArmciError, ArmciResult, GlobalAddr, IovDesc, NbHandle, StridedMethod};
use mpisim::mpi3::RmaRequest;
use mpisim::{AccOp, Datatype, ElemType, LockMode, RmaClass};
use std::collections::HashSet;

/// How the scheduler issues queued nonblocking operations at flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalesceMode {
    /// Legacy behaviour: one request-based wire operation per queued
    /// operation, issued at enqueue inside the aggregate epoch.
    PerOp,
    /// Coarsened epochs, one wire operation per queued operation
    /// (the §VI-A batched shape).
    Batched,
    /// Coarsened epochs, runs merged into single wire operations with
    /// indexed datatypes (the §VI-A direct-datatype shape).
    Datatype,
    /// Pick `Batched` or `Datatype` per run with the online [`CostModel`];
    /// behaves like `Datatype` until the model has seen enough issues.
    #[default]
    Auto,
}

/// Exponentially-weighted online estimate of the platform's issue-cost
/// primitives, learned from the costs the simulator actually charges.
/// Drives the [`CoalesceMode::Auto`] decision: merging a run into one
/// datatype operation trades per-operation overhead for per-segment
/// datatype overhead, and which side wins is a platform property the
/// engine should not hard-code.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CostModel {
    /// Fixed cost of one wire operation (s).
    op_s: f64,
    /// Incremental cost of one datatype segment (s).
    seg_s: f64,
    /// Per-byte wire cost (s/B).
    byte_s: f64,
    /// Issues observed so far.
    obs: u64,
}

impl CostModel {
    const ALPHA: f64 = 0.25;
    /// Observations before `Auto` trusts the estimates.
    const WARM: u64 = 8;

    fn ewma(slot: &mut f64, sample: f64) {
        *slot = if *slot == 0.0 {
            sample
        } else {
            (1.0 - Self::ALPHA) * *slot + Self::ALPHA * sample
        };
    }

    /// Folds one observed issue: `cost` seconds for an operation moving
    /// `bytes` across `nsegs` target segments.
    pub(crate) fn observe(&mut self, cost: f64, bytes: u64, nsegs: usize) {
        self.obs += 1;
        let byte_part = self.byte_s * bytes as f64;
        if nsegs <= 1 {
            Self::ewma(&mut self.op_s, (cost - byte_part).max(0.0));
        } else {
            let fixed = self.op_s + byte_part;
            Self::ewma(&mut self.seg_s, ((cost - fixed) / nsegs as f64).max(0.0));
        }
        if bytes > 0 {
            let seg_part = if nsegs > 1 {
                self.seg_s * nsegs as f64
            } else {
                0.0
            };
            Self::ewma(
                &mut self.byte_s,
                (cost - self.op_s - seg_part).max(0.0) / bytes as f64,
            );
        }
    }

    /// Predicted cost of issuing a run as one merged datatype operation
    /// over `nsegs` merged segments.
    fn datatype_cost(&self, bytes: u64, nsegs: usize) -> f64 {
        let seg = if nsegs > 1 {
            self.seg_s * nsegs as f64
        } else {
            0.0
        };
        self.op_s + self.byte_s * bytes as f64 + seg
    }

    /// Predicted cost of issuing a run as `ops` separate wire operations.
    fn batched_cost(&self, bytes: u64, ops: usize) -> f64 {
        self.op_s * ops as f64 + self.byte_s * bytes as f64
    }

    /// `true` once enough issues were observed for `Auto` to decide.
    fn warm(&self) -> bool {
        self.obs >= Self::WARM
    }

    /// The `Auto` decision: merge the run into one datatype operation?
    fn prefer_merged(&self, bytes: u64, ops: usize, merged_segs: usize) -> bool {
        !self.warm() || self.datatype_cost(bytes, merged_segs) <= self.batched_cost(bytes, ops)
    }
}

/// Per-stage counters and virtual-time totals for the transfer engine.
/// Complements [`crate::OpStats`] (which counts MPI-level operations)
/// with pipeline-level accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Transfer plans produced (one access epoch each).
    pub plans: u64,
    /// RMA operations contained in those plans.
    pub planned_ops: u64,
    /// Access contexts opened (epoch locks in MPI-2 mode; aggregate-epoch
    /// entries under `lock_all` in epochless mode).
    pub acquires: u64,
    /// RMA operations issued by the execute stage (blocking and
    /// request-based combined).
    pub executed_ops: u64,
    /// Access contexts completed (unlock or flush).
    pub completes: u64,
    /// Operations issued through the nonblocking (request-based) path.
    pub nb_submitted: u64,
    /// Nonblocking operations that joined an already-open aggregate epoch
    /// instead of paying for a new one.
    pub nb_aggregated: u64,
    /// `ARMCI_Wait`/`ARMCI_WaitAll` resolutions.
    pub nb_waits: u64,
    /// Scratch-pool leases served from already-registered memory.
    pub pool_hits: u64,
    /// Scratch-pool leases that pinned fresh pages at first touch.
    pub pool_misses: u64,
    /// Virtual seconds charged for on-demand scratch registration.
    pub pool_reg_s: f64,
    /// Operations queued by the coalescing scheduler.
    pub sched_enqueued: u64,
    /// Scheduler queue flushes (one coarsened epoch each).
    pub sched_flushes: u64,
    /// Wire operations the scheduler actually issued (merged runs plus
    /// batched/fallback per-op issues).
    pub sched_runs: u64,
    /// Target segments entering the merger across all flushed runs.
    pub sched_segs_in: u64,
    /// Target segments left after adjacency merging.
    pub sched_segs_out: u64,
    /// Committed-datatype cache hits (folded from the windows by
    /// [`crate::ArmciMpi::stage_stats`]; zero in a raw snapshot).
    pub dtype_hits: u64,
    /// Committed-datatype cache misses (folded likewise).
    pub dtype_misses: u64,
    /// Operations routed through the intra-node shared-memory fast path
    /// instead of the wire (one count per planned operation).
    pub shm_hits: u64,
    /// Payload bytes those operations moved as node-local load/store —
    /// bytes that never touched the NIC model.
    pub shm_bypass_bytes: u64,
    /// Virtual seconds spent in the plan stage (method selection,
    /// conflict-tree scans).
    pub plan_s: f64,
    /// Virtual seconds spent acquiring access epochs.
    pub acquire_s: f64,
    /// Virtual seconds spent issuing operations (for blocking operations
    /// this includes the wire transfer).
    pub execute_s: f64,
    /// Virtual seconds spent completing epochs (unlock/flush and deferred
    /// request completion).
    pub complete_s: f64,
}

impl StageStats {
    /// Field-wise difference `self − earlier`: the activity between two
    /// snapshots taken with [`crate::ArmciMpi::stage_stats`]. Lets a
    /// harness carve phases out of the running totals without resetting
    /// them (and losing the cumulative view).
    pub fn delta(&self, earlier: &StageStats) -> StageStats {
        StageStats {
            plans: self.plans - earlier.plans,
            planned_ops: self.planned_ops - earlier.planned_ops,
            acquires: self.acquires - earlier.acquires,
            executed_ops: self.executed_ops - earlier.executed_ops,
            completes: self.completes - earlier.completes,
            nb_submitted: self.nb_submitted - earlier.nb_submitted,
            nb_aggregated: self.nb_aggregated - earlier.nb_aggregated,
            nb_waits: self.nb_waits - earlier.nb_waits,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            pool_reg_s: self.pool_reg_s - earlier.pool_reg_s,
            sched_enqueued: self.sched_enqueued - earlier.sched_enqueued,
            sched_flushes: self.sched_flushes - earlier.sched_flushes,
            sched_runs: self.sched_runs - earlier.sched_runs,
            sched_segs_in: self.sched_segs_in - earlier.sched_segs_in,
            sched_segs_out: self.sched_segs_out - earlier.sched_segs_out,
            dtype_hits: self.dtype_hits - earlier.dtype_hits,
            dtype_misses: self.dtype_misses - earlier.dtype_misses,
            shm_hits: self.shm_hits - earlier.shm_hits,
            shm_bypass_bytes: self.shm_bypass_bytes - earlier.shm_bypass_bytes,
            plan_s: self.plan_s - earlier.plan_s,
            acquire_s: self.acquire_s - earlier.acquire_s,
            execute_s: self.execute_s - earlier.execute_s,
            complete_s: self.complete_s - earlier.complete_s,
        }
    }

    /// Fraction of scratch-pool leases served from registered memory
    /// (0.0 when the pool was never used).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    /// Queued operations the scheduler merged away (wire operations it
    /// did *not* issue thanks to run merging).
    pub fn sched_ops_merged(&self) -> u64 {
        self.sched_enqueued.saturating_sub(self.sched_runs)
    }

    /// Epochs the scheduler saved against the per-op discipline: each
    /// queued operation would have paid its own epoch, the scheduler paid
    /// one coarsened epoch per flush.
    pub fn sched_epochs_saved(&self) -> u64 {
        self.sched_enqueued.saturating_sub(self.sched_flushes)
    }

    /// Fraction of issued operations that took the intra-node
    /// shared-memory route instead of the wire (0.0 when nothing issued).
    pub fn shm_hit_rate(&self) -> f64 {
        let total = self.shm_hits + self.executed_ops;
        if total == 0 {
            return 0.0;
        }
        self.shm_hits as f64 / total as f64
    }

    /// Committed-datatype cache hit rate (0.0 when never consulted).
    pub fn dtype_hit_rate(&self) -> f64 {
        let total = self.dtype_hits + self.dtype_misses;
        if total == 0 {
            return 0.0;
        }
        self.dtype_hits as f64 / total as f64
    }
}

/// One RMA operation within a plan: both datatypes fully resolved. Origin
/// datatype offsets are absolute within the execute-stage buffer (the
/// caller's local buffer for put/get, the pre-scaled staging buffer for
/// accumulates).
pub(crate) struct PlannedOp {
    pub odt: Datatype,
    pub tdisp: usize,
    pub tdt: Datatype,
    /// Payload bytes this operation moves (statistics).
    pub bytes: u64,
}

/// A unit of acquire/execute/complete work: one access epoch on one
/// `(GMR, target)` pair carrying one or more operations.
pub(crate) struct TransferPlan {
    pub gmr: u64,
    /// Target rank within the GMR's group.
    pub target: usize,
    pub mode: LockMode,
    pub ops: Vec<PlannedOp>,
}

/// The buffer the execute stage moves data against. Raw pointers (not
/// slices) because IOV descriptors address disjoint pieces of one caller
/// buffer that may also be the *source* of a get (`&mut` would alias).
pub(crate) enum ExecBuf<'a> {
    /// Destination of a get: base pointer and length of the local buffer.
    Get(*mut u8, usize),
    /// Source of a put.
    Put(*const u8, usize),
    /// Pre-scaled contiguous staging buffer for an accumulate, plus the
    /// MPI element type of the wire operation.
    Acc(&'a [u8], ElemType),
}

/// An open nonblocking aggregate epoch: operations to one `(GMR, target)`
/// pair whose completion has been deferred to `ARMCI_Wait`.
/// What an operation does to its target ranges, for MPI-2 aggregation
/// conflict checks (mirrors the simulator's epoch access rules:
/// overlapping gets are fine, overlapping same-type accumulates are
/// fine, everything else conflicts).
#[derive(Clone, Copy, PartialEq)]
enum NbKind {
    Get,
    Put,
    Acc(ElemType),
}

impl NbKind {
    fn compatible(self, other: NbKind) -> bool {
        match (self, other) {
            (NbKind::Get, NbKind::Get) => true,
            (NbKind::Acc(a), NbKind::Acc(b)) => a == b,
            _ => false,
        }
    }

    /// The wire class a scheduler run of this kind issues as (engine
    /// accumulates are always MPI `SUM`; scaling happened at staging).
    fn rma_class(self) -> RmaClass {
        match self {
            NbKind::Get => RmaClass::Get,
            NbKind::Put => RmaClass::Put,
            NbKind::Acc(elem) => RmaClass::Acc(elem, AccOp::Sum),
        }
    }
}

/// Do any of the new target ranges overlap an already-issued range with
/// an incompatible access kind?
fn conflicts(issued: &[(usize, usize, NbKind)], new: &[(usize, usize, NbKind)]) -> bool {
    new.iter().any(|&(lo, hi, k)| {
        issued
            .iter()
            .any(|&(ilo, ihi, ik)| lo < ihi && ilo < hi && !k.compatible(ik))
    })
}

/// Splits queued operations (kept in program order) into maximal runs of
/// same-class operations whose combined target segments the conflict
/// tree proves disjoint — the precondition for merging a run into one
/// wire operation. An operation that would overlap its run (or change
/// class) starts a new run: the conservative per-op fallback, which
/// preserves program order because MPI executes the flush's operations
/// in issue order within one epoch.
fn form_runs(ops: &[QueuedOp]) -> Vec<Vec<usize>> {
    let mut runs: Vec<Vec<usize>> = Vec::new();
    let mut segs: Vec<(usize, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(run) = runs.last_mut() {
            if ops[run[0]].kind == op.kind {
                let mut cand = segs.clone();
                cand.extend(op.segs.iter().copied());
                if ctree::scan_segments(&cand).is_ok() {
                    run.push(i);
                    segs = cand;
                    continue;
                }
            }
        }
        segs = op.segs.clone();
        runs.push(vec![i]);
    }
    runs
}

struct NbEpoch {
    gmr: u64,
    target: usize,
    mode: LockMode,
    /// Handle ids with operations in this epoch.
    ids: Vec<u64>,
    /// In-flight request-based operations.
    reqs: Vec<RmaRequest>,
    /// Target byte ranges already issued in this epoch (MPI-2 mode only:
    /// a joining plan that would conflict forces a fresh epoch instead,
    /// because conflicting accesses within one epoch are erroneous).
    ranges: Vec<(usize, usize, NbKind)>,
}

/// One operation queued by the coalescing scheduler: payload already
/// moved, wire issue deferred to flush.
struct QueuedOp {
    kind: NbKind,
    /// Window-absolute target byte segments, in datatype order.
    segs: Vec<(usize, usize)>,
    /// Payload bytes (statistics).
    bytes: u64,
}

/// A per-`(GMR, target)` scheduler queue: the deferred-issue counterpart
/// of [`NbEpoch`]. No lock is held while the queue is open — the
/// coarsened epoch is acquired and released entirely inside the flush.
struct SchedQueue {
    gmr: u64,
    target: usize,
    mode: LockMode,
    /// Virtual time the queue opened; queued transfers are on the wire
    /// from here in epochless mode (under the standing `lock_all`), so
    /// flush-time completion is priced from this origin.
    t_open: f64,
    /// Handle ids with operations in this queue.
    ids: Vec<u64>,
    ops: Vec<QueuedOp>,
    /// Target byte ranges already queued (MPI-2 conflict check, exactly
    /// as for [`NbEpoch`]: the coarsened epoch is still one epoch, so
    /// conflicting accesses inside it would be erroneous).
    ranges: Vec<(usize, usize, NbKind)>,
}

/// Engine-side nonblocking state.
#[derive(Default)]
pub(crate) struct NbState {
    next_id: u64,
    open: Vec<NbEpoch>,
    /// Coalescing-scheduler queues (used when `Config::coalesce` is not
    /// `PerOp`; `open` stays empty then, and vice versa).
    queues: Vec<SchedQueue>,
    /// Online issue-cost estimates for [`CoalesceMode::Auto`].
    model: CostModel,
    /// Handle ids whose operations have completed (epoch closed) but whose
    /// `wait` has not been called yet.
    resolved: HashSet<u64>,
}

impl ArmciMpi {
    /// This rank's virtual clock (stage timing).
    pub(crate) fn vnow(&self) -> f64 {
        self.world.clock_now()
    }

    pub(crate) fn stage(&self, f: impl FnOnce(&mut StageStats)) {
        f(&mut self.stage_stats.borrow_mut());
    }

    fn note_plans(&self, t0: f64, plans: &[TransferPlan]) {
        let t1 = self.vnow();
        let ops: u64 = plans.iter().map(|p| p.ops.len() as u64).sum();
        self.stage(|g| {
            g.plans += plans.len() as u64;
            g.planned_ops += ops;
            g.plan_s += t1 - t0;
        });
        if obs::enabled() {
            obs::span(
                obs::EventKind::Stage {
                    stage: "plan",
                    gmr: plans.first().map(|p| p.gmr).unwrap_or(0),
                },
                t0,
                t1,
            );
        }
    }

    /// Lock mode for an operation of `class` against `gmr_id`, derived
    /// from the GMR's access-mode hint (§VIII-A). Errors when the
    /// operation contradicts the hint.
    fn mode_for_gmr(&self, gmr_id: u64, class: OpClass) -> ArmciResult<LockMode> {
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&gmr_id)
            .ok_or_else(|| crate::gmr::gmr_vanished(gmr_id))?;
        self.lock_mode_for(gmr_id, gmr.mode.get(), class)
    }

    // ------------------------------------------------------------------
    // Plan stage
    // ------------------------------------------------------------------

    /// Plans a contiguous transfer: one epoch, one operation.
    pub(crate) fn plan_contiguous(
        &self,
        class: OpClass,
        remote: GlobalAddr,
        len: usize,
    ) -> ArmciResult<TransferPlan> {
        let t0 = self.vnow();
        let tr = self.translate(remote, len)?;
        let mode = self.mode_for_gmr(tr.gmr, class)?;
        let plan = Self::single_plan(tr.gmr, tr.group_rank, mode, len, tr.disp);
        self.note_plans(t0, std::slice::from_ref(&plan));
        Ok(plan)
    }

    /// Plans a contiguous transfer with an explicit lock mode (the RMW
    /// protocol's read/write epochs are always exclusive, §V-D).
    pub(crate) fn plan_fixed(
        &self,
        remote: GlobalAddr,
        len: usize,
        mode: LockMode,
    ) -> ArmciResult<TransferPlan> {
        let t0 = self.vnow();
        let tr = self.translate(remote, len)?;
        let plan = Self::single_plan(tr.gmr, tr.group_rank, mode, len, tr.disp);
        self.note_plans(t0, std::slice::from_ref(&plan));
        Ok(plan)
    }

    fn single_plan(
        gmr: u64,
        target: usize,
        mode: LockMode,
        len: usize,
        disp: usize,
    ) -> TransferPlan {
        let dt = Datatype::contiguous(len);
        TransferPlan {
            gmr,
            target,
            mode,
            ops: vec![PlannedOp {
                odt: dt.clone(),
                tdisp: disp,
                tdt: dt,
                bytes: len as u64,
            }],
        }
    }

    /// Resolves every IOV segment, requiring a single common GMR (the
    /// batched/datatype prerequisite). Errors if segments span allocations.
    pub(crate) fn resolve_single_gmr(
        &self,
        desc: &IovDesc,
    ) -> ArmciResult<(u64, usize, Vec<usize>)> {
        let mut gmr_id = None;
        let mut group_rank = 0usize;
        let mut disps = Vec::with_capacity(desc.len());
        for &addr in &desc.remote_addrs {
            let tr = self.translate(GlobalAddr::new(desc.rank, addr), desc.bytes)?;
            match gmr_id {
                None => {
                    gmr_id = Some(tr.gmr);
                    group_rank = tr.group_rank;
                }
                Some(id) if id != tr.gmr => {
                    return Err(ArmciError::BadDescriptor(
                        "IOV segments span multiple GMRs".into(),
                    ))
                }
                _ => {}
            }
            disps.push(tr.disp);
        }
        let id = gmr_id.ok_or_else(|| ArmciError::BadDescriptor("empty IOV".into()))?;
        Ok((id, group_rank, disps))
    }

    /// Origin-side byte offset of segment `i`: into the caller's buffer
    /// for put/get, into the gathered staging buffer (segment order) for
    /// accumulates.
    fn seg_off(desc: &IovDesc, staged: bool, i: usize) -> usize {
        if staged {
            i * desc.bytes
        } else {
            desc.local_offsets[i]
        }
    }

    /// Plans an IOV transfer with the given §VI-A method. `staged` marks
    /// accumulate transfers whose origin is the contiguous pre-scaled
    /// staging buffer rather than the caller's scattered buffer.
    pub(crate) fn plan_iov(
        &self,
        desc: &IovDesc,
        class: OpClass,
        staged: bool,
        method: StridedMethod,
    ) -> ArmciResult<Vec<TransferPlan>> {
        let t0 = self.vnow();
        let plans = match method {
            StridedMethod::IovConservative => self.plan_iov_conservative(desc, class, staged)?,
            StridedMethod::IovBatched { batch } => {
                self.plan_iov_batched(desc, class, staged, batch)?
            }
            StridedMethod::IovDatatype | StridedMethod::Direct => {
                vec![self.plan_iov_datatype(desc, class, staged)?]
            }
            StridedMethod::Auto => {
                // §VI-B: conflict-tree scan; datatype when the descriptor
                // is clean and single-GMR, conservative otherwise. The
                // O(N log N) scan is charged to the plan stage.
                let single = self.resolve_single_gmr(desc).is_ok();
                let clean = single && ctree::scan_segments(&desc.remote_segments()).is_ok();
                let n = desc.len().max(1) as f64;
                self.charge(4e-9 * n * n.log2().max(1.0));
                if clean {
                    vec![self.plan_iov_datatype(desc, class, staged)?]
                } else {
                    self.plan_iov_conservative(desc, class, staged)?
                }
            }
        };
        if obs::enabled() {
            let (name, fast) = match method {
                StridedMethod::IovConservative => ("iov_conservative", false),
                StridedMethod::IovBatched { .. } => ("iov_batched", false),
                StridedMethod::IovDatatype | StridedMethod::Direct => ("iov_datatype", true),
                // Auto elected the datatype method iff the conflict-tree
                // scan came back clean (one plan instead of one per segment).
                StridedMethod::Auto => ("iov_auto", plans.len() == 1),
            };
            obs::instant_at(obs::EventKind::Method { name, fast }, self.vnow());
        }
        self.note_plans(t0, &plans);
        Ok(plans)
    }

    /// Conservative method: one epoch per segment; segments may live in
    /// different GMRs and may overlap.
    fn plan_iov_conservative(
        &self,
        desc: &IovDesc,
        class: OpClass,
        staged: bool,
    ) -> ArmciResult<Vec<TransferPlan>> {
        let mut plans = Vec::with_capacity(desc.len());
        for (i, &raddr) in desc.remote_addrs.iter().enumerate() {
            let tr = self.translate(GlobalAddr::new(desc.rank, raddr), desc.bytes)?;
            let mode = self.mode_for_gmr(tr.gmr, class)?;
            plans.push(TransferPlan {
                gmr: tr.gmr,
                target: tr.group_rank,
                mode,
                ops: vec![PlannedOp {
                    odt: Datatype::Indexed {
                        blocks: vec![(Self::seg_off(desc, staged, i), desc.bytes)],
                    },
                    tdisp: tr.disp,
                    tdt: Datatype::contiguous(desc.bytes),
                    bytes: desc.bytes as u64,
                }],
            });
        }
        Ok(plans)
    }

    /// Batched method: chunks of `batch` operations per epoch (0 =
    /// unlimited). Single GMR, disjoint segments.
    fn plan_iov_batched(
        &self,
        desc: &IovDesc,
        class: OpClass,
        staged: bool,
        batch: usize,
    ) -> ArmciResult<Vec<TransferPlan>> {
        let (gmr_id, group_rank, disps) = self.resolve_single_gmr(desc)?;
        let mode = self.mode_for_gmr(gmr_id, class)?;
        let chunk = if batch == 0 { desc.len() } else { batch };
        let mut plans = Vec::with_capacity(desc.len().div_ceil(chunk));
        let mut i = 0usize;
        while i < desc.len() {
            let end = (i + chunk).min(desc.len());
            let ops = (i..end)
                .map(|j| PlannedOp {
                    odt: Datatype::Indexed {
                        blocks: vec![(Self::seg_off(desc, staged, j), desc.bytes)],
                    },
                    tdisp: disps[j],
                    tdt: Datatype::contiguous(desc.bytes),
                    bytes: desc.bytes as u64,
                })
                .collect();
            plans.push(TransferPlan {
                gmr: gmr_id,
                target: group_rank,
                mode,
                ops,
            });
            i = end;
        }
        Ok(plans)
    }

    /// Datatype method: two indexed datatypes, one operation, one epoch.
    fn plan_iov_datatype(
        &self,
        desc: &IovDesc,
        class: OpClass,
        staged: bool,
    ) -> ArmciResult<TransferPlan> {
        let (gmr_id, group_rank, disps) = self.resolve_single_gmr(desc)?;
        let mode = self.mode_for_gmr(gmr_id, class)?;
        let tdt = Datatype::Indexed {
            blocks: disps.iter().map(|&d| (d, desc.bytes)).collect(),
        };
        let odt = if staged {
            // pre-scaled staging buffer is contiguous in segment order
            Datatype::contiguous(desc.total_bytes())
        } else {
            Datatype::Indexed {
                blocks: desc
                    .local_offsets
                    .iter()
                    .map(|&o| (o, desc.bytes))
                    .collect(),
            }
        };
        Ok(TransferPlan {
            gmr: gmr_id,
            target: group_rank,
            mode,
            ops: vec![PlannedOp {
                odt,
                tdisp: 0,
                tdt,
                bytes: desc.total_bytes() as u64,
            }],
        })
    }

    /// Plans a direct strided transfer (§VI-C): subarray datatypes on both
    /// sides, one operation, one epoch. Returns `Ok(None)` when the shape
    /// cannot be expressed as subarrays (caller falls back to IOV).
    pub(crate) fn plan_strided_direct(
        &self,
        class: OpClass,
        local_len: usize,
        local_strides: &[usize],
        remote: GlobalAddr,
        remote_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<Option<TransferPlan>> {
        let t0 = self.vnow();
        let (Some(odt), Some(tdt)) = (
            armci::strided_to_subarray(local_strides, count),
            armci::strided_to_subarray(remote_strides, count),
        ) else {
            return Ok(None);
        };
        if odt.extent() > local_len {
            return Err(ArmciError::BadDescriptor(format!(
                "strided origin extent {} exceeds buffer {}",
                odt.extent(),
                local_len
            )));
        }
        let tr = self.translate(remote, armci::stride::extent(remote_strides, count))?;
        let mode = self.mode_for_gmr(tr.gmr, class)?;
        let plan = TransferPlan {
            gmr: tr.gmr,
            target: tr.group_rank,
            mode,
            ops: vec![PlannedOp {
                odt,
                tdisp: tr.disp,
                tdt,
                bytes: armci::stride::total_bytes(count) as u64,
            }],
        };
        self.note_plans(t0, std::slice::from_ref(&plan));
        Ok(Some(plan))
    }

    /// Plans a direct strided accumulate: contiguous pre-scaled staging
    /// buffer on the origin side, subarray datatype on the target side.
    /// The caller has already verified the target shape is
    /// subarray-expressible.
    pub(crate) fn plan_strided_direct_acc(
        &self,
        remote: GlobalAddr,
        remote_strides: &[usize],
        count: &[usize],
        staged_len: usize,
    ) -> ArmciResult<TransferPlan> {
        let t0 = self.vnow();
        let tdt = armci::strided_to_subarray(remote_strides, count)
            .expect("caller verified subarray-expressible shape");
        let tr = self.translate(remote, armci::stride::extent(remote_strides, count))?;
        let mode = self.mode_for_gmr(tr.gmr, OpClass::Acc)?;
        let plan = TransferPlan {
            gmr: tr.gmr,
            target: tr.group_rank,
            mode,
            ops: vec![PlannedOp {
                odt: Datatype::contiguous(staged_len),
                tdisp: tr.disp,
                tdt,
                bytes: armci::stride::total_bytes(count) as u64,
            }],
        };
        self.note_plans(t0, std::slice::from_ref(&plan));
        Ok(plan)
    }

    // ------------------------------------------------------------------
    // Acquire / execute / complete — blocking path
    // ------------------------------------------------------------------

    /// Runs plans to completion. Outstanding nonblocking aggregate epochs
    /// are completed first, serialising blocking traffic (and §V-E1
    /// staging) behind in-flight nonblocking operations.
    pub(crate) fn run_plans(&self, plans: &[TransferPlan], buf: &ExecBuf) -> ArmciResult<()> {
        self.nb_quiesce()?;
        for plan in plans {
            self.run_plan(plan, buf)?;
        }
        Ok(())
    }

    fn run_plan(&self, plan: &TransferPlan, buf: &ExecBuf) -> ArmciResult<()> {
        // Plan-time route decision: a node-peer target on a slab-backed
        // window never touches the wire (crate::shm).
        if self.plan_shm_routable(plan) {
            return self.run_plan_shm(plan, buf);
        }
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&plan.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(plan.gmr))?;
        // acquire
        let t0 = self.vnow();
        self.epoch_begin(gmr, plan.target, plan.mode)?;
        let t1 = self.vnow();
        // execute (the epoch is closed even when an operation fails)
        let mut issued = 0u64;
        let mut res = Ok(());
        for op in &plan.ops {
            res = self.issue_op(gmr, plan.target, op, buf);
            if res.is_err() {
                break;
            }
            issued += 1;
        }
        let t2 = self.vnow();
        // complete
        let end = self.epoch_end(gmr, plan.target);
        let t3 = self.vnow();
        self.stage(|g| {
            g.acquires += 1;
            g.executed_ops += issued;
            g.completes += 1;
            g.acquire_s += t1 - t0;
            g.execute_s += t2 - t1;
            g.complete_s += t3 - t2;
        });
        obs::batch(|b| {
            b.span(
                obs::EventKind::Stage {
                    stage: "acquire",
                    gmr: plan.gmr,
                },
                t0,
                t1,
            );
            b.span(
                obs::EventKind::Stage {
                    stage: "execute",
                    gmr: plan.gmr,
                },
                t1,
                t2,
            );
            b.span(
                obs::EventKind::Stage {
                    stage: "complete",
                    gmr: plan.gmr,
                },
                t2,
                t3,
            );
            b.span(
                obs::EventKind::Op {
                    name: Self::exec_name(buf),
                    gmr: plan.gmr,
                    bytes: plan.ops.iter().map(|o| o.bytes).sum(),
                },
                t0,
                t3,
            );
        });
        end?;
        res
    }

    pub(crate) fn exec_name(buf: &ExecBuf) -> &'static str {
        match buf {
            ExecBuf::Get(..) => "get",
            ExecBuf::Put(..) => "put",
            ExecBuf::Acc(..) => "acc",
        }
    }

    /// Issues one planned operation inside an open access context.
    fn issue_op(&self, gmr: &Gmr, target: usize, op: &PlannedOp, buf: &ExecBuf) -> ArmciResult<()> {
        match *buf {
            ExecBuf::Get(ptr, len) => {
                // Safety: `ptr` covers `len` bytes for the duration of the
                // call and the planner keeps every datatype within bounds;
                // disjoint plans may address disjoint pieces of it.
                let b = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
                self.tx()
                    .get(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)?;
                self.stat(|s| {
                    s.gets += 1;
                    s.bytes_got += op.bytes;
                });
            }
            ExecBuf::Put(ptr, len) => {
                // Safety: as above, read-only.
                let b = unsafe { std::slice::from_raw_parts(ptr, len) };
                self.tx()
                    .put(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)?;
                self.stat(|s| {
                    s.puts += 1;
                    s.bytes_put += op.bytes;
                });
            }
            ExecBuf::Acc(staged, elem) => {
                self.tx().accumulate(
                    &gmr.win,
                    staged,
                    &op.odt,
                    target,
                    op.tdisp,
                    &op.tdt,
                    elem,
                    AccOp::Sum,
                )?;
                self.stat(|s| {
                    s.accs += 1;
                    s.bytes_acc += op.bytes;
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Acquire / execute — nonblocking (request-based) path
    // ------------------------------------------------------------------

    /// Runs plans through the request-based path and returns a deferred
    /// handle; completion happens at `ARMCI_Wait` (or at the next
    /// synchronisation point).
    pub(crate) fn nb_run_plans(
        &self,
        plans: Vec<TransferPlan>,
        buf: &ExecBuf,
    ) -> ArmciResult<NbHandle> {
        if plans.is_empty() {
            return Ok(NbHandle::eager());
        }
        // Intra-node plans bypass the RMA scheduler entirely: a node-local
        // copy has no wire latency to overlap, so deferring it buys
        // nothing. They complete eagerly through the shared-memory route
        // (after quiescing, exactly like the blocking path). Mixed plan
        // lists stay on the wire path as a unit so cross-plan ordering is
        // owned by one engine.
        if plans.iter().all(|p| self.plan_shm_routable(p)) {
            self.nb_quiesce()?;
            for plan in &plans {
                self.run_plan_shm(plan, buf)?;
            }
            return Ok(NbHandle::eager());
        }
        let id = {
            let mut nb = self.nb.borrow_mut();
            nb.next_id += 1;
            nb.next_id
        };
        if self.cfg.coalesce != CoalesceMode::PerOp {
            return self.sched_run_plans(plans, buf, id);
        }
        let kind = match *buf {
            ExecBuf::Get(..) => NbKind::Get,
            ExecBuf::Put(..) => NbKind::Put,
            ExecBuf::Acc(_, elem) => NbKind::Acc(elem),
        };
        for plan in plans {
            let t0 = self.vnow();
            // The plan's target byte ranges, for the aggregation conflict
            // check and the epoch's issued-range record.
            let plan_ranges: Vec<(usize, usize, NbKind)> = plan
                .ops
                .iter()
                .flat_map(|op| {
                    op.tdt
                        .segments()
                        .into_iter()
                        .map(move |(off, len)| (op.tdisp + off, op.tdisp + off + len, kind))
                })
                .collect();
            // acquire: join an open aggregate epoch on (gmr, target) or
            // open a new one. Without per-target epochs (MPI-3 epochless
            // under lock_all, or the channel backend) lock modes are
            // irrelevant. An MPI-2 epoch whose issued operations would
            // conflict with this plan (overlapping put/put, get/put,
            // mixed-type acc) cannot be joined — conflicting accesses
            // within one epoch are erroneous — so it is retired and a
            // fresh epoch opened.
            let per_op = self.tx.epoch_style() == transport::EpochStyle::PerOp;
            let found = self.nb.borrow().open.iter().position(|e| {
                e.gmr == plan.gmr
                    && e.target == plan.target
                    && (!per_op || (e.mode == plan.mode && !conflicts(&e.ranges, &plan_ranges)))
            });
            let idx = match found {
                Some(i) => {
                    self.stage(|g| g.nb_aggregated += plan.ops.len() as u64);
                    i
                }
                None => {
                    if per_op {
                        // Deadlock safety: opening a second MPI-2 aggregate
                        // epoch while one is held would be hold-and-wait;
                        // complete the outstanding one first.
                        self.nb_quiesce()?;
                        let gmrs = self.gmrs.borrow();
                        let gmr = gmrs
                            .get(&plan.gmr)
                            .ok_or_else(|| crate::gmr::gmr_vanished(plan.gmr))?;
                        self.epoch_begin(gmr, plan.target, plan.mode)?;
                        // Mark the lock as an aggregate epoch: the auditor
                        // exempts staging performed under it (§V-E1 applies
                        // to blocking epochs only).
                        obs::instant(obs::EventKind::NbEpochOpen {
                            win: plan.gmr,
                            target: plan.target as u32,
                        });
                    }
                    self.stage(|g| g.acquires += 1);
                    let mut nb = self.nb.borrow_mut();
                    nb.open.push(NbEpoch {
                        gmr: plan.gmr,
                        target: plan.target,
                        mode: plan.mode,
                        ids: Vec::new(),
                        reqs: Vec::new(),
                        ranges: Vec::new(),
                    });
                    nb.open.len() - 1
                }
            };
            let t1 = self.vnow();
            // execute: request-based issue; completion deferred.
            let mut reqs = Vec::with_capacity(plan.ops.len());
            {
                let gmrs = self.gmrs.borrow();
                let gmr = gmrs
                    .get(&plan.gmr)
                    .ok_or_else(|| crate::gmr::gmr_vanished(plan.gmr))?;
                for op in &plan.ops {
                    reqs.push(self.nb_issue_op(gmr, plan.target, op, buf)?);
                }
            }
            let t2 = self.vnow();
            self.stage(|g| {
                g.nb_submitted += reqs.len() as u64;
                g.executed_ops += reqs.len() as u64;
                g.acquire_s += t1 - t0;
                g.execute_s += t2 - t1;
            });
            obs::batch(|b| {
                b.span(
                    obs::EventKind::Stage {
                        stage: "acquire",
                        gmr: plan.gmr,
                    },
                    t0,
                    t1,
                );
                b.span(
                    obs::EventKind::Stage {
                        stage: "execute",
                        gmr: plan.gmr,
                    },
                    t1,
                    t2,
                );
                b.span(
                    obs::EventKind::Op {
                        name: match kind {
                            NbKind::Get => "nb_get",
                            NbKind::Put => "nb_put",
                            NbKind::Acc(_) => "nb_acc",
                        },
                        gmr: plan.gmr,
                        bytes: plan.ops.iter().map(|o| o.bytes).sum(),
                    },
                    t0,
                    t2,
                );
            });
            let mut nb = self.nb.borrow_mut();
            let ep = &mut nb.open[idx];
            ep.reqs.append(&mut reqs);
            ep.ids.push(id);
            ep.ranges.extend(plan_ranges);
        }
        Ok(NbHandle::deferred(id))
    }

    fn nb_issue_op(
        &self,
        gmr: &Gmr,
        target: usize,
        op: &PlannedOp,
        buf: &ExecBuf,
    ) -> ArmciResult<RmaRequest> {
        let req = match *buf {
            ExecBuf::Get(ptr, len) => {
                // Safety: see `issue_op`; the simulator moves bytes at
                // issue, only virtual-time completion is deferred, so the
                // borrow ends with this call.
                let b = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
                let r = self
                    .tx()
                    .rget(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)?;
                self.stat(|s| {
                    s.gets += 1;
                    s.bytes_got += op.bytes;
                });
                r
            }
            ExecBuf::Put(ptr, len) => {
                // Safety: as above, read-only.
                let b = unsafe { std::slice::from_raw_parts(ptr, len) };
                let r = self
                    .tx()
                    .rput(&gmr.win, b, &op.odt, target, op.tdisp, &op.tdt)?;
                self.stat(|s| {
                    s.puts += 1;
                    s.bytes_put += op.bytes;
                });
                r
            }
            ExecBuf::Acc(staged, elem) => {
                let r = self.tx().racc(
                    &gmr.win,
                    staged,
                    &op.odt,
                    target,
                    op.tdisp,
                    &op.tdt,
                    elem,
                    AccOp::Sum,
                )?;
                self.stat(|s| {
                    s.accs += 1;
                    s.bytes_acc += op.bytes;
                });
                r
            }
        };
        Ok(req)
    }

    // ------------------------------------------------------------------
    // The coalescing scheduler (enqueue / flush)
    // ------------------------------------------------------------------

    /// Enqueues plans on the coalescing scheduler: payload moves now
    /// (through the window's bounds-checked staging movers), wire issue
    /// and epoch accounting are deferred to the queue's flush.
    fn sched_run_plans(
        &self,
        plans: Vec<TransferPlan>,
        buf: &ExecBuf,
        id: u64,
    ) -> ArmciResult<NbHandle> {
        let kind = match *buf {
            ExecBuf::Get(..) => NbKind::Get,
            ExecBuf::Put(..) => NbKind::Put,
            ExecBuf::Acc(_, elem) => NbKind::Acc(elem),
        };
        let op_overhead = self.world.platform().mpi.op_overhead;
        for plan in plans {
            let t0 = self.vnow();
            let plan_ranges: Vec<(usize, usize, NbKind)> = plan
                .ops
                .iter()
                .flat_map(|op| {
                    op.tdt
                        .segments()
                        .into_iter()
                        .map(move |(off, len)| (op.tdisp + off, op.tdisp + off + len, kind))
                })
                .collect();
            // Join an open queue on (gmr, target) or open a new one. The
            // coarsened MPI-2 epoch is still *one* epoch, so a plan whose
            // ranges would conflict with queued operations cannot join —
            // the queue is flushed and a fresh one opened, exactly like
            // the per-op path splits its aggregate epoch.
            let per_op = self.tx.epoch_style() == transport::EpochStyle::PerOp;
            let found = self.nb.borrow().queues.iter().position(|q| {
                q.gmr == plan.gmr
                    && q.target == plan.target
                    && (!per_op || (q.mode == plan.mode && !conflicts(&q.ranges, &plan_ranges)))
            });
            let idx = match found {
                Some(i) => {
                    self.stage(|g| g.nb_aggregated += plan.ops.len() as u64);
                    i
                }
                None => {
                    if per_op {
                        // One coarsened MPI-2 epoch at a time: flushing
                        // everything outstanding before opening a new
                        // queue keeps hold-and-wait impossible (and is
                        // the only way to retire a conflicting queue on
                        // the same target).
                        self.nb_quiesce()?;
                    }
                    self.stage(|g| g.acquires += 1);
                    let t_open = self.vnow();
                    let mut nb = self.nb.borrow_mut();
                    nb.queues.push(SchedQueue {
                        gmr: plan.gmr,
                        target: plan.target,
                        mode: plan.mode,
                        t_open,
                        ids: Vec::new(),
                        ops: Vec::new(),
                        ranges: Vec::new(),
                    });
                    nb.queues.len() - 1
                }
            };
            // Move the payload eagerly; pricing waits for the flush.
            {
                let gmrs = self.gmrs.borrow();
                let gmr = gmrs
                    .get(&plan.gmr)
                    .ok_or_else(|| crate::gmr::gmr_vanished(plan.gmr))?;
                for op in &plan.ops {
                    self.sched_stage_op(gmr, plan.target, op, buf)?;
                }
            }
            // Software issue overhead per queued operation; the wire time
            // itself is charged when the flush prices the runs.
            self.charge(plan.ops.len() as f64 * op_overhead);
            let t1 = self.vnow();
            self.stage(|g| {
                g.nb_submitted += plan.ops.len() as u64;
                g.sched_enqueued += plan.ops.len() as u64;
                g.execute_s += t1 - t0;
            });
            obs::batch(|b| {
                b.span(
                    obs::EventKind::Stage {
                        stage: "execute",
                        gmr: plan.gmr,
                    },
                    t0,
                    t1,
                );
                b.span(
                    obs::EventKind::Op {
                        name: match kind {
                            NbKind::Get => "nb_get",
                            NbKind::Put => "nb_put",
                            NbKind::Acc(_) => "nb_acc",
                        },
                        gmr: plan.gmr,
                        bytes: plan.ops.iter().map(|o| o.bytes).sum(),
                    },
                    t0,
                    t1,
                );
            });
            let mut nb = self.nb.borrow_mut();
            let q = &mut nb.queues[idx];
            for op in &plan.ops {
                q.ops.push(QueuedOp {
                    kind,
                    segs: op
                        .tdt
                        .segments()
                        .into_iter()
                        .map(|(off, len)| (op.tdisp + off, len))
                        .collect(),
                    bytes: op.bytes,
                });
            }
            q.ids.push(id);
            q.ranges.extend(plan_ranges);
        }
        Ok(NbHandle::deferred(id))
    }

    /// Moves one planned operation's payload between the caller's buffer
    /// and the target window *now*, without wire pricing: a two-pointer
    /// walk pairs the origin datatype's segments with the target
    /// datatype's, splitting at whichever boundary comes first.
    fn sched_stage_op(
        &self,
        gmr: &Gmr,
        target: usize,
        op: &PlannedOp,
        buf: &ExecBuf,
    ) -> ArmciResult<()> {
        let osegs = op.odt.segments();
        let tsegs = op.tdt.segments();
        let (mut oi, mut ti) = (0usize, 0usize);
        let (mut opos, mut tpos) = (0usize, 0usize);
        while oi < osegs.len() && ti < tsegs.len() {
            let (ooff, olen) = osegs[oi];
            let (toff, tlen) = tsegs[ti];
            let len = (olen - opos).min(tlen - tpos);
            let o = ooff + opos;
            let t = op.tdisp + toff + tpos;
            match *buf {
                ExecBuf::Get(ptr, buflen) => {
                    // Safety: see `issue_op` — the pointer covers `buflen`
                    // bytes and the borrow ends with this call.
                    let b = unsafe { std::slice::from_raw_parts_mut(ptr, buflen) };
                    self.tx()
                        .stage_get(&gmr.win, &mut b[o..o + len], target, t)?;
                }
                ExecBuf::Put(ptr, buflen) => {
                    // Safety: as above, read-only.
                    let b = unsafe { std::slice::from_raw_parts(ptr, buflen) };
                    self.tx().stage_put(&gmr.win, &b[o..o + len], target, t)?;
                }
                ExecBuf::Acc(staged, elem) => {
                    self.tx().stage_acc(
                        &gmr.win,
                        &staged[o..o + len],
                        target,
                        t,
                        elem,
                        AccOp::Sum,
                    )?;
                }
            }
            opos += len;
            tpos += len;
            if opos == olen {
                oi += 1;
                opos = 0;
            }
            if tpos == tlen {
                ti += 1;
                tpos = 0;
            }
        }
        Ok(())
    }

    /// Flushes one scheduler queue: acquires the coarsened epoch (MPI-2),
    /// forms merged runs, issues them, prices the wire, and releases.
    fn sched_flush(&self, q: SchedQueue) -> ArmciResult<()> {
        let t0 = self.vnow();
        let segs_in: u64 = q.ops.iter().map(|o| o.segs.len() as u64).sum();
        let mut segs_out = 0u64;
        let mut wire_ops = 0u64;
        let mut res = Ok(());
        let end;
        {
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs
                .get(&q.gmr)
                .ok_or_else(|| crate::gmr::gmr_vanished(q.gmr))?;
            let per_op = self.tx.epoch_style() == transport::EpochStyle::PerOp;
            if per_op {
                self.epoch_begin(gmr, q.target, q.mode)?;
                obs::instant(obs::EventKind::NbEpochOpen {
                    win: q.gmr,
                    target: q.target as u32,
                });
            }
            let t1 = self.vnow();
            // Run formation re-runs the conflict-tree scan over the queued
            // segments; charge it like the plan stage charges its scan.
            let n = q.ops.len().max(1) as f64;
            self.charge(4e-9 * n * n.log2().max(1.0));
            let runs = form_runs(&q.ops);
            // Wire origin: transfers without a per-target epoch (standing
            // lock_all, or the free-running channel) have been on the wire
            // since enqueue; MPI-2 transfers cannot start before the
            // coarsened lock was granted.
            let mut wire_t = if per_op { t1 } else { q.t_open };
            'runs: for run in &runs {
                let kind = q.ops[run[0]].kind;
                let class = kind.rma_class();
                let bytes: u64 = run.iter().map(|&i| q.ops[i].bytes).sum();
                let all_segs: Vec<(usize, usize)> = run
                    .iter()
                    .flat_map(|&i| q.ops[i].segs.iter().copied())
                    .collect();
                let merged = ctree::merge_segments(&all_segs);
                let use_merged = match self.cfg.coalesce {
                    CoalesceMode::Datatype => true,
                    CoalesceMode::Batched => false,
                    // Cold model prefers the merged datatype (one op beats
                    // many on every platform the paper measures).
                    CoalesceMode::Auto => {
                        self.nb
                            .borrow()
                            .model
                            .prefer_merged(bytes, run.len(), merged.len())
                    }
                    CoalesceMode::PerOp => unreachable!("scheduler inactive in PerOp mode"),
                };
                if use_merged {
                    let cost = match self.tx().issue_merged(&gmr.win, class, q.target, &merged) {
                        Ok(c) => c,
                        Err(e) => {
                            res = Err(e.into());
                            break 'runs;
                        }
                    };
                    self.nb
                        .borrow_mut()
                        .model
                        .observe(cost, bytes, merged.len());
                    wire_t += cost;
                    segs_out += merged.len() as u64;
                    wire_ops += 1;
                    self.note_wire_op(kind, bytes);
                } else {
                    // Batched shape: one wire op per queued op (adjacent
                    // segments within an op still merge), pipelined under
                    // the one coarsened epoch.
                    for &i in run {
                        let op = &q.ops[i];
                        let segs = ctree::merge_segments(&op.segs);
                        let cost = match self.tx().issue_merged(&gmr.win, class, q.target, &segs) {
                            Ok(c) => c,
                            Err(e) => {
                                res = Err(e.into());
                                break 'runs;
                            }
                        };
                        self.nb
                            .borrow_mut()
                            .model
                            .observe(cost, op.bytes, segs.len());
                        wire_t += cost;
                        segs_out += segs.len() as u64;
                        wire_ops += 1;
                        self.note_wire_op(kind, op.bytes);
                    }
                }
            }
            let t2 = self.vnow();
            // Completion: the wire finishes at `wire_t`; advance there.
            if wire_t > t2 {
                self.charge(wire_t - t2);
            }
            end = self.epoch_end(gmr, q.target);
            let t3 = self.vnow();
            self.stage(|g| {
                g.completes += 1;
                g.executed_ops += wire_ops;
                g.sched_flushes += 1;
                g.sched_runs += wire_ops;
                g.sched_segs_in += segs_in;
                g.sched_segs_out += segs_out;
                g.acquire_s += t1 - t0;
                g.execute_s += t2 - t1;
                g.complete_s += t3 - t2;
            });
            if obs::enabled() {
                obs::batch(|b| {
                    b.instant_at(
                        obs::EventKind::SchedFlush {
                            win: q.gmr,
                            target: q.target as u32,
                            ops: q.ops.len() as u32,
                            runs: wire_ops as u32,
                            segs_in: segs_in as u32,
                            segs_out: segs_out as u32,
                        },
                        t2,
                    );
                    b.instant_at(
                        obs::EventKind::NbEpochClose {
                            win: q.gmr,
                            target: q.target as u32,
                        },
                        t3,
                    );
                    b.span(
                        obs::EventKind::Stage {
                            stage: "acquire",
                            gmr: q.gmr,
                        },
                        t0,
                        t1,
                    );
                    b.span(
                        obs::EventKind::Stage {
                            stage: "execute",
                            gmr: q.gmr,
                        },
                        t1,
                        t2,
                    );
                    b.span(
                        obs::EventKind::Stage {
                            stage: "complete",
                            gmr: q.gmr,
                        },
                        t2,
                        t3,
                    );
                });
            }
        }
        self.nb.borrow_mut().resolved.extend(q.ids.iter().copied());
        end?;
        res
    }

    /// Counts one wire operation in the per-class operation statistics
    /// (the scheduler's merged runs are what actually hits the wire).
    fn note_wire_op(&self, kind: NbKind, bytes: u64) {
        self.stat(|s| match kind {
            NbKind::Get => {
                s.gets += 1;
                s.bytes_got += bytes;
            }
            NbKind::Put => {
                s.puts += 1;
                s.bytes_put += bytes;
            }
            NbKind::Acc(_) => {
                s.accs += 1;
                s.bytes_acc += bytes;
            }
        });
    }

    // ------------------------------------------------------------------
    // Complete — nonblocking path
    // ------------------------------------------------------------------

    /// Completes every open aggregate epoch. Called by blocking transfers,
    /// direct local access, fences, barriers and collective memory
    /// operations: any synchronising call serialises against in-flight
    /// nonblocking operations instead of corrupting them.
    pub(crate) fn nb_quiesce(&self) -> ArmciResult<()> {
        let queues = std::mem::take(&mut self.nb.borrow_mut().queues);
        for q in queues {
            self.sched_flush(q)?;
        }
        let open = std::mem::take(&mut self.nb.borrow_mut().open);
        for ep in open {
            self.nb_complete_epoch(ep)?;
        }
        Ok(())
    }

    /// Completes only the open aggregate epochs that touch `gmr`. Used by
    /// RMW, whose atomicity guarantee is per-location: an RMW on the
    /// NXTVAL counter must not retire in-flight transfers on unrelated
    /// allocations (that would serialise the §VIII-B(3) overlap schedule).
    pub(crate) fn nb_quiesce_gmr(&self, gmr: u64) -> ArmciResult<()> {
        let (queues, epochs) = {
            let mut nb = self.nb.borrow_mut();
            let mut keep_q = Vec::new();
            let mut out_q = Vec::new();
            for q in std::mem::take(&mut nb.queues) {
                if q.gmr == gmr {
                    out_q.push(q);
                } else {
                    keep_q.push(q);
                }
            }
            nb.queues = keep_q;
            let mut keep = Vec::new();
            let mut out = Vec::new();
            for ep in std::mem::take(&mut nb.open) {
                if ep.gmr == gmr {
                    out.push(ep);
                } else {
                    keep.push(ep);
                }
            }
            nb.open = keep;
            (out_q, out)
        };
        for q in queues {
            self.sched_flush(q)?;
        }
        for ep in epochs {
            self.nb_complete_epoch(ep)?;
        }
        Ok(())
    }

    /// Quiesce for a native atomic on bytes `[lo, hi)` of `(gmr,
    /// target)`: retires only the in-flight nonblocking work the atomic
    /// actually orders against. Under a per-op (MPI-2) backend the
    /// atomic takes its own per-target lock, so every open aggregate
    /// epoch on the same `(gmr, target)` must retire first regardless of
    /// ranges; under the epochless and channel disciplines only
    /// range-overlapping work must complete (location consistency), and
    /// everything else stays in flight — §VIII-B(4)'s point that atomics
    /// need not serialise the overlap schedule.
    pub(crate) fn nb_quiesce_for_atomic(
        &self,
        gmr: u64,
        target: usize,
        lo: usize,
        hi: usize,
    ) -> ArmciResult<()> {
        let per_op = self.tx.epoch_style() == transport::EpochStyle::PerOp;
        let overlap = |ranges: &[(usize, usize, NbKind)]| {
            ranges.iter().any(|&(rlo, rhi, _)| lo < rhi && rlo < hi)
        };
        let (queues, epochs) = {
            let mut nb = self.nb.borrow_mut();
            let mut keep_q = Vec::new();
            let mut out_q = Vec::new();
            for q in std::mem::take(&mut nb.queues) {
                if q.gmr == gmr && q.target == target && overlap(&q.ranges) {
                    out_q.push(q);
                } else {
                    keep_q.push(q);
                }
            }
            nb.queues = keep_q;
            let mut keep = Vec::new();
            let mut out = Vec::new();
            for ep in std::mem::take(&mut nb.open) {
                if ep.gmr == gmr && ep.target == target && (per_op || overlap(&ep.ranges)) {
                    out.push(ep);
                } else {
                    keep.push(ep);
                }
            }
            nb.open = keep;
            (out_q, out)
        };
        for q in queues {
            self.sched_flush(q)?;
        }
        for ep in epochs {
            self.nb_complete_epoch(ep)?;
        }
        Ok(())
    }

    /// Attaches an in-flight atomic's completion request to the open
    /// aggregate epoch on `(gmr, target)` — creating one if necessary —
    /// and returns the deferred handle that retires it. Only meaningful
    /// for backends without per-target locks (`Flush` or `None` epoch
    /// styles): the standing `lock_all` (or the NIC) covers the access,
    /// so the RMW joins the same completion batch as coalesced data
    /// traffic instead of forcing its own exclusive epoch.
    pub(crate) fn nb_attach_atomic(&self, gmr: u64, target: usize, req: RmaRequest) -> NbHandle {
        let mut nb = self.nb.borrow_mut();
        nb.next_id += 1;
        let id = nb.next_id;
        let idx = match nb
            .open
            .iter()
            .position(|e| e.gmr == gmr && e.target == target)
        {
            Some(i) => {
                self.stage(|g| g.nb_aggregated += 1);
                i
            }
            None => {
                self.stage(|g| g.acquires += 1);
                nb.open.push(NbEpoch {
                    gmr,
                    target,
                    mode: LockMode::Shared,
                    ids: Vec::new(),
                    reqs: Vec::new(),
                    ranges: Vec::new(),
                });
                nb.open.len() - 1
            }
        };
        let ep = &mut nb.open[idx];
        ep.reqs.push(req);
        ep.ids.push(id);
        self.stage(|g| g.nb_submitted += 1);
        NbHandle::deferred(id)
    }

    /// Completes one aggregate epoch: waits all requests (advancing the
    /// virtual clock to the latest completion), then unlocks (MPI-2) or
    /// flushes (MPI-3).
    fn nb_complete_epoch(&self, ep: NbEpoch) -> ArmciResult<()> {
        let t0 = self.vnow();
        {
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs
                .get(&ep.gmr)
                .ok_or_else(|| crate::gmr::gmr_vanished(ep.gmr))?;
            for r in ep.reqs {
                self.tx().complete(&gmr.win, r);
            }
            self.epoch_end(gmr, ep.target)?;
        }
        self.nb.borrow_mut().resolved.extend(ep.ids);
        let t1 = self.vnow();
        self.stage(|g| {
            g.completes += 1;
            g.complete_s += t1 - t0;
        });
        if obs::enabled() {
            obs::instant(obs::EventKind::NbEpochClose {
                win: ep.gmr,
                target: ep.target as u32,
            });
            obs::span(
                obs::EventKind::Stage {
                    stage: "complete",
                    gmr: ep.gmr,
                },
                t0,
                t1,
            );
        }
        Ok(())
    }

    /// `ARMCI_Wait`: completes the aggregate epoch holding `handle`'s
    /// operations (a no-op for eagerly-completed or already-completed
    /// handles).
    pub(crate) fn nb_wait(&self, handle: NbHandle) -> ArmciResult<()> {
        self.stage(|g| g.nb_waits += 1);
        if handle.completed_eagerly {
            return Ok(());
        }
        let Some(id) = handle.id else {
            return Ok(());
        };
        // A handle's operations can sit in a scheduler queue and/or an
        // already-resolved earlier flush (an MPI-2 multi-plan transfer
        // split across targets): retire every live holder first, then the
        // resolved record.
        let mut found = false;
        loop {
            let pos = self
                .nb
                .borrow()
                .queues
                .iter()
                .position(|q| q.ids.contains(&id));
            let Some(i) = pos else { break };
            let q = self.nb.borrow_mut().queues.remove(i);
            self.sched_flush(q)?;
            found = true;
        }
        loop {
            let pos = self
                .nb
                .borrow()
                .open
                .iter()
                .position(|e| e.ids.contains(&id));
            let Some(i) = pos else { break };
            let ep = self.nb.borrow_mut().open.remove(i);
            self.nb_complete_epoch(ep)?;
            found = true;
        }
        if self.nb.borrow_mut().resolved.remove(&id) || found {
            return Ok(());
        }
        Err(ArmciError::BadDescriptor(
            "wait on unknown nonblocking handle".into(),
        ))
    }
}
